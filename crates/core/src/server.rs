//! The FEDORA controller: the round pipeline of Figure 4.

use std::collections::HashSet;
use std::path::Path;
use std::time::Instant;

use fedora_crypto::IntegrityError;
use fedora_fdp::{ChunkPlan, FdpAccountant};
use fedora_fl::modes::AggregationMode;
use fedora_oblivious::union::{oblivious_union, requests_scan_cost, UnionSet};
use fedora_oram::buffer::{BufferError, BufferOram};
use fedora_oram::raw::RawOram;
use fedora_oram::store::{BucketStore, IntegrityStats, ScrubReport, SsdBucketStore};
use fedora_oram::OramError;
use fedora_par::PrefetchWorker;
use fedora_storage::stats::DeviceStats;
use fedora_storage::{AccessRecord, AccessTraceRecorder};
use fedora_storage::{ByteReader, ByteWriter, CodecError, FaultConfig, FaultStats};
use fedora_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot, TraceSpan};
use rand::Rng;

use crate::audit::empirical::{value_distance, EpsilonEstimate, EpsilonEstimator};
use crate::config::{FedoraConfig, SelectionStrategy};
use crate::durable::{
    self, CheckpointStats, CrashPoint, DurableError, DurableState, FaultPlan, JournalRecord,
};

/// Errors from the FEDORA pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum FedoraError {
    /// More requests than the provisioned per-round maximum.
    TooManyRequests {
        /// Requests submitted.
        got: usize,
        /// The provisioned maximum.
        max: usize,
    },
    /// An entry id that was neither fetched nor lost this round.
    UnknownEntry {
        /// The offending id.
        id: u64,
    },
    /// A round operation was issued outside an active round.
    NoActiveRound,
    /// `begin_round` called while a round is already active.
    RoundInProgress,
    /// Main-ORAM failure.
    Oram(OramError),
    /// Buffer-ORAM failure.
    Buffer(BufferError),
    /// A transactional round hit an unrecoverable integrity failure and
    /// was rolled back to its start-of-round snapshot. The round's
    /// requests were *not* applied; the caller may retry the round.
    RoundAborted {
        /// What kind of integrity violation forced the abort.
        kind: IntegrityError,
        /// The bucket (tree node) that failed authentication.
        node: u64,
    },
    /// The configured cumulative ε budget would be exceeded by running
    /// another round, and the budget is in enforcing mode. The round was
    /// refused before any state changed; no budget was consumed.
    PrivacyBudgetExhausted {
        /// Cumulative ε already spent (the accountant's total).
        spent: f64,
        /// The configured maximum cumulative ε.
        budget: f64,
    },
    /// The chaos harness's armed crash point fired: the server simulated
    /// a process kill at this instant. The in-memory server is dead;
    /// recovery proceeds from the state directory on a fresh instance.
    CrashInjected {
        /// Which crash point fired.
        point: CrashPoint,
    },
    /// A journal or checkpoint operation failed.
    Durable(DurableError),
}

impl From<OramError> for FedoraError {
    fn from(e: OramError) -> Self {
        FedoraError::Oram(e)
    }
}

impl From<BufferError> for FedoraError {
    fn from(e: BufferError) -> Self {
        FedoraError::Buffer(e)
    }
}

impl From<DurableError> for FedoraError {
    fn from(e: DurableError) -> Self {
        FedoraError::Durable(e)
    }
}

impl core::fmt::Display for FedoraError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FedoraError::TooManyRequests { got, max } => {
                write!(f, "{got} requests exceed the provisioned maximum {max}")
            }
            FedoraError::UnknownEntry { id } => write!(f, "entry {id} not part of this round"),
            FedoraError::NoActiveRound => f.write_str("no active round"),
            FedoraError::RoundInProgress => f.write_str("a round is already in progress"),
            FedoraError::Oram(e) => write!(f, "main ORAM: {e}"),
            FedoraError::Buffer(e) => write!(f, "buffer ORAM: {e}"),
            FedoraError::RoundAborted { kind, node } => {
                write!(
                    f,
                    "round aborted and rolled back: bucket {node} failed with {kind}"
                )
            }
            FedoraError::PrivacyBudgetExhausted { spent, budget } => {
                write!(
                    f,
                    "privacy budget exhausted: ε spent {spent} of budget {budget}"
                )
            }
            FedoraError::CrashInjected { point } => {
                write!(f, "chaos crash injected at {point}")
            }
            FedoraError::Durable(e) => write!(f, "durability: {e}"),
        }
    }
}

impl std::error::Error for FedoraError {}

/// Host wall-clock time spent in each phase of one round, in nanoseconds.
///
/// The five phase fields partition [`PhaseBreakdown::round_ns`] exactly:
/// every phase interval is measured once against a single clock read pair
/// and `round_ns` accumulates those *same measured values*, so
/// `sum_ns() == round_ns` identically — no phase is ever derived by
/// subtraction, which would let clock skew between two different reads
/// leak into (or silently vanish from) a phase.
///
/// [`PhaseBreakdown::overlap_ns`] is *not* part of the partition: it
/// credits look-ahead work a pipelined server's prefetch worker performed
/// off the critical path (work that, in serial mode, would have been
/// inside `union_ns`). The main thread's blocked time waiting for that
/// worker *is* on the critical path and is charged to `union_ns`.
/// Note these are *host* times — the simulated device latencies of the cost
/// model live in the `DeviceStats` fields and `trace.io` records instead.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Oblivious-union scans across all chunks (step ①). In pipelined
    /// mode: the time the engine thread spent waiting on (or inlining)
    /// union work — the critical-path share of step ①.
    pub union_ns: u64,
    /// Rest of the read phase: FDP sampling, ordering, main-ORAM fetches
    /// and buffer loads (steps ②–③).
    pub fetch_ns: u64,
    /// Serving user downloads from the buffer ORAM (step ④), summed over
    /// every `serve` call.
    pub serve_ns: u64,
    /// Gradient aggregation into the buffer ORAM (step ⑥), summed over
    /// every `aggregate` call.
    pub aggregate_ns: u64,
    /// Write phase: buffer drain, main-ORAM insertions and EO evictions,
    /// report finalization (step ⑦).
    pub write_ns: u64,
    /// Total measured round time (sum of the five phase intervals above;
    /// excludes `overlap_ns`).
    pub round_ns: u64,
    /// Look-ahead union work the prefetch worker completed while the
    /// *previous* round was still running — wall time this round did not
    /// pay. Informational: excluded from both the partition and
    /// `round_ns`. Always 0 in serial mode.
    pub overlap_ns: u64,
}

impl PhaseBreakdown {
    /// Sum of the five phase fields (equals [`PhaseBreakdown::round_ns`]
    /// exactly; `overlap_ns` is excluded by design).
    pub fn sum_ns(&self) -> u64 {
        self.union_ns + self.fetch_ns + self.serve_ns + self.aggregate_ns + self.write_ns
    }
}

/// Everything observable/countable about one round, used by the latency,
/// lifetime, and cost models.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundReport {
    /// Total user requests `K`.
    pub k_requests: usize,
    /// Unique entries per chunk, summed (`Σ_c k_union(c)`).
    pub k_union: usize,
    /// Main-ORAM accesses actually performed (`Σ_c k(c)`).
    pub k_accesses: usize,
    /// Padding (dummy) accesses issued (`k > k_union` part).
    pub dummies: usize,
    /// Entries lost to the mechanism (`k < k_union` part).
    pub lost: usize,
    /// Oblivious-union slot visits (the O(K²) scan cost).
    pub union_scan_slots: u64,
    /// EO accesses performed during the write phase.
    pub eo_accesses: u64,
    /// SSD activity for this round.
    pub ssd: DeviceStats,
    /// Buffer-ORAM DRAM activity for this round.
    pub buffer_dram: DeviceStats,
    /// VTree DRAM activity for this round.
    pub vtree_dram: DeviceStats,
    /// Integrity events (detections, retries, recoveries, quarantines)
    /// observed on the main ORAM during this round.
    pub integrity: IntegrityStats,
    /// Host wall-time spent per phase of this round.
    pub phases: PhaseBreakdown,
    /// Telemetry snapshot at round completion (cumulative registry state:
    /// counters, gauges, histogram summaries — no journal events). Empty
    /// when the server runs with a disabled registry.
    pub metrics: Snapshot,
}

fn put_device_stats(w: &mut ByteWriter, s: &DeviceStats) {
    for v in [
        s.pages_read,
        s.pages_written,
        s.bytes_read,
        s.bytes_written,
        s.busy_ns,
        s.faults_bitflip,
        s.faults_rollback,
        s.faults_transient,
    ] {
        w.put_u64(v);
    }
}

fn get_device_stats(r: &mut ByteReader<'_>) -> Result<DeviceStats, CodecError> {
    Ok(DeviceStats {
        pages_read: r.get_u64()?,
        pages_written: r.get_u64()?,
        bytes_read: r.get_u64()?,
        bytes_written: r.get_u64()?,
        busy_ns: r.get_u64()?,
        faults_bitflip: r.get_u64()?,
        faults_rollback: r.get_u64()?,
        faults_transient: r.get_u64()?,
    })
}

impl RoundReport {
    /// A copy with the host-time-dependent fields (phase wall-clock and
    /// the telemetry snapshot) zeroed, leaving only the deterministic
    /// round facts. Two runs of the same round — or a run and its
    /// crash-recovered twin — produce byte-identical scrubbed reports.
    pub fn scrubbed(&self) -> RoundReport {
        RoundReport {
            phases: PhaseBreakdown::default(),
            metrics: Snapshot::default(),
            ..self.clone()
        }
    }

    /// Serializes the deterministic round facts (everything but phases
    /// and metrics, which [`scrubbed`](Self::scrubbed) zeroes) into `w`.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        for v in [
            self.k_requests,
            self.k_union,
            self.k_accesses,
            self.dummies,
            self.lost,
        ] {
            w.put_u64(v as u64);
        }
        w.put_u64(self.union_scan_slots);
        w.put_u64(self.eo_accesses);
        put_device_stats(w, &self.ssd);
        put_device_stats(w, &self.buffer_dram);
        put_device_stats(w, &self.vtree_dram);
        for v in [
            self.integrity.detected_corruption,
            self.integrity.detected_rollback,
            self.integrity.transient_retries,
            self.integrity.recovered,
            self.integrity.quarantined,
        ] {
            w.put_u64(v);
        }
    }

    /// Decodes a report captured by [`encode_state`](Self::encode_state)
    /// (phases and metrics come back zeroed, i.e. scrubbed).
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<RoundReport, CodecError> {
        Ok(RoundReport {
            k_requests: r.get_u64()? as usize,
            k_union: r.get_u64()? as usize,
            k_accesses: r.get_u64()? as usize,
            dummies: r.get_u64()? as usize,
            lost: r.get_u64()? as usize,
            union_scan_slots: r.get_u64()?,
            eo_accesses: r.get_u64()?,
            ssd: get_device_stats(r)?,
            buffer_dram: get_device_stats(r)?,
            vtree_dram: get_device_stats(r)?,
            integrity: IntegrityStats {
                detected_corruption: r.get_u64()?,
                detected_rollback: r.get_u64()?,
                transient_retries: r.get_u64()?,
                recovered: r.get_u64()?,
                quarantined: r.get_u64()?,
            },
            phases: PhaseBreakdown::default(),
            metrics: Snapshot::default(),
        })
    }

    /// FNV-1a-64 digest of the deterministic round facts (the journal's
    /// commit records carry this for recovery cross-checks).
    pub fn digest(&self) -> u64 {
        let mut w = ByteWriter::new();
        self.encode_state(&mut w);
        fedora_storage::fnv1a64(&w.into_bytes())
    }
}

/// The record of one aborted (rolled-back) transactional round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundAbort {
    /// The integrity violation that forced the abort.
    pub kind: IntegrityError,
    /// The bucket that exhausted its retry budget.
    pub node: u64,
    /// The partial report at abort time (its `integrity` field holds the
    /// detections counted before the state was rewound).
    pub report: RoundReport,
}

/// Start-of-round copy of the ORAM state, restored on abort.
#[derive(Clone, Debug)]
struct RoundSnapshot {
    main: RawOram<SsdBucketStore>,
    buffer: BufferOram,
}

/// Snapshot of device stats at round start (to compute deltas).
#[derive(Clone, Debug)]
struct RoundState {
    report: RoundReport,
    ssd_before: DeviceStats,
    buffer_before: DeviceStats,
    vtree_before: DeviceStats,
    eo_before: u64,
    integrity_before: IntegrityStats,
    lost_ids: HashSet<u64>,
    snapshot: Option<Box<RoundSnapshot>>,
}

/// Telemetry handles for the FL-facing side of the round pipeline.
#[derive(Clone, Debug, Default)]
struct FlTelemetry {
    rounds_completed: Counter,
    rounds_aborted: Counter,
    download_bytes: Counter,
    upload_bytes: Counter,
    lost_serves: Counter,
    /// Committed-round wall time, as a histogram so interval views
    /// ([`Snapshot::delta`]) can report a windowed p99 (the `round.phase.*`
    /// gauges only carry the latest round).
    round_latency: Histogram,
    /// Monotonic liveness gauge: the durably committed round count, the
    /// round-pipeline equivalent of an `uptime_seconds` series (scrape it
    /// twice; if it moved, the pipeline is alive).
    uptime_rounds: Gauge,
}

impl FlTelemetry {
    fn attach(registry: &Registry) -> Self {
        FlTelemetry {
            rounds_completed: registry.counter("fl.rounds.completed"),
            rounds_aborted: registry.counter("fl.rounds.aborted"),
            download_bytes: registry.counter("fl.round.download_bytes"),
            upload_bytes: registry.counter("fl.round.upload_bytes"),
            lost_serves: registry.counter("fl.round.lost_serves"),
            round_latency: registry.histogram("round.latency"),
            uptime_rounds: registry.gauge("fedora.uptime.rounds"),
        }
    }
}

/// Retained-pair cap for the live empirical-ε refresher: enough pairs for
/// tight intervals (the black-box ceiling is ≈ ln(2n+1) nats), bounded so
/// a months-long soak holds constant memory and tracks recent behaviour.
const MAX_REFRESHER_PAIRS: usize = 128;

/// State of the continuous empirical-ε refresher: an internally owned
/// shadow recorder armed only on capture rounds, the running estimator,
/// and the first arm of the next pair. Unlike the offline twin audit
/// ([`crate::audit::empirical::estimate_twin_inputs`]), consecutive live
/// rounds are not controlled twins — each pair carries its own
/// [`value_distance`], making the estimate a *drift monitor*: an honest
/// mechanism keeps overlapping path-count supports and a small ε̂, while
/// an implementation whose access count tracks its inputs drifts upward.
struct EmpiricalRefresher {
    recorder: AccessTraceRecorder,
    estimator: EpsilonEstimator,
    /// Whether the recorder is currently attached to the main store.
    armed: bool,
    /// Request schedule of the capture round in flight.
    round_requests: Vec<u64>,
    /// First arm of the next estimator pair: (requests, trace).
    pending: Option<(Vec<u64>, Vec<AccessRecord>)>,
}

/// Telemetry handles mirroring the privacy accountant into the registry —
/// the *privacy ledger* of the observability layer (§3.1 accounting made
/// visible).
///
/// Public series carry only values derivable from the public protocol
/// parameters and the accountant (ε per round, cumulative ε, round
/// count). Anything derived from the secret `k_union` — dummy and lost
/// counts, the per-round union size, and the `k` overhead histogram — is
/// registered **audit-only** so default exports never leak it; an
/// operator must opt in via [`Snapshot::audit_view`] to see those series.
///
/// [`Snapshot::audit_view`]: fedora_telemetry::Snapshot::audit_view
#[derive(Clone, Debug, Default)]
struct PrivacyLedger {
    round_epsilon: Gauge,
    total_epsilon: Gauge,
    mechanism_epsilon: Gauge,
    rounds: Gauge,
    poisoned: Counter,
    budget_max: Gauge,
    budget_refused: Counter,
    // Secret-dependent series (derived from k_union): audit-only.
    dummies: Counter,
    lost: Counter,
    k_union: Gauge,
    k_overhead: Histogram,
    // Empirical-ε estimates come from twin-run audits over recorded
    // traces; the estimate itself is derived from access patterns, so it
    // stays audit-only alongside the other trace-derived series.
    empirical_eps_hat: Gauge,
    empirical_ci_lo: Gauge,
    empirical_ci_hi: Gauge,
    empirical_samples: Gauge,
}

impl PrivacyLedger {
    fn attach(registry: &Registry, config: &FedoraConfig) -> Self {
        let ledger = PrivacyLedger {
            round_epsilon: registry.gauge("fdp.round.epsilon"),
            total_epsilon: registry.gauge("fdp.total.epsilon"),
            mechanism_epsilon: registry.gauge("fdp.mechanism.epsilon"),
            rounds: registry.gauge("fdp.rounds"),
            poisoned: registry.counter("fdp.ledger.poisoned"),
            budget_max: registry.gauge("fdp.budget.max_epsilon"),
            budget_refused: registry.counter("fdp.budget.refused_rounds"),
            dummies: registry.counter_audit("fdp.dummies.total"),
            lost: registry.counter_audit("fdp.lost.total"),
            k_union: registry.gauge_audit("fdp.round.k_union"),
            k_overhead: registry.histogram_audit("fdp.k.overhead"),
            empirical_eps_hat: registry.gauge_audit("fdp.empirical.eps_hat"),
            empirical_ci_lo: registry.gauge_audit("fdp.empirical.ci_lo"),
            empirical_ci_hi: registry.gauge_audit("fdp.empirical.ci_hi"),
            empirical_samples: registry.gauge_audit("fdp.empirical.samples"),
        };
        // Static per config: the mechanism ε after group-privacy division
        // (ε/n for HideValueCount{n}), and the budget ceiling if set.
        ledger
            .mechanism_epsilon
            .set(config.privacy.mechanism_epsilon());
        if let Some(max) = config.privacy_budget.max_total_epsilon {
            ledger.budget_max.set(max);
        }
        ledger
    }
}

/// Look-ahead state for pipelined execution (see
/// [`PipelineConfig`](crate::config::PipelineConfig)).
///
/// The worker computes only the RNG-free, deterministic part of round
/// N+1's read phase — the per-chunk oblivious unions — while round N is
/// still running. Every random draw (FDP `sample_k`, candidate shuffle,
/// dummy/insert leaves) stays on the engine thread in serial program
/// order, so the RNG stream, the access trace, and the scrubbed
/// `RoundReport` are byte-identical to serial execution.
///
/// Speculative state lives only here, in memory: nothing about a
/// scheduled round touches the journal until its own `begin_round` runs,
/// so a crash mid-prefetch recovers to the last committed round with the
/// speculation simply discarded.
struct PipelineState {
    /// Dedicated prefetch worker (`fedora-par-prefetch` thread). Carries
    /// back the echoed request slice plus the per-chunk unions, and the
    /// wall time the worker spent computing them.
    worker: PrefetchWorker<(Vec<u64>, Vec<UnionSet>)>,
    /// The request set the in-flight speculation was computed for; the
    /// result is used only if the next `begin_round` receives exactly
    /// this slice (otherwise it is discarded and unions run inline).
    scheduled: Option<Vec<u64>>,
}

impl PipelineState {
    fn new() -> Self {
        PipelineState {
            worker: PrefetchWorker::new(),
            scheduled: None,
        }
    }
}

/// The FEDORA server.
pub struct FedoraServer {
    config: FedoraConfig,
    main: RawOram<SsdBucketStore>,
    buffer: BufferOram,
    chunk_plan: ChunkPlan,
    accountant: FdpAccountant,
    active: Option<RoundState>,
    completed: Vec<RoundReport>,
    aborts: Vec<RoundAbort>,
    /// Entry ids whose blocks were destroyed by a bucket repair; they are
    /// excluded (served as lost) until re-initialized out of band.
    quarantined_ids: HashSet<u64>,
    registry: Registry,
    telemetry: FlTelemetry,
    ledger: PrivacyLedger,
    /// Whether the cumulative-ε budget crossing has already been
    /// journaled (alarm mode fires `privacy.budget.exceeded` once).
    budget_flagged: bool,
    /// Trace span covering the active round (tracing only). Held here
    /// rather than in `RoundState` so the clonable state stays clonable;
    /// closed on `end_round`, or on abort with an `aborted` attribute.
    round_span: Option<TraceSpan>,
    /// Durably committed rounds: incremented only once a round's
    /// checkpoint is on disk (or immediately, when durability is off).
    /// Doubles as the next round's number — it survives restarts via the
    /// checkpoint, unlike `completed` (in-memory reports only).
    committed_rounds: u64,
    /// Scrubbed report of the last committed round (persisted in the
    /// checkpoint so a recovered server can prove where it landed).
    last_committed: Option<RoundReport>,
    /// The aggregation mode's persistent optimizer state (Adam moments,
    /// LazyDP staleness) captured at each committed round and persisted
    /// in the checkpoint, so a recovered stateful mode resumes where its
    /// uncrashed twin would be (empty for stateless modes).
    mode_state: Vec<u8>,
    /// The write-ahead journal + checkpoint writer, when durability is
    /// enabled via [`Self::enable_durability`] / [`Self::recover`].
    durable: Option<DurableState>,
    /// The chaos harness's armed crash point, if any.
    crash_armed: Option<CrashPoint>,
    /// Restart-stable fault plan: re-arms the injector with a journaled
    /// per-round seed at every round begin.
    fault_plan: Option<FaultPlan>,
    /// Caller RNG seed hint journaled with each round begin (0 = unset).
    seed_hint: u64,
    /// Main-ORAM accesses so far in the active round (MidFetch trigger).
    round_accesses: u64,
    /// Main-ORAM insertions so far in the write phase (MidEvictionWrite
    /// trigger).
    round_inserts: u64,
    /// Latest empirical-ε estimate fed in via
    /// [`record_empirical_estimate`](Self::record_empirical_estimate).
    /// Ephemeral: estimates come from out-of-band twin-run audits, so
    /// they are not part of the durable checkpoint.
    empirical: Option<EpsilonEstimate>,
    /// Whether the empirical-ε exceedance has already been journaled
    /// (the `watch.alarm.empirical_eps` event fires once per crossing).
    empirical_flagged: bool,
    /// Registry snapshot at the previous watch sample, for interval
    /// deltas. Ephemeral, like the rest of the watch plane.
    watch_prev: Option<Snapshot>,
    /// The most recent watch report, if the watch plane is enabled and
    /// has sampled at least once.
    watch_last: Option<WatchReport>,
    /// Continuous empirical-ε refresher state, present when
    /// [`WatchConfig::empirical_every_rounds`] > 0.
    ///
    /// [`WatchConfig::empirical_every_rounds`]: crate::config::WatchConfig::empirical_every_rounds
    refresher: Option<EmpiricalRefresher>,
    /// Look-ahead pipelining state, present when
    /// [`PipelineConfig::enabled`](crate::config::PipelineConfig::enabled).
    /// Ephemeral and execution-mode-only: never journaled or
    /// checkpointed.
    pipeline: Option<PipelineState>,
}

/// One sample of the live privacy/SLO watch plane: interval health over
/// the last `window_rounds` committed rounds, evaluated against the
/// thresholds in [`WatchConfig`].
///
/// The report deliberately carries only public series (round latency,
/// shed ratio, cumulative ε from the accountant) plus the empirical-ε
/// *verdict-level* numbers — the estimate and its sample count — which
/// the operator already opted into by running the estimator. Alarms are
/// symbolic names (`round_p99`, `shed_ppm`, `empirical_eps`) so callers
/// can match on them without parsing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WatchReport {
    /// Committed-round count when this sample was taken.
    pub round: u64,
    /// Rounds committed since the previous sample.
    pub window_rounds: u64,
    /// p99 round wall-time over the window, in nanoseconds (0 when the
    /// window saw no rounds).
    pub round_p99_ns: u64,
    /// Served requests over the window (`net.requests` delta; 0 when the
    /// server runs without a network front end).
    pub requests: u64,
    /// Shed parts-per-million over the window: shed requests relative to
    /// all arrivals (served + shed).
    pub shed_ppm: u64,
    /// Cumulative ε spent (accountant total at sample time).
    pub total_epsilon: f64,
    /// Latest empirical-ε estimate (0 when no estimate recorded).
    pub eps_hat: f64,
    /// Twin pairs behind `eps_hat` (0 when no estimate recorded).
    pub eps_samples: u64,
    /// The configured mechanism ε the estimate is judged against.
    pub eps_budget: f64,
    /// Alarm names active in this window, in evaluation order.
    pub alarms: Vec<String>,
    /// Wall-time this sample itself cost, in nanoseconds.
    pub overhead_ns: u64,
}

impl FedoraServer {
    /// Builds the server: provisions the SSD main ORAM (bulk-loading the
    /// embedding table produced by `init`) and the DRAM buffer ORAM. The
    /// server owns an enabled telemetry [`Registry`] wired through every
    /// layer; use [`with_telemetry`](Self::with_telemetry) with
    /// [`Registry::disabled`] for the zero-overhead no-op sink.
    pub fn new<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        config: FedoraConfig,
        init: F,
        rng: &mut R,
    ) -> Self {
        Self::with_telemetry(config, init, Registry::new(), rng)
    }

    /// Builds the server with an explicit telemetry registry (pass
    /// [`Registry::disabled`] to make every instrument a no-op).
    pub fn with_telemetry<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        config: FedoraConfig,
        init: F,
        registry: Registry,
        rng: &mut R,
    ) -> Self {
        registry.set_journal_capacity(config.journal_capacity);
        Self::publish_build_info(&registry);
        let key = Self::master_key();
        let mut store =
            SsdBucketStore::new(config.geometry, key.derive_subkey("main-oram"), config.ssd);
        store.set_retry_limit(config.fault_tolerance.max_read_retries);
        store.set_rollback_window(config.fault_tolerance.rollback_window);
        store.set_threads(config.parallelism.threads);
        let mut main = RawOram::new(store, config.table.num_entries, config.raw, init, rng);
        main.set_telemetry(&registry);
        let pipeline = if config.pipeline.enabled() {
            // Pipelined mode leans on two store-level mechanisms that do
            // not change device traffic or the access trace: the decrypt
            // window (skip redundant AEAD work on pages whose plaintext
            // this process already holds) and eviction-write deferral
            // (stage EO path writes, flush them in EO order during the
            // write phase).
            main.set_decrypt_window(true);
            main.set_eviction_deferral(true);
            Some(PipelineState::new())
        } else {
            None
        };
        let mut buffer = BufferOram::new(
            config.max_requests_per_round,
            config.table.entry_bytes,
            key.derive_subkey("buffer-oram"),
            rng,
        );
        buffer.set_telemetry(&registry);
        if pipeline.is_some() {
            // The buffer ORAM keeps its tree across rounds, so its decrypt
            // window stays warm: serve/aggregate path reads skip the AEAD
            // once a bucket has been written or authenticated. DRAM
            // accesses still issue identically.
            buffer.set_decrypt_window(true);
        }
        let chunk_plan = ChunkPlan::new(config.privacy.chunk_size);
        let telemetry = FlTelemetry::attach(&registry);
        let ledger = PrivacyLedger::attach(&registry, &config);
        let refresher = if config.watch.empirical_enabled() {
            let ppb = config.geometry.pages_per_bucket(config.ssd.page_bytes);
            let mut estimator = EpsilonEstimator::new(ppb, 1);
            estimator.set_max_samples(MAX_REFRESHER_PAIRS);
            Some(EmpiricalRefresher {
                recorder: AccessTraceRecorder::new(),
                estimator,
                armed: false,
                round_requests: Vec::new(),
                pending: None,
            })
        } else {
            None
        };
        FedoraServer {
            config,
            main,
            buffer,
            chunk_plan,
            accountant: FdpAccountant::new(),
            active: None,
            completed: Vec::new(),
            aborts: Vec::new(),
            quarantined_ids: HashSet::new(),
            registry,
            telemetry,
            ledger,
            budget_flagged: false,
            round_span: None,
            committed_rounds: 0,
            last_committed: None,
            mode_state: Vec::new(),
            durable: None,
            crash_armed: None,
            fault_plan: None,
            seed_hint: 0,
            round_accesses: 0,
            round_inserts: 0,
            empirical: None,
            empirical_flagged: false,
            watch_prev: None,
            watch_last: None,
            refresher,
            pipeline,
        }
    }

    /// Publishes the build-identity series: a constant `fedora.build_info`
    /// gauge (value 1, present on every snapshot and scrape) plus numeric
    /// companions, and one `build.info` journal event carrying the string
    /// fields — crate version and machine fingerprint — that labelless
    /// gauges cannot.
    fn publish_build_info(registry: &Registry) {
        if !registry.is_enabled() {
            return;
        }
        registry.gauge("fedora.build_info").set(1.0);
        registry
            .gauge("fedora.build.checkpoint_version")
            .set_u64(u64::from(durable::CHECKPOINT_VERSION));
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        registry.gauge("fedora.build.logical_cpus").set_u64(cpus);
        registry.event(
            "build.info",
            &[
                ("crate_version", env!("CARGO_PKG_VERSION").into()),
                ("os", std::env::consts::OS.into()),
                ("arch", std::env::consts::ARCH.into()),
                ("logical_cpus", cpus.into()),
                (
                    "checkpoint_version",
                    u64::from(durable::CHECKPOINT_VERSION).into(),
                ),
            ],
        );
    }

    /// The deployment master key every subsystem key derives from (a
    /// fixed constant in this simulation; a real deployment would load
    /// it from a sealed secret store).
    fn master_key() -> fedora_crypto::aead::Key {
        fedora_crypto::aead::Key::from_bytes([0x5E; 32])
    }

    /// The telemetry registry every layer of this server reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A full snapshot of the registry (counters, gauges, histogram
    /// summaries, and journal events).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The trace-span id of the active round, when a round is open and
    /// tracing is enabled (`None` otherwise). Network front ends parent
    /// per-request spans under this id so a request's span is causally
    /// linked child-of-round in the trace export.
    pub fn round_span_id(&self) -> Option<u64> {
        self.round_span
            .as_ref()
            .map(fedora_telemetry::TraceSpan::id)
            .filter(|&id| id != 0)
    }

    /// The configuration.
    pub fn config(&self) -> &FedoraConfig {
        &self.config
    }

    /// The privacy accountant.
    pub fn accountant(&self) -> &FdpAccountant {
        &self.accountant
    }

    /// Completed round reports.
    pub fn reports(&self) -> &[RoundReport] {
        &self.completed
    }

    /// Cumulative SSD statistics (since construction).
    pub fn ssd_stats(&self) -> DeviceStats {
        self.main.store().device_stats()
    }

    /// The main ORAM (for inspection in tests/benches).
    pub fn main_oram(&self) -> &RawOram<SsdBucketStore> {
        &self.main
    }

    /// The buffer ORAM.
    pub fn buffer_oram(&self) -> &BufferOram {
        &self.buffer
    }

    /// Aborted (rolled-back) rounds, in order.
    pub fn aborts(&self) -> &[RoundAbort] {
        &self.aborts
    }

    /// Cumulative main-ORAM integrity counters. Note: an abort rewinds
    /// the store (and these counters) to the round-start snapshot; the
    /// pre-rewind deltas live in [`Self::aborts`].
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.main.store().integrity_stats()
    }

    /// Attaches a shadow-mode access recorder to the main ORAM's SSD so
    /// the physical page-access sequence can be audited for obliviousness
    /// (see [`AccessTraceRecorder`] and [`crate::audit`]). The recorder
    /// handle is `Arc`-shared: it survives transactional snapshots and
    /// rollbacks, so aborted rounds keep their (already observable)
    /// accesses in the trace.
    ///
    /// Note: when the continuous empirical-ε refresher is enabled
    /// ([`WatchConfig::empirical_every_rounds`] > 0) the server re-arms
    /// its *own* recorder at every capture round, displacing one attached
    /// here — run offline audits with the refresher off.
    ///
    /// [`WatchConfig::empirical_every_rounds`]: crate::config::WatchConfig::empirical_every_rounds
    pub fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        self.main.store_mut().set_access_recorder(recorder);
    }

    /// Changes the worker-thread count for the main ORAM's bulk path
    /// crypto. Thread count never changes results or the physical access
    /// trace — only host wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.parallelism = crate::config::ParallelismConfig::with_threads(threads);
        self.main.set_threads(threads);
    }

    /// Arms seeded fault injection on the main ORAM's SSD.
    pub fn arm_faults(&mut self, config: FaultConfig) {
        self.main.store_mut().arm_faults(config);
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&mut self) {
        self.main.store_mut().disarm_faults();
    }

    /// Counters of faults actually injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.main.store().fault_stats()
    }

    /// Installs a restart-stable fault plan: from now on every round
    /// re-arms the injector with a seed derived from (plan, round
    /// number), and that seed is journaled in the round's begin record —
    /// so a chaos campaign resumed after a crash/restore replays the
    /// same fault stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes the fault plan and disarms injection.
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
        self.disarm_faults();
    }

    /// Arms one crash point: the next time execution reaches it, the
    /// server simulates a process kill by erroring out with
    /// [`FedoraError::CrashInjected`]. One-shot (disarms on fire).
    pub fn arm_crash_point(&mut self, point: CrashPoint) {
        self.crash_armed = Some(point);
    }

    /// Disarms any armed crash point.
    pub fn disarm_crash_point(&mut self) {
        self.crash_armed = None;
    }

    /// Records the caller's RNG seed for the upcoming rounds; journaled
    /// in each round-begin record so a recovered campaign can re-derive
    /// its request stream (0 = unset).
    pub fn set_round_seed_hint(&mut self, seed: u64) {
        self.seed_hint = seed;
    }

    /// Durably committed rounds (checkpoint on disk). Equals
    /// `reports().len()` when durability is off; survives restarts when
    /// it is on.
    pub fn committed_rounds(&self) -> u64 {
        self.committed_rounds
    }

    /// Whether a round is currently open (`begin_round` called, no
    /// matching `end_round` yet). Serving front ends use this as the
    /// drain condition: shutdown must not fall between `begin_round` and
    /// the journal commit inside `end_round`, or recovery will charge the
    /// torn round's privacy budget for work no client received.
    pub fn round_active(&self) -> bool {
        self.active.is_some()
    }

    /// Scrubbed report of the last committed round (restored from the
    /// checkpoint after recovery).
    pub fn last_committed_report(&self) -> Option<&RoundReport> {
        self.last_committed.as_ref()
    }

    /// The aggregation mode's checkpointed optimizer state as of the last
    /// committed round (empty for stateless modes or before the first
    /// committed round). Restored from the checkpoint by
    /// [`Self::recover`]; apply it with [`Self::restore_mode`].
    pub fn mode_state(&self) -> &[u8] {
        &self.mode_state
    }

    /// Restores the checkpointed optimizer state onto a freshly built
    /// `mode` of the same kind the server was trained with. Call after
    /// [`Self::recover`] when running a stateful mode (FedAdam, LazyDP) —
    /// without it the recovered mode resumes with reset moments/staleness
    /// and diverges from an uncrashed twin. Stateless modes accept the
    /// empty state and are a no-op.
    ///
    /// # Errors
    ///
    /// [`FedoraError::Durable`] when the bytes do not decode as `mode`'s
    /// state (wrong mode kind for this state directory).
    pub fn restore_mode<M: AggregationMode>(&self, mode: &mut M) -> Result<(), FedoraError> {
        mode.restore_state(&self.mode_state)
            .map_err(|what| DurableError::Codec(CodecError::Invalid(what)).into())
    }

    /// Attaches a state directory: opens (creating if needed) the
    /// write-ahead round journal there and, if the directory holds no
    /// checkpoint yet, writes the baseline (generation 0) checkpoint so a
    /// crash in the very first round is recoverable.
    ///
    /// # Errors
    ///
    /// [`FedoraError::Durable`] on I/O failure.
    pub fn enable_durability(&mut self, dir: &Path) -> Result<(), FedoraError> {
        let key = Self::master_key().derive_subkey("durable");
        let state = DurableState::open(dir, key)?;
        let fresh = state.next_generation() == 0;
        self.durable = Some(state);
        if fresh {
            self.checkpoint_inner()?;
        }
        Ok(())
    }

    /// Writes a checkpoint of the full server state now (between
    /// rounds). Rounds also checkpoint automatically as part of their
    /// commit.
    ///
    /// # Errors
    ///
    /// [`FedoraError::RoundInProgress`] during a round;
    /// [`FedoraError::Durable`] when durability is off or the write
    /// fails.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        self.checkpoint_inner()
    }

    fn checkpoint_inner(&mut self) -> Result<CheckpointStats, FedoraError> {
        let started = Instant::now();
        let body = self.encode_checkpoint_body();
        let Some(d) = self.durable.as_mut() else {
            return Err(DurableError::NotEnabled.into());
        };
        let (generation, bytes) = d.write_checkpoint(&body)?;
        let ns = started.elapsed().as_nanos() as u64;
        if self.registry.is_enabled() {
            self.registry.counter("durable.checkpoints").incr();
            self.registry
                .gauge("durable.checkpoint.bytes")
                .set_u64(bytes);
            self.registry.gauge("durable.checkpoint.ns").set_u64(ns);
        }
        Ok(CheckpointStats {
            generation,
            bytes,
            ns,
        })
    }

    /// Recovers this (freshly built, same-configuration) server from the
    /// state directory: restores the newest loadable checkpoint, then
    /// replays the journal — every round-begin record at or past the
    /// restored round is a *torn* round whose ε is charged to the
    /// accountant anyway. A crash therefore can only over-report
    /// leakage, never under-report it. Returns the committed round count
    /// recovery landed on.
    ///
    /// # Errors
    ///
    /// [`FedoraError::Durable`] with [`DurableError::NoCheckpoint`] when
    /// the directory holds none; `FedoraError::Oram` with
    /// [`IntegrityError::Rollback`] when the newest loadable checkpoint
    /// is *older* than the journal's newest commit (a rolled-back /
    /// stale checkpoint — restoring it would silently rewind committed
    /// state); other [`FedoraError::Durable`] values on I/O or
    /// tampering.
    pub fn recover(&mut self, dir: &Path) -> Result<u64, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        let key = Self::master_key().derive_subkey("durable");
        let records = durable::read_records(dir, &key)?;
        let Some((generation, body)) = durable::load_latest_checkpoint(dir, &key)? else {
            return Err(DurableError::NoCheckpoint.into());
        };
        self.apply_checkpoint_body(&body)
            .map_err(DurableError::Codec)?;
        // Stale-checkpoint detection: a commit record for round r means a
        // checkpoint with committed_rounds ≥ r+1 was durable before the
        // record was written. Restoring anything older is a rollback.
        let newest_commit = records
            .iter()
            .filter_map(|rec| match rec {
                JournalRecord::Commit(c) => Some(c.round),
                JournalRecord::Begin(_) => None,
            })
            .max();
        if let Some(r) = newest_commit {
            if self.committed_rounds < r + 1 {
                return Err(FedoraError::Oram(OramError::Integrity {
                    kind: IntegrityError::Rollback,
                    node: 0,
                }));
            }
        }
        // Conservative ε replay: any begin record at or past the restored
        // round belongs to a torn (or aborted) round whose in-memory
        // accounting was lost. Charge each one; over-reporting is safe.
        let mut torn = 0u64;
        for rec in &records {
            if let JournalRecord::Begin(b) = rec {
                if b.round >= self.committed_rounds {
                    self.accountant.record_round(b.epsilon);
                    torn += 1;
                }
            }
        }
        // Republish the restored accountant into the ledger so the
        // telemetry high-water marks survive the restart too.
        self.ledger
            .total_epsilon
            .set(self.accountant.total_epsilon());
        self.ledger.rounds.set_u64(self.accountant.rounds() as u64);
        self.telemetry.rounds_completed.add(self.committed_rounds);
        self.registry.event(
            "durable.recovered",
            &[
                ("round", self.committed_rounds.into()),
                ("generation", generation.into()),
                ("torn_rounds", torn.into()),
            ],
        );
        self.durable = Some(DurableState::open(dir, key)?);
        Ok(self.committed_rounds)
    }

    /// Quarantined main-ORAM buckets (failed reads pending repair).
    pub fn quarantined_buckets(&self) -> Vec<u64> {
        self.main.store().quarantined_nodes()
    }

    /// Entry ids lost to bucket repairs, excluded from future rounds.
    pub fn quarantined_entries(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.quarantined_ids.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Verifies every main-ORAM bucket's MAC (background scrubbing).
    /// Must be called between rounds.
    ///
    /// # Errors
    ///
    /// [`FedoraError::RoundInProgress`] during a round.
    pub fn scrub(&mut self) -> Result<ScrubReport, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        Ok(self.main.scrub())
    }

    /// Repairs one quarantined bucket in place (empties it and clears its
    /// valid bits); blocks that lived there become missing and their
    /// entries are quarantined lazily on the next fetch.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn repair_bucket(&mut self, node: u64) -> Result<(), FedoraError> {
        self.main.repair_bucket(node)?;
        Ok(())
    }

    /// Fires the armed crash point, if it matches: simulates a process
    /// kill by erroring out of the pipeline. One-shot.
    fn crash_check(&mut self, point: CrashPoint) -> Result<(), FedoraError> {
        if self.crash_armed == Some(point) {
            self.crash_armed = None;
            self.registry.event(
                "durable.crash.injected",
                &[("point", point.name().to_string().into())],
            );
            return Err(FedoraError::CrashInjected { point });
        }
        Ok(())
    }

    /// Counts one main-ORAM access of the read phase; the first fires
    /// the [`CrashPoint::MidFetch`] crash point (which therefore never
    /// fires on a zero-access round).
    fn note_read_access(&mut self) -> Result<(), FedoraError> {
        self.round_accesses += 1;
        if self.round_accesses == 1 {
            self.crash_check(CrashPoint::MidFetch)?;
        }
        Ok(())
    }

    /// Counts one main-ORAM insertion of the write phase; the first
    /// fires the [`CrashPoint::MidEvictionWrite`] crash point.
    fn note_insert(&mut self) -> Result<(), FedoraError> {
        self.round_inserts += 1;
        if self.round_inserts == 1 {
            self.crash_check(CrashPoint::MidEvictionWrite)?;
        }
        Ok(())
    }

    /// Serializes the full server state for a checkpoint: round counter,
    /// budget flag, accountant, entry quarantine, last committed report,
    /// aggregation-mode optimizer state, main-ORAM controller + store
    /// (SSD image, bucket write counters, cumulative integrity stats,
    /// node quarantine), and the buffer ORAM.
    fn encode_checkpoint_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.committed_rounds);
        w.put_bool(self.budget_flagged);
        let per_round = self.accountant.per_round();
        w.put_u64(per_round.len() as u64);
        for &e in per_round {
            w.put_f64(e);
        }
        w.put_u64(self.accountant.poisoned_rounds());
        let mut quarantined: Vec<u64> = self.quarantined_ids.iter().copied().collect();
        quarantined.sort_unstable();
        w.put_u64s(&quarantined);
        w.put_bool(self.last_committed.is_some());
        if let Some(report) = &self.last_committed {
            report.encode_state(&mut w);
        }
        w.put_bytes(&self.mode_state);
        self.main.encode_controller_state(&mut w);
        self.main.store().encode_state(&mut w);
        self.buffer.encode_state(&mut w);
        w.into_bytes()
    }

    /// Applies a checkpoint body onto this freshly built same-geometry
    /// server (the inverse of [`Self::encode_checkpoint_body`]).
    fn apply_checkpoint_body(&mut self, body: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(body);
        self.committed_rounds = r.get_u64()?;
        self.budget_flagged = r.get_bool()?;
        let n = r.get_u64()? as usize;
        let mut per_round = Vec::new();
        for _ in 0..n {
            per_round.push(r.get_f64()?);
        }
        let poisoned = r.get_u64()?;
        self.accountant = FdpAccountant::from_state(&per_round, poisoned);
        self.quarantined_ids = r.get_u64s()?.into_iter().collect();
        self.last_committed = if r.get_bool()? {
            Some(RoundReport::decode_state(&mut r)?)
        } else {
            None
        };
        self.mode_state = r.get_bytes()?;
        self.main.decode_controller_state(&mut r)?;
        self.main.store_mut().decode_state(&mut r)?;
        self.buffer.decode_state(&mut r)?;
        r.expect_end()
    }

    /// Durably commits the just-finished round: checkpoint first (data
    /// sync), then the journal commit record (commit marker — classic
    /// WAL ordering). A crash in the window between the two recovers
    /// *forward* to the checkpoint, which already holds the round's
    /// state and ε — never backward past it.
    ///
    /// `prev_last` is the last-committed report from before this round:
    /// when the checkpoint itself never becomes durable, the commit
    /// counters are unwound to it, so a still-usable in-memory server
    /// never reports a committed round that is not on disk. A failure
    /// *after* the checkpoint is durable (lost commit marker) keeps the
    /// incremented counters — they match what recovery would land on.
    fn checkpoint_and_commit(
        &mut self,
        report: &RoundReport,
        prev_last: Option<RoundReport>,
    ) -> Result<(), FedoraError> {
        if self.durable.is_some() {
            let round = self.committed_rounds - 1;
            let stats = match self.checkpoint_inner() {
                Ok(stats) => stats,
                Err(e) => {
                    self.committed_rounds -= 1;
                    self.last_committed = prev_last;
                    return Err(e);
                }
            };
            self.crash_check(CrashPoint::PostDataSyncPreCommit)?;
            let digest = report.digest();
            let total = self.accountant.total_epsilon();
            if let Some(d) = self.durable.as_mut() {
                d.append_commit(round, stats.generation, total, digest)?;
            }
        } else if let Err(e) = self.crash_check(CrashPoint::PostDataSyncPreCommit) {
            // No durable state to recover forward to: the simulated kill
            // means this round committed nowhere.
            self.committed_rounds -= 1;
            self.last_committed = prev_last;
            return Err(e);
        }
        Ok(())
    }

    /// Steps ①–④ of Figure 4: oblivious union (chunked), ε-FDP choice of
    /// `k`, and the read phase moving entries into the buffer ORAM.
    /// Returns the partial report (read-side numbers).
    ///
    /// # Errors
    ///
    /// [`FedoraError::TooManyRequests`] when `requests` exceeds the
    /// provisioned maximum; [`FedoraError::RoundInProgress`] when called
    /// twice without `end_round`; device errors propagate.
    pub fn begin_round<R: Rng>(
        &mut self,
        requests: &[u64],
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        if requests.len() > self.config.max_requests_per_round {
            return Err(FedoraError::TooManyRequests {
                got: requests.len(),
                max: self.config.max_requests_per_round,
            });
        }
        // Enforcing budget mode: refuse the round up front — before any
        // event, span, or state change — when completing it would push the
        // cumulative ε past the ceiling. A refused round consumes nothing.
        if self.config.privacy_budget.enforce {
            if let Some(max) = self.config.privacy_budget.max_total_epsilon {
                let spent = self.accountant.total_epsilon();
                if spent + self.config.privacy.mechanism.epsilon() > max {
                    self.ledger.budget_refused.incr();
                    self.registry.event(
                        "privacy.budget.refused",
                        &[
                            ("round", self.committed_rounds.into()),
                            ("spent", spent.into()),
                            ("budget", max.into()),
                        ],
                    );
                    return Err(FedoraError::PrivacyBudgetExhausted { spent, budget: max });
                }
            }
        }
        // Enforcing budget mode also honors the empirical estimator: a
        // confident measured exceedance of the mechanism ε means the
        // implementation is leaking more than the accountant admits, so
        // refusing further rounds is the only sound response.
        if self.config.privacy_budget.enforce {
            if let Some(est) = self.empirical.as_ref() {
                let budget = self.config.privacy.mechanism.epsilon();
                if est.exceeds(budget) {
                    let eps_hat = est.eps_hat;
                    self.ledger.budget_refused.incr();
                    self.registry.event(
                        "privacy.budget.refused",
                        &[
                            ("round", self.committed_rounds.into()),
                            ("spent", eps_hat.into()),
                            ("budget", budget.into()),
                            ("empirical", true.into()),
                        ],
                    );
                    return Err(FedoraError::PrivacyBudgetExhausted {
                        spent: eps_hat,
                        budget,
                    });
                }
            }
        }
        // Restart-stable chaos: derive and arm this round's fault seed
        // before journaling it, so a recovered campaign replays the same
        // stream for the same round number.
        let fault_seed = self.fault_plan.map(|plan| {
            let cfg = plan.config_for_round(self.committed_rounds);
            let seed = cfg.seed;
            self.main.store_mut().arm_faults(cfg);
            seed
        });
        // Write-ahead: the round-begin record (ε intent, client-set
        // digest, chaos seed) is durable before any ORAM state changes.
        if let Some(d) = self.durable.as_mut() {
            d.append_begin(
                self.committed_rounds,
                self.config.privacy.mechanism.epsilon(),
                requests.len() as u64,
                durable::request_digest(requests),
                fault_seed,
                self.seed_hint,
            )?;
        }
        self.round_accesses = 0;
        self.round_inserts = 0;
        // Continuous empirical-ε refresher: arm the shadow recorder only
        // on capture rounds (this round commits as committed_rounds + 1),
        // so every other round pays zero per-access recording overhead.
        if let Some(r) = self.refresher.as_mut() {
            let every = self.config.watch.empirical_every_rounds;
            if every > 0 && (self.committed_rounds + 1).is_multiple_of(every) {
                r.recorder.clear();
                r.round_requests = requests.to_vec();
                if !r.armed {
                    self.main
                        .store_mut()
                        .set_access_recorder(r.recorder.clone());
                    r.armed = true;
                }
            } else if r.armed {
                self.main
                    .store_mut()
                    .set_access_recorder(AccessTraceRecorder::disabled());
                r.armed = false;
            }
        }
        self.crash_check(CrashPoint::PostJournalBegin)?;
        let snapshot = if self.config.fault_tolerance.transactional {
            Some(Box::new(RoundSnapshot {
                main: self.main.clone(),
                buffer: self.buffer.clone(),
            }))
        } else {
            None
        };
        self.registry.event(
            "round.begin",
            &[
                ("round", self.committed_rounds.into()),
                ("k_requests", (requests.len() as u64).into()),
            ],
        );
        // The round's trace span stays open across serve/aggregate calls
        // until end_round (or abort) closes it.
        self.round_span = Some(self.registry.trace_span_with(
            "round",
            &[
                ("round", self.committed_rounds.into()),
                ("k_requests", (requests.len() as u64).into()),
            ],
        ));
        let mut state = RoundState {
            report: RoundReport {
                k_requests: requests.len(),
                ..Default::default()
            },
            ssd_before: self.main.store().device_stats(),
            buffer_before: self.buffer.device_stats(),
            vtree_before: self.main.vtree().device_stats(),
            eo_before: self.main.eo_count(),
            integrity_before: self.main.store().integrity_stats(),
            lost_ids: HashSet::new(),
            snapshot,
        };

        // Look-ahead: adopt the prefetched unions iff the worker was
        // scheduled for exactly this request set. The blocking wait (if
        // the worker is still running) is critical-path union time; the
        // work it finished before we arrived is this round's overlap
        // credit.
        let (prefetched, wait_ns, overlap_ns) = self.take_prefetched(requests);
        state.report.phases.union_ns += wait_ns;
        state.report.phases.overlap_ns = overlap_ns;
        match self.read_phase(requests, prefetched, &mut state, rng) {
            Ok(()) => {
                // Every interval measured inside the read phase landed in
                // exactly one of union_ns / fetch_ns; round_ns accumulates
                // those same values, so the partition is exact — no
                // subtraction across distinct clock reads.
                state.report.phases.round_ns +=
                    state.report.phases.union_ns + state.report.phases.fetch_ns;
                let partial = state.report.clone();
                self.active = Some(state);
                Ok(partial)
            }
            Err(e) => Err(self.abort_round(state, e)),
        }
    }

    /// Hands the scheduled request set for the *next* round to the
    /// prefetch worker, which computes the RNG-free per-chunk oblivious
    /// unions while the current round keeps running on this thread.
    ///
    /// No-op (returns `false`) unless pipelining is enabled. Scheduling
    /// is purely advisory: if the next `begin_round` arrives with a
    /// different request set, the speculation is discarded and the unions
    /// run inline, exactly as in serial mode. Nothing scheduled here is
    /// journaled — a crash before the round begins loses only in-memory
    /// speculation.
    pub fn schedule_next_round(&mut self, requests: &[u64]) -> bool {
        let chunk_size = self.chunk_plan.chunk_size();
        let Some(p) = self.pipeline.as_mut() else {
            return false;
        };
        let owned = requests.to_vec();
        p.scheduled = Some(owned.clone());
        p.worker.submit(move || {
            let unions: Vec<UnionSet> = owned
                .chunks(chunk_size)
                .map(|c| oblivious_union(c, c.len()))
                .collect();
            (owned, unions)
        });
        true
    }

    /// Whether look-ahead pipelining is active on this server.
    pub fn pipeline_enabled(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Claims the prefetched unions for `requests`, if the in-flight
    /// speculation was scheduled for exactly that slice. Returns the
    /// unions (if usable), the wall time spent blocked on the worker
    /// (critical-path, charged to `union_ns`), and the worker time that
    /// overlapped the previous round (informational `overlap_ns`).
    fn take_prefetched(&mut self, requests: &[u64]) -> (Option<Vec<UnionSet>>, u64, u64) {
        let Some(p) = self.pipeline.as_mut() else {
            return (None, 0, 0);
        };
        let matches = p.scheduled.as_deref() == Some(requests);
        p.scheduled = None;
        if !matches {
            // Mis-speculation (or nothing scheduled): drop any stale
            // result and fall back to inline unions.
            p.worker.discard();
            return (None, 0, 0);
        }
        let waited = Instant::now();
        let Some(((echo, unions), worked_ns)) = p.worker.take() else {
            return (None, 0, 0);
        };
        let wait_ns = waited.elapsed().as_nanos() as u64;
        if echo != requests {
            // Defensive: the worker result must echo the scheduled slice.
            return (None, 0, 0);
        }
        (Some(unions), wait_ns, worked_ns.saturating_sub(wait_ns))
    }

    /// Steps ①–③ proper: chunked union, FDP `k`, and the buffer loads.
    ///
    /// `prefetched` carries the look-ahead worker's per-chunk unions when
    /// the pipeline speculated correctly; the values are identical to
    /// what `oblivious_union` would compute inline (the union is a
    /// deterministic, RNG-free function of the chunk), so only the timing
    /// attribution changes. Every RNG draw below — `sample_k`, candidate
    /// ordering, dummy fetches, buffer ops — happens on this thread in
    /// serial program order regardless of mode.
    fn read_phase<R: Rng>(
        &mut self,
        requests: &[u64],
        prefetched: Option<Vec<UnionSet>>,
        state: &mut RoundState,
        rng: &mut R,
    ) -> Result<(), FedoraError> {
        let _trace = self.registry.trace_span("round.read");
        let mut prefetched = prefetched.map(Vec::into_iter);
        for chunk in requests.chunks(self.chunk_plan.chunk_size()) {
            if chunk.is_empty() {
                continue;
            }
            // ① Oblivious union (data-independent scan over the chunk) —
            // or the prefetched equivalent, already computed off the
            // critical path.
            let union_started = Instant::now();
            let union = match prefetched.as_mut().and_then(Iterator::next) {
                Some(u) => {
                    let _u = self.registry.trace_span_with(
                        "round.union",
                        &[
                            ("chunk_len", chunk.len().into()),
                            ("prefetched", 1u64.into()),
                        ],
                    );
                    u
                }
                None => {
                    let _u = self
                        .registry
                        .trace_span_with("round.union", &[("chunk_len", chunk.len().into())]);
                    oblivious_union(chunk, chunk.len())
                }
            };
            state.report.phases.union_ns += union_started.elapsed().as_nanos() as u64;
            state.report.union_scan_slots +=
                requests_scan_cost(chunk.len(), self.chunk_plan.chunk_size());
            let k_union = union.len_real();
            state.report.k_union += k_union;

            // ②–③ below are one timed fetch interval: FDP sampling,
            // candidate ordering, and the main-ORAM / buffer accesses.
            let fetch_started = Instant::now();
            // ② ε-FDP choice of k.
            let k = self
                .config
                .privacy
                .mechanism
                .sample_k(k_union as u64, chunk.len() as u64, rng) as usize;
            state.report.k_accesses += k;

            // ③ Read phase: pick which entries to read per the configured
            // strategy (§4.2), then fetch the first `k` of that ordering.
            let ordered = Self::order_candidates(&union, self.config.selection, rng);
            let to_fetch = k.min(k_union);
            for &id in &ordered[..to_fetch] {
                if self.buffer.is_loaded(id) {
                    // Cross-chunk duplicate: the entry already left the
                    // main ORAM this round. The access still happens (same
                    // observable path read), it just returns nothing new —
                    // the performance cost of chunking the paper describes.
                    self.main.dummy_fetch(rng)?;
                    self.buffer.load_dummy(rng)?;
                } else if self.quarantined_ids.contains(&id) {
                    // Degraded mode: the entry's block was destroyed by a
                    // bucket repair. Keep the observable access pattern
                    // (same path read + buffer slot) but serve it as lost.
                    self.main.dummy_fetch(rng)?;
                    self.buffer.load_dummy(rng)?;
                    state.report.lost += 1;
                    state.lost_ids.insert(id);
                } else {
                    match self.main.fetch(id, rng) {
                        Ok(block) => self.buffer.load_entry(id, &block.payload, rng)?,
                        Err(OramError::MissingBlock { id }) => {
                            // Lazy quarantine: the path read happened but
                            // the block is gone (its bucket was repaired).
                            self.quarantined_ids.insert(id);
                            self.buffer.load_dummy(rng)?;
                            state.report.lost += 1;
                            state.lost_ids.insert(id);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                self.note_read_access()?;
            }
            // Lost entries (k < k_union): not read this round.
            for &id in &ordered[to_fetch..] {
                state.report.lost += 1;
                state.lost_ids.insert(id);
            }
            // Dummy accesses (k > k_union).
            for _ in k_union..k {
                state.report.dummies += 1;
                self.main.dummy_fetch(rng)?;
                self.buffer.load_dummy(rng)?;
                self.note_read_access()?;
            }
            state.report.phases.fetch_ns += fetch_started.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// Handles a mid-round failure. Integrity failures under transactional
    /// mode roll the ORAMs back to the round-start snapshot, heal the
    /// offending bucket, and surface as [`FedoraError::RoundAborted`];
    /// everything else propagates unchanged (non-transactional mode keeps
    /// the cheap fail-fast behaviour).
    fn abort_round(&mut self, mut state: RoundState, err: FedoraError) -> FedoraError {
        // Any path through here ends the round attempt: close the round's
        // trace span (mid-round child spans already unwound via their own
        // drop guards) and mark it so trace consumers can tell an aborted
        // tree from a completed one.
        if let Some(mut span) = self.round_span.take() {
            span.attr("aborted", true);
        }
        let FedoraError::Oram(OramError::Integrity { kind, node }) = err else {
            return err;
        };
        let Some(snap) = state.snapshot.take() else {
            return err;
        };
        // Record what this round observed before rewinding the counters.
        state.report.integrity = self
            .main
            .store()
            .integrity_stats()
            .since(&state.integrity_before);
        // Probe the failed bucket before rewinding: an in-flight fault
        // heals on re-read (no repair needed), while persistent damage
        // predates the snapshot, survives the restore, and must be
        // repaired on the restored state or every retry aborts again.
        let persistent = self.main.store_mut().read_bucket(node).is_err();
        self.main = snap.main;
        self.buffer = snap.buffer;
        if persistent {
            if let Err(e) = self.main.repair_bucket(node) {
                return FedoraError::Oram(e);
            }
        }
        self.telemetry.rounds_aborted.incr();
        self.registry.event(
            "round.abort",
            &[
                ("round", self.committed_rounds.into()),
                ("node", node.into()),
                ("kind", format!("{kind:?}").into()),
                ("persistent", persistent.into()),
            ],
        );
        self.aborts.push(RoundAbort {
            kind,
            node,
            report: state.report,
        });
        FedoraError::RoundAborted { kind, node }
    }

    /// Orders the union's entries per the selection strategy. Runs inside
    /// the secure controller; the popularity ordering uses the oblivious
    /// bitonic network over the union's per-entry counts.
    fn order_candidates<R: Rng>(
        union: &fedora_oblivious::UnionSet,
        strategy: SelectionStrategy,
        rng: &mut R,
    ) -> Vec<u64> {
        match strategy {
            SelectionStrategy::FirstK => union.real_entries().to_vec(),
            SelectionStrategy::Random => {
                use rand::seq::SliceRandom;
                let mut ids = union.real_entries().to_vec();
                ids.shuffle(rng);
                ids
            }
            SelectionStrategy::PopularFirst => {
                // Sort descending by count with the data-independent
                // bitonic network: key = MAX − count.
                let mut pairs: Vec<(u64, u64)> = union
                    .real_entries_with_counts()
                    .map(|(id, count)| (u64::MAX - count, id))
                    .collect();
                fedora_oblivious::sort::bitonic_sort_pairs(&mut pairs);
                pairs.into_iter().map(|(_, id)| id).collect()
            }
        }
    }

    /// Step ④: serves one user request from the buffer ORAM. Returns
    /// `None` when the entry was lost to the FDP mechanism this round
    /// (caller applies the default-value strategy).
    ///
    /// # Errors
    ///
    /// [`FedoraError::UnknownEntry`] for ids outside this round's union;
    /// [`FedoraError::NoActiveRound`] outside a round.
    pub fn serve<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<Option<Vec<u8>>, FedoraError> {
        let started = Instant::now();
        let result = self.serve_inner(id, rng);
        if let Some(state) = self.active.as_mut() {
            let ns = started.elapsed().as_nanos() as u64;
            state.report.phases.serve_ns += ns;
            state.report.phases.round_ns += ns;
        }
        result
    }

    fn serve_inner<R: Rng>(
        &mut self,
        id: u64,
        rng: &mut R,
    ) -> Result<Option<Vec<u8>>, FedoraError> {
        let state = self.active.as_ref().ok_or(FedoraError::NoActiveRound)?;
        let _trace = self.registry.trace_span("round.serve");
        if state.lost_ids.contains(&id) {
            self.telemetry.lost_serves.incr();
            return Ok(None);
        }
        match self.buffer.serve(id, rng) {
            Ok(bytes) => {
                self.telemetry.download_bytes.add(bytes.len() as u64);
                Ok(Some(bytes))
            }
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Step ⑥: accumulates one client's gradient for one entry. The mode's
    /// `Pre` function is applied here, inside the trusted controller.
    /// Gradients for lost entries are dropped (returns `false`).
    ///
    /// # Errors
    ///
    /// As for [`serve`](Self::serve).
    pub fn aggregate<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<bool, FedoraError> {
        let started = Instant::now();
        let result = self.aggregate_inner(mode, id, gradient, n_samples, rng);
        if let Some(state) = self.active.as_mut() {
            let ns = started.elapsed().as_nanos() as u64;
            state.report.phases.aggregate_ns += ns;
            state.report.phases.round_ns += ns;
        }
        result
    }

    fn aggregate_inner<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<bool, FedoraError> {
        let state = self.active.as_ref().ok_or(FedoraError::NoActiveRound)?;
        let _trace = self.registry.trace_span("round.aggregate");
        // The client's upload arrived either way — count its bytes even
        // when the entry was lost and the gradient is dropped.
        self.telemetry
            .upload_bytes
            .add(core::mem::size_of_val(gradient) as u64);
        if state.lost_ids.contains(&id) {
            return Ok(false);
        }
        let mut g = gradient.to_vec();
        let weight = mode.pre(&mut g, n_samples);
        match self.buffer.aggregate(id, &g, weight, rng) {
            Ok(()) => Ok(true),
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Step ⑦: drains the buffer ORAM, applies `Post` and the server
    /// learning rate, and writes the `k` entries (real and dummy) back to
    /// the main ORAM — one EO access per `A` insertions, no AO accesses.
    /// Completes the round and returns its final report.
    ///
    /// # Errors
    ///
    /// [`FedoraError::NoActiveRound`] outside a round; device errors
    /// propagate.
    pub fn end_round<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        let mut state = self.active.take().ok_or(FedoraError::NoActiveRound)?;
        match self.write_phase(mode, server_lr, &mut state, rng) {
            Ok(report) => {
                // Close the round's trace span (emits trace.end).
                self.round_span = None;
                Ok(report)
            }
            Err(e) => Err(self.abort_round(state, e)),
        }
    }

    /// Step ⑦ proper: the drain + writeback loop and report finalization.
    fn write_phase<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        state: &mut RoundState,
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        let write_started = Instant::now();
        let _trace = self.registry.trace_span("round.write");
        let drained = self.buffer.drain_round(rng)?;
        for entry in drained.entries {
            let mut agg = entry.gradient;
            mode.post(entry.id, &mut agg, entry.weight, rng);
            // θ_{t+1} = θ_t + η·Post(Σ Pre(Δ)) — deltas already point
            // downhill (they are trained-minus-downloaded differences).
            let mut values: Vec<f32> = entry
                .entry
                .chunks_exact(4)
                .map(crate::convert::le_f32)
                .collect();
            for (v, g) in values.iter_mut().zip(&agg) {
                *v += server_lr * g;
            }
            let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.main.insert(entry.id, bytes, rng)?;
            self.note_insert()?;
        }
        for _ in 0..drained.dummy_count {
            self.main.insert_dummy()?;
            self.note_insert()?;
        }
        mode.on_round_end();

        // Pipelined mode: EO path writes staged during the insertions
        // above flush here, one `write_path` per eviction in EO order —
        // identical device traffic and counters to serial mode, just
        // batched off the per-insertion critical path. Must complete
        // before the stats deltas and checkpoint below so the durable
        // state never gets ahead of the device. No-op in serial mode.
        self.main.flush_deferred_evictions()?;

        // Finalize the report.
        state.report.eo_accesses = self.main.eo_count() - state.eo_before;
        state.report.ssd = self.main.store().device_stats().since(&state.ssd_before);
        state.report.buffer_dram = self.buffer.device_stats().since(&state.buffer_before);
        state.report.vtree_dram = self.main.vtree().device_stats().since(&state.vtree_before);
        state.report.integrity = self
            .main
            .store()
            .integrity_stats()
            .since(&state.integrity_before);
        let round_epsilon = self.config.privacy.mechanism.epsilon();
        if self.accountant.record_round(round_epsilon) {
            self.ledger.round_epsilon.set(round_epsilon);
        } else {
            self.ledger.poisoned.incr();
        }
        // Publish the ledger *before* the report snapshot below so
        // `fdp.total.epsilon` on every RoundReport equals the accountant's
        // total at that round exactly (the acceptance invariant).
        self.ledger
            .total_epsilon
            .set(self.accountant.total_epsilon());
        self.ledger.rounds.set_u64(self.accountant.rounds() as u64);
        self.ledger.dummies.add(state.report.dummies as u64);
        self.ledger.lost.add(state.report.lost as u64);
        self.ledger.k_union.set_u64(state.report.k_union as u64);
        self.ledger.k_overhead.record(state.report.dummies as u64);
        if !self.budget_flagged {
            if let Some(max) = self.config.privacy_budget.max_total_epsilon {
                let spent = self.accountant.total_epsilon();
                if spent > max {
                    self.budget_flagged = true;
                    self.registry.event(
                        "privacy.budget.exceeded",
                        &[
                            ("round", self.committed_rounds.into()),
                            ("spent", spent.into()),
                            ("budget", max.into()),
                        ],
                    );
                }
            }
        }
        self.telemetry.rounds_completed.incr();
        let write_ns = write_started.elapsed().as_nanos() as u64;
        state.report.phases.write_ns = write_ns;
        state.report.phases.round_ns += write_ns;
        self.telemetry
            .round_latency
            .record(state.report.phases.round_ns);
        self.publish_phase_gauges(&state.report.phases);
        self.registry.event(
            "round.end",
            &[
                ("round", self.committed_rounds.into()),
                ("k_accesses", (state.report.k_accesses as u64).into()),
                ("lost", (state.report.lost as u64).into()),
                ("eo_accesses", state.report.eo_accesses.into()),
            ],
        );
        state.report.metrics = self.registry.snapshot_lite();
        // Durable commit: the round counts as committed once its
        // checkpoint is on disk; the journal commit record then seals it.
        // The mode's optimizer state (Adam moments, LazyDP staleness)
        // rides in that checkpoint so a recovered stateful mode resumes
        // exactly where its uncrashed twin would be.
        if self.durable.is_some() {
            self.mode_state = mode.state_bytes();
        }
        let prev_last = self.last_committed.replace(state.report.scrubbed());
        self.committed_rounds += 1;
        self.checkpoint_and_commit(&state.report, prev_last)?;
        self.telemetry.uptime_rounds.set_u64(self.committed_rounds);
        // Refresh before the watch sample so a report taken at the same
        // commit already sees the new estimate.
        self.maybe_empirical_refresh();
        self.maybe_watch_sample();
        self.completed.push(state.report.clone());
        Ok(state.report.clone())
    }

    /// Feeds an out-of-band empirical-ε estimate (from
    /// [`audit::empirical`](crate::audit::empirical)) into the server's
    /// privacy ledger and watch plane.
    ///
    /// Publishes the `fdp.empirical.*` audit-only gauges, and — if the
    /// estimate confidently exceeds the configured mechanism ε — journals
    /// a `watch.alarm.empirical_eps` event once per crossing. When budget
    /// enforcement is on, subsequent [`begin_round`](Self::begin_round)
    /// calls are refused while the exceedance stands.
    pub fn record_empirical_estimate(&mut self, estimate: EpsilonEstimate) {
        self.ledger.empirical_eps_hat.set(estimate.eps_hat);
        self.ledger.empirical_ci_lo.set(estimate.ci_lo);
        self.ledger.empirical_ci_hi.set(estimate.ci_hi);
        self.ledger
            .empirical_samples
            .set_u64(estimate.samples as u64);
        let budget = self.config.privacy.mechanism.epsilon();
        if estimate.exceeds(budget) {
            if !self.empirical_flagged {
                self.empirical_flagged = true;
                self.registry.event(
                    "watch.alarm.empirical_eps",
                    &[
                        ("round", self.committed_rounds.into()),
                        ("eps_hat", estimate.eps_hat.into()),
                        ("ci_lo", estimate.ci_lo.into()),
                        ("budget", budget.into()),
                        ("samples", (estimate.samples as u64).into()),
                    ],
                );
            }
        } else {
            self.empirical_flagged = false;
        }
        self.empirical = Some(estimate);
    }

    /// The latest empirical-ε estimate recorded via
    /// [`record_empirical_estimate`](Self::record_empirical_estimate).
    pub fn empirical_estimate(&self) -> Option<&EpsilonEstimate> {
        self.empirical.as_ref()
    }

    /// The most recent watch-plane report, if the watch plane is enabled
    /// ([`WatchConfig::every_rounds`] > 0) and has sampled at least once.
    ///
    /// [`WatchConfig::every_rounds`]: crate::config::WatchConfig::every_rounds
    pub fn watch_report(&self) -> Option<&WatchReport> {
        self.watch_last.as_ref()
    }

    /// Continuous empirical-ε refresher: every
    /// `watch.empirical_every_rounds` committed rounds, take the shadow
    /// trace the round just left in the internally armed recorder. Two
    /// consecutive captures form one estimator pair (scaled by the
    /// schedules' [`value_distance`]); each completed pair re-estimates
    /// and republishes the `fdp.empirical.*` gauges via
    /// [`record_empirical_estimate`](Self::record_empirical_estimate) —
    /// no on-demand twin replay anywhere. The refresher's own cost lands
    /// in `watch.sample.ns`, so the watch plane's <5% overhead budget
    /// covers it too.
    fn maybe_empirical_refresh(&mut self) {
        let every = self.config.watch.empirical_every_rounds;
        if every == 0 || !self.committed_rounds.is_multiple_of(every) || self.refresher.is_none() {
            return;
        }
        let started = Instant::now();
        let refreshed = match self.refresher.as_mut() {
            Some(r) => {
                let trace = r.recorder.take();
                let requests = std::mem::take(&mut r.round_requests);
                if trace.is_empty() {
                    None
                } else {
                    match r.pending.take() {
                        None => {
                            r.pending = Some((requests, trace));
                            None
                        }
                        Some((reqs_a, trace_a)) => {
                            let d = value_distance(&reqs_a, &requests);
                            r.estimator.observe_pair_scaled(&trace_a, &trace, d);
                            Some((r.estimator.estimate(), d))
                        }
                    }
                }
            }
            None => None,
        };
        if let Some((estimate, distance)) = refreshed {
            self.record_empirical_estimate(estimate);
            self.registry.event(
                "watch.empirical.refresh",
                &[
                    ("round", self.committed_rounds.into()),
                    ("eps_hat", estimate.eps_hat.into()),
                    ("samples", (estimate.samples as u64).into()),
                    ("distance", (distance as u64).into()),
                ],
            );
        }
        self.registry
            .histogram("watch.sample.ns")
            .record(started.elapsed().as_nanos() as u64);
    }

    /// Watch-plane sampler: every `watch.every_rounds` committed rounds,
    /// snapshot the registry, window it against the previous sample via
    /// [`Snapshot::delta`], evaluate the SLO/privacy rules, and journal
    /// one `watch.alarm.*` event per tripped rule. The sample's own cost
    /// lands in the `watch.sample.ns` histogram so the overhead claim is
    /// itself measurable.
    fn maybe_watch_sample(&mut self) {
        let cfg = self.config.watch;
        if !cfg.is_enabled() || !self.committed_rounds.is_multiple_of(cfg.every_rounds) {
            return;
        }
        let started = Instant::now();
        let now = self.registry.snapshot_lite();
        let windowed = match self.watch_prev.as_ref() {
            Some(prev) => now.delta(prev),
            None => now.clone(),
        };
        let window_rounds = windowed.counter("fl.rounds.completed").unwrap_or(0);
        let round_p99_ns = windowed.histogram("round.latency").map_or(0, |h| h.p99);
        let requests = windowed.counter("net.requests").unwrap_or(0);
        let shed = windowed.counter("net.shed.requests").unwrap_or(0);
        let arrivals = requests.saturating_add(shed);
        let shed_ppm = shed
            .saturating_mul(1_000_000)
            .checked_div(arrivals)
            .unwrap_or(0);
        let mut alarms = Vec::new();
        if let Some(max) = cfg.max_round_p99_ns {
            if window_rounds > 0 && round_p99_ns > max {
                alarms.push("round_p99".to_string());
                self.registry.event(
                    "watch.alarm.round_p99",
                    &[
                        ("round", self.committed_rounds.into()),
                        ("p99_ns", round_p99_ns.into()),
                        ("max_ns", max.into()),
                        ("window_rounds", window_rounds.into()),
                    ],
                );
            }
        }
        if let Some(max) = cfg.max_shed_ppm {
            if arrivals > 0 && shed_ppm > max {
                alarms.push("shed_ppm".to_string());
                self.registry.event(
                    "watch.alarm.shed_ppm",
                    &[
                        ("round", self.committed_rounds.into()),
                        ("shed_ppm", shed_ppm.into()),
                        ("max_ppm", max.into()),
                        ("requests", requests.into()),
                    ],
                );
            }
        }
        // The empirical-ε alarm is journaled at estimate-record time (see
        // record_empirical_estimate); the watch report lists it while the
        // exceedance stands so pollers see it without replaying events.
        if cfg.alarm_on_empirical && self.empirical_flagged {
            alarms.push("empirical_eps".to_string());
        }
        let (eps_hat, eps_samples) = self
            .empirical
            .as_ref()
            .map_or((0.0, 0), |e| (e.eps_hat, e.samples as u64));
        self.registry
            .gauge("watch.alarms.active")
            .set_u64(alarms.len() as u64);
        let overhead_ns = started.elapsed().as_nanos() as u64;
        self.registry
            .histogram("watch.sample.ns")
            .record(overhead_ns);
        self.watch_last = Some(WatchReport {
            round: self.committed_rounds,
            window_rounds,
            round_p99_ns,
            requests,
            shed_ppm,
            total_epsilon: self.accountant.total_epsilon(),
            eps_hat,
            eps_samples,
            eps_budget: self.config.privacy.mechanism.epsilon(),
            alarms,
            overhead_ns,
        });
        self.watch_prev = Some(now);
    }

    /// Mirrors the latest round's phase breakdown into `round.phase.*`
    /// gauges so flat metric consumers (BENCH files, CSV) see it without
    /// parsing reports.
    fn publish_phase_gauges(&self, phases: &PhaseBreakdown) {
        if !self.registry.is_enabled() {
            return;
        }
        for (name, ns) in [
            ("round.phase.union_ns", phases.union_ns),
            ("round.phase.fetch_ns", phases.fetch_ns),
            ("round.phase.serve_ns", phases.serve_ns),
            ("round.phase.aggregate_ns", phases.aggregate_ns),
            ("round.phase.write_ns", phases.write_ns),
            ("round.phase.round_ns", phases.round_ns),
            ("round.phase.overlap_ns", phases.overlap_ns),
        ] {
            self.registry.gauge(name).set_u64(ns);
        }
    }

    /// Reads the whole table out of the main ORAM (fetch + reinsert each
    /// entry). Used to sync a model for evaluation; **not** part of the
    /// private protocol.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn snapshot_table<R: Rng>(&mut self, rng: &mut R) -> Result<Vec<Vec<u8>>, FedoraError> {
        let mut out = Vec::with_capacity(self.config.table.num_entries as usize);
        for id in 0..self.config.table.num_entries {
            if self.quarantined_ids.contains(&id) {
                out.push(vec![0; self.config.table.entry_bytes]);
                continue;
            }
            match self.main.fetch(id, rng) {
                Ok(block) => {
                    out.push(block.payload.clone());
                    self.main.insert(id, block.payload, rng)?;
                }
                Err(OramError::MissingBlock { id }) => {
                    self.quarantined_ids.insert(id);
                    out.push(vec![0; self.config.table.entry_bytes]);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }
}

impl core::fmt::Debug for FedoraServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FedoraServer")
            .field("table", &self.config.table)
            .field("rounds_completed", &self.completed.len())
            .field("committed_rounds", &self.committed_rounds)
            .field("round_active", &self.active.is_some())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FedoraConfig, PrivacyConfig, TableSpec};
    use fedora_fl::modes::{FedAdam, FedAvg, LazyDp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(epsilon: Option<f64>) -> (FedoraServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = match epsilon {
            None => PrivacyConfig::none(),
            Some(0.0) => PrivacyConfig::perfect(),
            Some(e) => PrivacyConfig::with_epsilon(e),
        };
        let s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        (s, rng)
    }

    #[test]
    fn round_counts_union() {
        let (mut s, mut rng) = server(None); // ε=∞: k = k_union exactly
        let report = s.begin_round(&[42, 7, 42, 38, 42, 38], &mut rng).unwrap();
        assert_eq!(report.k_requests, 6);
        assert_eq!(report.k_union, 3);
        assert_eq!(report.k_accesses, 3);
        assert_eq!(report.dummies, 0);
        assert_eq!(report.lost, 0);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn phases_partition_round_exactly() {
        // The five phase fields must sum to round_ns identically — in
        // serial mode and in pipelined mode, where union work may be
        // prefetched (charged as wait time) and overlap_ns is credited
        // outside the partition.
        for lookahead in [0usize, 1] {
            let mut rng = StdRng::seed_from_u64(23);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
            config.pipeline = crate::config::PipelineConfig { lookahead };
            let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            assert_eq!(s.pipeline_enabled(), lookahead > 0);
            let mut mode = FedAvg;
            let batches: [&[u64]; 3] = [&[1, 2, 3, 4], &[5, 6, 7], &[8, 9]];
            for (i, batch) in batches.iter().enumerate() {
                s.begin_round(batch, &mut rng).unwrap();
                if let Some(next) = batches.get(i + 1) {
                    assert_eq!(s.schedule_next_round(next), lookahead > 0);
                }
                let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
                let p = report.phases;
                assert_eq!(
                    p.sum_ns(),
                    p.round_ns,
                    "phases must partition round_ns exactly (lookahead={lookahead}, round {i})"
                );
                assert!(p.round_ns > 0, "round wall time measured");
                if lookahead == 0 {
                    assert_eq!(p.overlap_ns, 0, "serial mode never credits overlap");
                }
            }
        }
    }

    #[test]
    fn serve_returns_entries() {
        let (mut s, mut rng) = server(None);
        s.begin_round(&[5, 9, 5], &mut rng).unwrap();
        assert_eq!(s.serve(5, &mut rng).unwrap().unwrap(), vec![5u8; 32]);
        assert_eq!(s.serve(9, &mut rng).unwrap().unwrap(), vec![9u8; 32]);
        // Duplicate serve is fine (K serves per round).
        assert_eq!(s.serve(5, &mut rng).unwrap().unwrap(), vec![5u8; 32]);
        // Un-requested entry is an error.
        assert!(matches!(
            s.serve(100, &mut rng),
            Err(FedoraError::UnknownEntry { id: 100 })
        ));
    }

    #[test]
    fn aggregate_and_update_applies_fedavg() {
        let (mut s, mut rng) = server(None);
        // Entry 3 starts as bytes [3;32] → f32 garbage; use entry 0 which
        // is all zeros.
        s.begin_round(&[0], &mut rng).unwrap();
        let mut mode = FedAvg;
        // Two clients: grads [1.0...] (n=1) and [3.0...] (n=1) → mean 2.0.
        let dim = 8;
        assert!(s.aggregate(&mode, 0, &vec![1.0; dim], 1, &mut rng).unwrap());
        assert!(s.aggregate(&mode, 0, &vec![3.0; dim], 1, &mut rng).unwrap());
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Next round: entry 0 should now decode as 2.0s.
        s.begin_round(&[0], &mut rng).unwrap();
        let bytes = s.serve(0, &mut rng).unwrap().unwrap();
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2.0; dim]);
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn perfect_privacy_always_reads_k() {
        let (mut s, mut rng) = server(Some(0.0));
        let report = s.begin_round(&[1, 1, 1, 1, 2, 2, 3, 3], &mut rng).unwrap();
        assert_eq!(report.k_accesses, 8, "Strawman 1: k = K");
        assert_eq!(report.dummies, 8 - 3);
        assert_eq!(report.lost, 0);
        let mut mode = FedAvg;
        let final_report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(final_report.eo_accesses >= 2, "8 inserts / A=4 = 2 EOs");
    }

    #[test]
    fn lost_entries_served_as_none() {
        // Force losses with a shape that always picks k=1.
        let mut rng = StdRng::seed_from_u64(18);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy.mechanism =
            fedora_fdp::FdpMechanism::new(f64::INFINITY, fedora_fdp::YShape::Custom(vec![1.0]))
                .unwrap();
        // ε=∞ picks k=k_union; to force loss use ε=0-ish with delta at 1:
        config.privacy.mechanism =
            fedora_fdp::FdpMechanism::new(0.0, fedora_fdp::YShape::Custom(vec![1.0])).unwrap();
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let report = s.begin_round(&[10, 20, 30], &mut rng).unwrap();
        assert_eq!(report.k_accesses, 1);
        assert_eq!(report.lost, 2);
        // First-k strategy: entry 10 read; 20 and 30 lost.
        assert!(s.serve(10, &mut rng).unwrap().is_some());
        assert!(s.serve(20, &mut rng).unwrap().is_none());
        assert!(s.serve(30, &mut rng).unwrap().is_none());
        // Gradients for lost entries are dropped.
        let mode = FedAvg;
        assert!(!s.aggregate(&mode, 20, &[1.0; 8], 1, &mut rng).unwrap());
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn popular_first_minimizes_lost_requests() {
        // Force k = 2 < k_union = 4 with a zero-epsilon point mass at 2,
        // and compare strategies on a skewed request stream.
        let requests = [9u64, 9, 9, 9, 9, 1, 2, 3]; // entry 9 dominates
        let run = |strategy: crate::config::SelectionStrategy, seed: u64| -> bool {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(64), 16);
            config.privacy.mechanism = fedora_fdp::FdpMechanism::new(
                0.0,
                fedora_fdp::YShape::Custom(vec![0.0, 1.0]), // always k = 2
            )
            .unwrap();
            config.selection = strategy;
            let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            s.begin_round(&requests, &mut rng).unwrap();
            // Was the hot entry (9) served?
            let served = s.serve(9, &mut rng).unwrap().is_some();
            let mut mode = FedAvg;
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            served
        };
        // PopularFirst always keeps the hot entry.
        assert!(run(crate::config::SelectionStrategy::PopularFirst, 1));
        assert!(run(crate::config::SelectionStrategy::PopularFirst, 2));
        // FirstK keeps union order: 9 appears first here, so rotate the
        // stream so 9 comes last in first-seen order.
        let _ = run(crate::config::SelectionStrategy::FirstK, 3);
    }

    #[test]
    fn selection_strategies_preserve_correctness() {
        for strategy in [
            crate::config::SelectionStrategy::FirstK,
            crate::config::SelectionStrategy::Random,
            crate::config::SelectionStrategy::PopularFirst,
        ] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
            config.privacy = PrivacyConfig::none();
            config.selection = strategy;
            let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
            let mut mode = FedAvg;
            for round in 0..4u64 {
                let reqs: Vec<u64> = (0..12).map(|i| (i * 3 + round) % 128).collect();
                s.begin_round(&reqs, &mut rng).unwrap();
                for &id in &reqs {
                    assert_eq!(
                        s.serve(id, &mut rng).unwrap().unwrap(),
                        vec![id as u8; 32],
                        "{strategy:?}"
                    );
                }
                s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn read_phase_is_ssd_write_free() {
        let (mut s, mut rng) = server(Some(1.0));
        let before = s.ssd_stats();
        s.begin_round(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng).unwrap();
        let after_read = s.ssd_stats().since(&before);
        assert_eq!(
            after_read.bytes_written, 0,
            "Opt. 1+2: read phase never writes"
        );
        assert!(after_read.bytes_read > 0);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn round_lifecycle_enforced() {
        let (mut s, mut rng) = server(None);
        let mut mode = FedAvg;
        assert!(matches!(
            s.end_round(&mut mode, 1.0, &mut rng),
            Err(FedoraError::NoActiveRound)
        ));
        s.begin_round(&[1], &mut rng).unwrap();
        assert!(matches!(
            s.begin_round(&[2], &mut rng),
            Err(FedoraError::RoundInProgress)
        ));
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn too_many_requests_rejected() {
        let (mut s, mut rng) = server(None);
        let reqs: Vec<u64> = (0..65).map(|i| i % 128).collect();
        assert!(matches!(
            s.begin_round(&reqs, &mut rng),
            Err(FedoraError::TooManyRequests { got: 65, max: 64 })
        ));
    }

    #[test]
    fn cross_chunk_duplicates_counted_but_safe() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.privacy.chunk_size = 2; // force many chunks
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        // Entry 7 appears in three chunks.
        let report = s.begin_round(&[7, 1, 7, 2, 7, 3], &mut rng).unwrap();
        // Per-chunk unions: {7,1}, {7,2}, {7,3} → k_union = 6 (chunking
        // cost), but the data stays consistent.
        assert_eq!(report.k_union, 6);
        assert_eq!(s.serve(7, &mut rng).unwrap().unwrap(), vec![7u8; 32]);
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        // Entry intact next round.
        s.begin_round(&[7], &mut rng).unwrap();
        assert_eq!(s.serve(7, &mut rng).unwrap().unwrap(), vec![7u8; 32]);
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn multi_round_consistency() {
        let (mut s, mut rng) = server(Some(1.0));
        let mut mode = FedAvg;
        for round in 0..10u64 {
            let reqs: Vec<u64> = (0..16).map(|i| (i * 7 + round) % 128).collect();
            s.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                let _ = s.serve(id, &mut rng).unwrap();
            }
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        assert_eq!(s.reports().len(), 10);
        // Merkle-free counters still coherent.
        assert!(s.main_oram().counters_match_schedule());
    }

    #[test]
    fn snapshot_reads_whole_table() {
        let (mut s, mut rng) = server(None);
        let table = s.snapshot_table(&mut rng).unwrap();
        assert_eq!(table.len(), 128);
        assert_eq!(table[5], vec![5u8; 32]);
        // Table still intact afterwards.
        let table2 = s.snapshot_table(&mut rng).unwrap();
        assert_eq!(table, table2);
    }

    #[test]
    fn transient_faults_retried_transparently() {
        let (mut s, mut rng) = server(None);
        s.arm_faults(FaultConfig::chaos(7, 0.0, 0.0, 1.0));
        s.begin_round(&[3, 4, 5], &mut rng).unwrap();
        assert_eq!(s.serve(3, &mut rng).unwrap().unwrap(), vec![3u8; 32]);
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(
            report.integrity.transient_retries > 0,
            "{:?}",
            report.integrity
        );
        assert!(s.aborts().is_empty());
        assert!(s.fault_stats().transients > 0);
    }

    #[test]
    fn transactional_round_aborts_rolls_back_and_recovers() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.fault_tolerance = crate::config::FaultToleranceConfig::transactional();
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);

        // Every read attempt gets an in-flight bit flip: the retry budget
        // exhausts and the round must abort.
        s.arm_faults(FaultConfig::chaos(11, 1.0, 0.0, 0.0));
        let reqs = [10u64, 20, 30];
        let err = s.begin_round(&reqs, &mut rng).unwrap_err();
        assert!(matches!(err, FedoraError::RoundAborted { .. }), "{err}");
        assert_eq!(s.aborts().len(), 1);
        assert!(s.aborts()[0].report.integrity.detected_corruption > 0);
        assert!(s.reports().is_empty(), "aborted round must not complete");

        // The rollback restored a consistent state: with injection off the
        // same round succeeds and serves correct data (entries that lived
        // in a repaired bucket degrade to lost, never to wrong bytes).
        s.disarm_faults();
        let mut mode = FedAvg;
        for _ in 0..3 {
            s.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                if let Some(bytes) = s.serve(id, &mut rng).unwrap() {
                    assert_eq!(bytes, vec![id as u8; 32]);
                } else {
                    assert!(s.quarantined_entries().contains(&id));
                }
            }
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        assert_eq!(s.reports().len(), 3, "forward progress after the abort");
    }

    #[test]
    fn non_transactional_integrity_error_propagates() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        config.fault_tolerance.max_read_retries = 0;
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        s.arm_faults(FaultConfig::chaos(13, 1.0, 0.0, 0.0));
        let err = s.begin_round(&[1, 2], &mut rng).unwrap_err();
        assert!(
            matches!(err, FedoraError::Oram(OramError::Integrity { .. })),
            "no transaction: the raw error surfaces ({err})"
        );
        assert!(s.aborts().is_empty());
    }

    #[test]
    fn degraded_mode_excludes_quarantined_entries() {
        let (mut s, mut rng) = server(None);
        // Destroy every tree bucket: all non-stash blocks become missing.
        let nodes = s.main_oram().store().geometry().num_nodes();
        for node in 0..nodes {
            s.repair_bucket(node).unwrap();
        }
        let reqs = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let mut mode = FedAvg;
        s.begin_round(&reqs, &mut rng).unwrap();
        let mut lost = 0;
        for &id in &reqs {
            match s.serve(id, &mut rng).unwrap() {
                Some(bytes) => assert_eq!(bytes, vec![id as u8; 32], "stash survivor"),
                None => lost += 1,
            }
        }
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(lost >= 1, "emptied tree must lose some requested entries");
        assert_eq!(s.quarantined_entries().len(), lost);
        // The next round still proceeds, with the same entries excluded.
        s.begin_round(&reqs, &mut rng).unwrap();
        for &id in s.quarantined_entries().clone().iter() {
            assert!(s.serve(id, &mut rng).unwrap().is_none());
        }
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn round_report_carries_metrics_snapshot() {
        let (mut s, mut rng) = server(None);
        assert!(s.registry().is_enabled());
        s.begin_round(&[1, 2, 3, 1], &mut rng).unwrap();
        s.serve(1, &mut rng).unwrap();
        let mode = FedAvg;
        s.aggregate(&mode, 1, &[0.5; 8], 1, &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let m = &report.metrics;
        // Acceptance keys: all present and coherent with the report.
        let access = m.histogram("oram.access.latency").expect("latency hist");
        assert!(access.count > 0);
        assert!(access.min <= access.p50 && access.p50 <= access.p95);
        assert!(access.p95 <= access.p99 && access.p99 <= access.max);
        assert_eq!(
            m.counter("storage.pages_read"),
            Some(s.ssd_stats().pages_read)
        );
        assert_eq!(
            m.counter("storage.pages_written"),
            Some(s.ssd_stats().pages_written)
        );
        assert_eq!(m.counter("fl.round.upload_bytes"), Some(8 * 4));
        assert_eq!(m.counter("fl.round.download_bytes"), Some(32));
        assert_eq!(m.counter("integrity.retries"), Some(0));
        assert_eq!(m.counter("fl.rounds.completed"), Some(1));
        // Lite snapshot: the journal stays out of per-round reports…
        assert!(m.events.is_empty());
        // …but the full snapshot has begin/end events.
        let full = s.metrics_snapshot();
        assert!(full.events.iter().any(|e| e.name == "round.begin"));
        assert!(full.events.iter().any(|e| e.name == "round.end"));
    }

    #[test]
    fn faults_feed_integrity_retry_counter() {
        let (mut s, mut rng) = server(None);
        s.arm_faults(FaultConfig::chaos(7, 0.0, 0.0, 1.0));
        s.begin_round(&[3, 4, 5], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert!(report.metrics.counter("integrity.retries").unwrap_or(0) > 0);
    }

    #[test]
    fn disabled_registry_yields_empty_snapshots() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::none();
        let mut s = FedoraServer::with_telemetry(
            config,
            |id| vec![id as u8; 32],
            fedora_telemetry::Registry::disabled(),
            &mut rng,
        );
        assert!(!s.registry().is_enabled());
        s.begin_round(&[1, 2], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert_eq!(report.metrics, fedora_telemetry::Snapshot::default());
        assert_eq!(s.metrics_snapshot(), fedora_telemetry::Snapshot::default());
        // The pipeline itself is unaffected.
        assert_eq!(report.k_requests, 2);
    }

    #[test]
    fn ledger_tracks_accountant_exactly() {
        let (mut s, mut rng) = server(Some(0.5));
        let mut mode = FedAvg;
        for round in 1..=3u64 {
            s.begin_round(&[1, 2, 3, 2], &mut rng).unwrap();
            let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
            let total = report.metrics.gauge("fdp.total.epsilon");
            assert_eq!(total, Some(s.accountant().total_epsilon()));
            assert_eq!(report.metrics.gauge("fdp.rounds"), Some(round as f64));
        }
        let m = s.metrics_snapshot();
        assert_eq!(m.gauge("fdp.round.epsilon"), Some(0.5));
        assert_eq!(m.gauge("fdp.mechanism.epsilon"), Some(0.5));
        assert_eq!(m.counter("fdp.ledger.poisoned"), Some(0));
    }

    #[test]
    fn ledger_secret_series_are_audit_only() {
        let (mut s, mut rng) = server(Some(0.0)); // perfect: k = K, dummies > 0
        s.begin_round(&[7, 7, 7, 9], &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let m = &report.metrics;
        // Lookups always resolve (the tag affects exporters only)…
        assert_eq!(m.counter("fdp.dummies.total"), Some(2));
        assert_eq!(m.gauge("fdp.round.k_union"), Some(2.0));
        // …but every k_union-derived series is tagged audit-only.
        for name in [
            "fdp.dummies.total",
            "fdp.lost.total",
            "fdp.round.k_union",
            "fdp.k.overhead",
        ] {
            assert!(m.is_audit_only(name), "{name} must be audit-only");
        }
        assert!(!m.is_audit_only("fdp.total.epsilon"));
    }

    #[test]
    fn budget_alarm_journals_once() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.privacy_budget = crate::config::PrivacyBudgetConfig::alarm(2.5);
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let mut mode = FedAvg;
        for _ in 0..4 {
            s.begin_round(&[1, 2], &mut rng).unwrap();
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        // 4 rounds at ε=1.0 cross the 2.5 ceiling at round 3; the alarm
        // journals exactly once and never refuses a round.
        let m = s.metrics_snapshot();
        let crossings: Vec<_> = m
            .events
            .iter()
            .filter(|e| e.name == "privacy.budget.exceeded")
            .collect();
        assert_eq!(crossings.len(), 1);
        assert_eq!(
            crossings[0].field("round"),
            Some(&fedora_telemetry::Value::U64(2))
        );
        assert_eq!(m.gauge("fdp.budget.max_epsilon"), Some(2.5));
        assert_eq!(m.counter("fdp.budget.refused_rounds"), Some(0));
    }

    #[test]
    fn enforcing_budget_refuses_round_without_consuming() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        config.privacy = PrivacyConfig::with_epsilon(1.0);
        config.privacy_budget = crate::config::PrivacyBudgetConfig::enforcing(2.5);
        let mut s = FedoraServer::new(config, |id| vec![id as u8; 32], &mut rng);
        let mut mode = FedAvg;
        for _ in 0..2 {
            s.begin_round(&[1, 2], &mut rng).unwrap();
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        // Third round would spend 3.0 > 2.5: refused before any state change.
        let err = s.begin_round(&[1, 2], &mut rng).unwrap_err();
        assert_eq!(
            err,
            FedoraError::PrivacyBudgetExhausted {
                spent: 2.0,
                budget: 2.5
            }
        );
        assert_eq!(s.accountant().total_epsilon(), 2.0);
        assert_eq!(s.reports().len(), 2);
        let m = s.metrics_snapshot();
        assert_eq!(m.counter("fdp.budget.refused_rounds"), Some(1));
        assert!(m.events.iter().any(|e| e.name == "privacy.budget.refused"));
        // A refused round leaves no active round behind.
        assert!(matches!(
            s.end_round(&mut mode, 1.0, &mut rng),
            Err(FedoraError::NoActiveRound)
        ));
    }

    fn temp_state_dir(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fedora-server-durable-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// Builds the durable twin of `server(...)` (same seed/config) and
    /// runs `rounds` committed rounds against a fixed request stream.
    fn durable_server_with(
        epsilon: Option<f64>,
        dir: &std::path::Path,
        rounds: u64,
    ) -> (FedoraServer, StdRng) {
        let (mut s, mut rng) = server(epsilon);
        s.enable_durability(dir).unwrap();
        let mut mode = FedAvg;
        for round in 0..rounds {
            let reqs: Vec<u64> = (0..8).map(|i| (i * 5 + round) % 128).collect();
            s.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                let _ = s.serve(id, &mut rng).unwrap();
            }
            s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        (s, rng)
    }

    fn durable_server(dir: &std::path::Path, rounds: u64) -> (FedoraServer, StdRng) {
        durable_server_with(Some(0.5), dir, rounds)
    }

    #[test]
    fn checkpoint_restore_roundtrips_full_state() {
        let dir = temp_state_dir("roundtrip");
        let (s, _) = durable_server(&dir, 3);
        let want_eps = s.accountant().total_epsilon();
        let want_report = s.last_committed_report().cloned().unwrap();

        let (mut t, mut rng) = server(Some(0.5));
        assert_eq!(t.recover(&dir).unwrap(), 3);
        assert_eq!(t.committed_rounds(), 3);
        assert_eq!(t.accountant().total_epsilon(), want_eps);
        assert_eq!(t.last_committed_report().cloned().unwrap(), want_report);
        // The recovered server keeps making progress and the table data
        // survived (same entries as the original initialization). Under
        // ε=0.5 the FDP mechanism may sample k < k_union and lose an
        // entry, so require only that whatever *was* fetched decodes to
        // the initialization pattern — and that something was.
        t.begin_round(&[5, 9], &mut rng).unwrap();
        let mut served = 0;
        for id in [5u64, 9] {
            if let Some(bytes) = t.serve(id, &mut rng).unwrap() {
                assert_eq!(bytes, vec![id as u8; 32]);
                served += 1;
            }
        }
        assert!(served >= 1, "at least one requested entry fetched");
        let mut mode = FedAvg;
        t.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert_eq!(t.committed_rounds(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_crash_point_recovers_to_last_commit() {
        // Perfect privacy: k = K ≥ 1 and K insertions per round, so every
        // crash point is guaranteed to fire deterministically.
        for point in CrashPoint::all() {
            let dir = temp_state_dir(point.name());
            let (mut s, mut rng) = durable_server_with(Some(0.0), &dir, 2);
            let committed_eps = s.accountant().total_epsilon();

            s.arm_crash_point(point);
            let reqs = [1u64, 2, 3, 4];
            let mut crashed = false;
            match s.begin_round(&reqs, &mut rng) {
                Err(FedoraError::CrashInjected { .. }) => crashed = true,
                Err(e) => panic!("{point}: unexpected {e}"),
                Ok(_) => {
                    let mut mode = FedAvg;
                    match s.end_round(&mut mode, 1.0, &mut rng) {
                        Err(FedoraError::CrashInjected { .. }) => crashed = true,
                        Err(e) => panic!("{point}: unexpected {e}"),
                        Ok(_) => {}
                    }
                }
            }
            assert!(crashed, "{point}: crash point never fired");
            // What the dying server knew it had durably committed.
            let want_rounds = s.committed_rounds();
            let want_report = s.last_committed_report().cloned().unwrap();
            match point {
                // Pre-commit crash: the round's checkpoint was already
                // durable, so recovery lands one past the old commit.
                CrashPoint::PostDataSyncPreCommit => assert_eq!(want_rounds, 3, "{point}"),
                _ => assert_eq!(want_rounds, 2, "{point}"),
            }
            drop(s); // the "kill"

            let (mut t, mut rng2) = server(Some(0.0));
            assert_eq!(t.recover(&dir).unwrap(), want_rounds, "{point}");
            assert_eq!(
                t.last_committed_report().cloned().unwrap(),
                want_report,
                "{point}: recovered state must equal the last committed round"
            );
            assert!(
                t.accountant().total_epsilon() >= committed_eps,
                "{point}: recovery must never under-report ε"
            );
            // The recovered server keeps making committed progress.
            t.begin_round(&[7, 8], &mut rng2).unwrap();
            let mut mode = FedAvg;
            t.end_round(&mut mode, 1.0, &mut rng2).unwrap();
            assert_eq!(t.committed_rounds(), want_rounds + 1, "{point}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Runs `rounds` committed rounds against `mode` on a durable server
    /// (perfect privacy so crash points fire deterministically).
    fn run_rounds<M: AggregationMode>(
        s: &mut FedoraServer,
        mode: &mut M,
        rng: &mut StdRng,
        rounds: u64,
    ) {
        for round in 0..rounds {
            let reqs: Vec<u64> = (0..4).map(|i| (i * 7 + round) % 128).collect();
            s.begin_round(&reqs, rng).unwrap();
            for &id in &reqs {
                let _ = s.serve(id, rng).unwrap();
            }
            s.end_round(mode, 1.0, rng).unwrap();
        }
    }

    #[test]
    fn fedadam_state_resumes_from_checkpoint_after_crash() {
        let dir = temp_state_dir("adam");
        let (mut s, mut rng) = server(Some(0.0));
        s.enable_durability(&dir).unwrap();
        let mut mode = FedAdam::new();
        run_rounds(&mut s, &mut mode, &mut rng, 2);
        let committed_state = mode.state_bytes();
        assert!(!committed_state.is_empty());

        // Crash mid-write of round 3: the in-memory mode has already
        // advanced past the committed state when the "process dies".
        s.arm_crash_point(CrashPoint::MidEvictionWrite);
        s.begin_round(&[1, 2, 3, 4], &mut rng).unwrap();
        for id in [1u64, 2, 3, 4] {
            let _ = s.serve(id, &mut rng).unwrap();
        }
        let err = s.end_round(&mut mode, 1.0, &mut rng).unwrap_err();
        assert!(matches!(err, FedoraError::CrashInjected { .. }));
        assert_ne!(
            mode.state_bytes(),
            committed_state,
            "the torn round must have advanced the dying mode"
        );
        drop(s);

        // Recovery restores the mode state captured at the last commit,
        // not the torn round's advanced state.
        let (mut t, _) = server(Some(0.0));
        assert_eq!(t.recover(&dir).unwrap(), 2);
        assert_eq!(t.mode_state(), &committed_state[..]);
        let mut recovered = FedAdam::new();
        t.restore_mode(&mut recovered).unwrap();
        assert_eq!(recovered.state_bytes(), committed_state);
        assert_eq!(recovered.tracked_entries(), mode.tracked_entries());
        // Restoring onto the wrong mode kind is an error, not silence.
        let mut wrong = FedAvg;
        assert!(matches!(
            t.restore_mode(&mut wrong),
            Err(FedoraError::Durable(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazydp_staleness_survives_recovery() {
        let dir = temp_state_dir("lazydp");
        let (mut s, mut rng) = server(Some(0.0));
        s.enable_durability(&dir).unwrap();
        let mut mode = LazyDp::new(1.0, 0.0);
        run_rounds(&mut s, &mut mode, &mut rng, 3);
        let committed_state = mode.state_bytes();
        drop(s);

        let (mut t, _) = server(Some(0.0));
        assert_eq!(t.recover(&dir).unwrap(), 3);
        let mut recovered = LazyDp::new(1.0, 0.0);
        t.restore_mode(&mut recovered).unwrap();
        assert_eq!(recovered.state_bytes(), committed_state);
        // Staleness is answered identically by the recovered twin, for
        // touched and never-touched entries alike.
        for id in [0u64, 1, 7, 99] {
            assert_eq!(recovered.staleness(id), mode.staleness(id), "entry {id}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_checkpoint_does_not_report_commit() {
        let dir = temp_state_dir("ckpt-fail");
        let (mut s, mut rng) = durable_server(&dir, 2);
        let want_report = s.last_committed_report().cloned().unwrap();
        // Sabotage the state directory so the next checkpoint write fails
        // with a real I/O error (not a simulated crash). The journal's
        // open file handle keeps begin-record appends working.
        std::fs::remove_dir_all(&dir).unwrap();
        let mut mode = FedAvg;
        s.begin_round(&[1, 2], &mut rng).unwrap();
        let err = s.end_round(&mut mode, 1.0, &mut rng).unwrap_err();
        assert!(
            matches!(err, FedoraError::Durable(DurableError::Io(_))),
            "expected durable I/O error, got {err:?}"
        );
        // The round is not durable, so the still-usable server must not
        // report it as committed: counters and the last-committed report
        // stay at the last state that is actually on disk.
        assert_eq!(s.committed_rounds(), 2);
        assert_eq!(s.reports().len(), 2);
        assert_eq!(s.last_committed_report().cloned().unwrap(), want_report);
    }

    #[test]
    fn torn_round_epsilon_charged_conservatively() {
        let dir = temp_state_dir("torn-eps");
        let (mut s, mut rng) = durable_server(&dir, 2);
        let committed_eps = s.accountant().total_epsilon();
        assert_eq!(committed_eps, 1.0); // 2 rounds × ε=0.5
        s.arm_crash_point(CrashPoint::PostJournalBegin);
        let err = s.begin_round(&[1, 2, 3], &mut rng).unwrap_err();
        assert!(matches!(err, FedoraError::CrashInjected { .. }));
        drop(s);

        let (mut t, _) = server(Some(0.5));
        assert_eq!(t.recover(&dir).unwrap(), 2);
        // The torn round's intended ε was journaled at round-begin and is
        // charged on recovery even though the round never ran: recovery
        // over-reports rather than ever under-reporting.
        assert!(
            t.accountant().total_epsilon() >= committed_eps + 0.5 - 1e-9,
            "torn ε must be charged (got {})",
            t.accountant().total_epsilon()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_checkpoint_restore_detected_as_rollback() {
        let dir = temp_state_dir("stale");
        let (_s, _) = durable_server(&dir, 3);
        // Simulate a rollback attack / stale backup: delete the newer
        // checkpoints so only generations older than the newest commit
        // record remain. (Keep-last-2 retains gens 2 and 3 here; commit
        // records exist for rounds 0..3.)
        let mut gens = crate::durable::list_checkpoints(&dir).unwrap();
        let newest = gens.pop().unwrap();
        std::fs::remove_file(dir.join(format!("ckpt-{newest:020}.bin"))).unwrap();
        let (mut t, _) = server(Some(0.5));
        let err = t.recover(&dir).unwrap_err();
        assert_eq!(
            err,
            FedoraError::Oram(OramError::Integrity {
                kind: IntegrityError::Rollback,
                node: 0
            })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_without_checkpoint_errors() {
        let dir = temp_state_dir("nockpt");
        std::fs::create_dir_all(&dir).unwrap();
        let (mut t, _) = server(Some(0.5));
        assert_eq!(
            t.recover(&dir).unwrap_err(),
            FedoraError::Durable(crate::durable::DurableError::NoCheckpoint)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_seeds_are_journaled_and_replayed() {
        let dir = temp_state_dir("faultplan");
        // Zero rates: the injector arms (and the seed journals) without
        // perturbing the round itself.
        let plan = FaultPlan {
            master_seed: 99,
            bitflip: 0.0,
            rollback: 0.0,
            transient: 0.0,
        };
        let (mut s, mut rng) = server(Some(0.5));
        s.enable_durability(&dir).unwrap();
        s.set_fault_plan(plan);
        let mut mode = FedAvg;
        s.begin_round(&[1, 2, 3], &mut rng).unwrap();
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        drop(s);
        // The begin record carries exactly the plan-derived seed.
        let key = fedora_crypto::aead::Key::from_bytes([0x5E; 32]).derive_subkey("durable");
        let records = crate::durable::read_records(&dir, &key).unwrap();
        let begins: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                crate::durable::JournalRecord::Begin(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(begins.len(), 1);
        assert_eq!(begins[0].fault_seed, Some(plan.round_seed(0)));
        assert_eq!(begins[0].k_requests, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_telemetry_series_published() {
        let dir = temp_state_dir("telemetry");
        let (s, _) = durable_server(&dir, 2);
        let m = s.metrics_snapshot();
        // Baseline checkpoint + one per committed round.
        assert_eq!(m.counter("durable.checkpoints"), Some(3));
        assert!(m.gauge("durable.checkpoint.bytes").unwrap_or(0.0) > 0.0);
        assert!(m.gauge("durable.checkpoint.ns").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_points_without_durability_still_fire() {
        let (mut s, mut rng) = server(None);
        s.arm_crash_point(CrashPoint::MidFetch);
        let err = s.begin_round(&[1, 2], &mut rng).unwrap_err();
        assert_eq!(
            err,
            FedoraError::CrashInjected {
                point: CrashPoint::MidFetch
            }
        );
    }

    #[test]
    fn scrub_only_between_rounds() {
        let (mut s, mut rng) = server(None);
        s.begin_round(&[1], &mut rng).unwrap();
        assert!(matches!(s.scrub(), Err(FedoraError::RoundInProgress)));
        let mut mode = FedAvg;
        s.end_round(&mut mode, 1.0, &mut rng).unwrap();
        let report = s.scrub().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.checked > 0);
    }
}
