//! Full FL training through the FEDORA pipeline (Table 1).
//!
//! Each round: select users → build the request stream from their private
//! histories (optionally padded for the "hide #" mode) → run steps ①–④ on
//! the server → train clients on the served rows → aggregate through the
//! buffer ORAM → write phase. Tracks the Table 1 statistics: access
//! reduction vs. perfect privacy, dummy/lost percentages vs. the optimal
//! (ε = ∞) access count, and the final test AUC.

use std::collections::HashMap;

use fedora_fdp::ProtectionMode;
use fedora_fl::client::LocalTrainer;
use fedora_fl::datasets::Dataset;
use fedora_fl::model::DlrmModel;
use fedora_fl::modes::{AggregationMode, FedAvg};
use fedora_fl::sim::evaluate_auc;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{FedoraConfig, PrivacyConfig, TableSpec};
use crate::server::{FedoraError, FedoraServer};

/// Configuration of a FEDORA training run.
#[derive(Clone, Debug)]
pub struct TrainingConfig {
    /// Users per round.
    pub users_per_round: usize,
    /// Training rounds.
    pub rounds: usize,
    /// Server learning rate η.
    pub server_lr: f32,
    /// Local trainer settings.
    pub trainer: LocalTrainer,
    /// What the run protects and at what budget. `None` means ε = ∞
    /// (Strawman 2 — the accuracy upper bound).
    pub protection: Option<(ProtectionMode, f64)>,
    /// Worker threads for the per-client local-training fan-out. Any
    /// value produces bit-identical results (static partitioning, merged
    /// in client-index order); 1 runs fully serial.
    pub threads: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            users_per_round: 32,
            rounds: 40,
            server_lr: 2.0,
            trainer: LocalTrainer {
                lr: 0.2,
                epochs: 2,
                ..Default::default()
            },
            protection: Some((ProtectionMode::HideValue, 1.0)),
            threads: 1,
        }
    }
}

/// The Table 1 row a training run produces.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrainingOutcome {
    /// Final test ROC-AUC.
    pub auc: f64,
    /// Fraction of main-ORAM accesses saved vs. perfect privacy (ε = 0,
    /// `k = K`): the paper's "Reduced Accesses" column.
    pub reduced_accesses: f64,
    /// Dummy accesses as a fraction of the optimal access count (ε = ∞).
    pub dummy_rate: f64,
    /// Lost accesses as a fraction of the optimal access count.
    pub lost_rate: f64,
    /// Total requests processed (Σ K).
    pub total_requests: u64,
    /// Total main-ORAM accesses (Σ k).
    pub total_accesses: u64,
    /// Total unique entries (Σ k_union — the ε = ∞ optimum).
    pub total_union: u64,
}

/// Builds the FEDORA config for a model/dataset pair.
pub fn config_for_model(
    model: &DlrmModel,
    protection: &Option<(ProtectionMode, f64)>,
    max_requests: usize,
) -> FedoraConfig {
    let dim = model.config().embedding_dim;
    let table = TableSpec {
        name: "FL",
        num_entries: model.config().num_items,
        entry_bytes: 4 * dim,
    };
    let mut cfg = FedoraConfig::for_testing(table, max_requests);
    cfg.privacy = match protection {
        None => PrivacyConfig::none(),
        Some((mode, eps)) => PrivacyConfig::with_epsilon(mode.mechanism_epsilon(*eps)),
    };
    cfg
}

/// Runs FL training through FEDORA with [`FedAvg`] aggregation for the
/// private table. See [`train_with_fedora_mode`] for other operation
/// modes (FedAdam, EANA, LazyDP).
///
/// # Errors
///
/// Pipeline errors propagate (they indicate configuration bugs).
pub fn train_with_fedora<R: Rng>(
    model: &mut DlrmModel,
    dataset: &Dataset,
    config: &TrainingConfig,
    rng: &mut R,
) -> Result<TrainingOutcome, FedoraError> {
    let mut mode = FedAvg;
    train_with_fedora_mode(model, dataset, config, &mut mode, rng)
}

/// Runs FL training through FEDORA with a caller-chosen aggregation mode
/// (§4.3's programmable `Pre`/`Post`) for the private history table. The
/// model's public parts (dense MLP, item table) train via conventional
/// FedAvg regardless, as in the paper's architecture.
///
/// # Errors
///
/// Pipeline errors propagate (they indicate configuration bugs).
pub fn train_with_fedora_mode<M: AggregationMode, R: Rng>(
    model: &mut DlrmModel,
    dataset: &Dataset,
    config: &TrainingConfig,
    mode: &mut M,
    rng: &mut R,
) -> Result<TrainingOutcome, FedoraError> {
    let padded = match config.protection {
        Some((ProtectionMode::HideValueCount { padded_count }, _)) => Some(padded_count as usize),
        _ => None,
    };
    let max_hist = dataset
        .users()
        .iter()
        .map(|u| u.history.len())
        .max()
        .unwrap_or(0)
        .max(padded.unwrap_or(0));
    let max_requests = (config.users_per_round * max_hist).max(16);
    let fed_config = config_for_model(model, &config.protection, max_requests);

    // The main ORAM takes over the history table.
    let init_model = model.clone();
    let mut server = FedoraServer::new(fed_config, |id| init_model.history_row_bytes(id), rng);
    let all_users: Vec<u32> = (0..dataset.users().len() as u32).collect();
    let mut outcome = TrainingOutcome::default();

    let registry = server.registry().clone();
    let pool = fedora_par::WorkerPool::new(config.threads);

    for _ in 0..config.rounds {
        // ① Client-side sampling: pick the cohort and build the request
        // stream (every user's possibly-padded history, concatenated).
        let sample_span = registry.trace_span("client.sample");
        let selected: Vec<u32> = all_users
            .choose_multiple(rng, config.users_per_round)
            .copied()
            .collect();

        let mut per_user_requests: Vec<(u32, Vec<u64>, usize)> = Vec::new();
        for &user in &selected {
            let (reqs, real) = match padded {
                Some(n) => dataset.padded_history(user, n, rng),
                None => {
                    let h = dataset.user(user).history.clone();
                    let len = h.len();
                    (h, len)
                }
            };
            per_user_requests.push((user, reqs, real));
        }
        let requests: Vec<u64> = per_user_requests
            .iter()
            .flat_map(|(_, reqs, _)| reqs.iter().copied())
            .collect();
        drop(sample_span);
        if requests.is_empty() {
            continue;
        }

        // ②–③ Read phase.
        server.begin_round(&requests, rng)?;

        // ④ Download: serve every request (including padding — the dummy
        // requests cost a buffer access each, like any other). The buffer
        // ORAM is stateful, so serving stays on the caller thread; mid-
        // round aggregates never change served bytes (they touch only the
        // gradient half of each buffer block), so serving everything up
        // front is value-identical to the old interleaved order.
        let mut client_rows: Vec<HashMap<u64, Option<Vec<f32>>>> =
            Vec::with_capacity(per_user_requests.len());
        for (user, reqs, real) in &per_user_requests {
            let download_span =
                registry.trace_span_with("client.download", &[("user", (*user).into())]);
            let mut rows: HashMap<u64, Option<Vec<f32>>> = HashMap::new();
            for (i, &id) in reqs.iter().enumerate() {
                let served = server.serve(id, rng)?;
                if i < *real {
                    rows.insert(id, served.map(|b| init_model.row_from_bytes(&b)));
                }
            }
            drop(download_span);
            client_rows.push(rows);
        }

        // ⑤ Local training: pure per-client compute fanned out over the
        // pool (static partitioning) and merged back in client-index
        // order, so any thread count yields bit-identical updates. Worker
        // spans root under the captured parent id to keep one causal tree.
        let train_span = registry.trace_span("clients.train");
        let train_parent = train_span.id();
        let global: &DlrmModel = model;
        let updates = pool.map(&per_user_requests, |i, (user, reqs, real)| {
            let _span = registry.trace_span_under_with(
                train_parent,
                "client.train",
                &[("user", (*user).into())],
            );
            let history = &reqs[..*real];
            config.trainer.train(
                global,
                &dataset.user(*user).train,
                history,
                Some(&client_rows[i]),
            )
        });
        drop(train_span);

        // ⑥ Upload/aggregate in client-index order.
        let mut dense_acc: Option<fedora_fl::model::DenseParams> = None;
        let mut attention_acc: Option<fedora_fl::linalg::Matrix> = None;
        let mut dense_weight = 0.0f64;
        let mut item_acc: HashMap<u64, (Vec<f32>, f64)> = HashMap::new();

        for ((user, _, _), trained) in per_user_requests.iter().zip(updates) {
            let Some(update) = trained else {
                continue;
            };
            let n = update.n_samples;

            // Private rows flow through the buffer ORAM.
            let upload_span =
                registry.trace_span_with("client.upload", &[("user", (*user).into())]);
            for (id, g) in &update.history_deltas {
                server.aggregate(mode, *id, g, n, rng)?;
            }
            drop(upload_span);
            // Public parts: conventional FedAvg outside the ORAM.
            let mut dd = update.dense_delta;
            let scale = n as f32;
            dd.w1.data_mut().iter_mut().for_each(|x| *x *= scale);
            dd.b1.iter_mut().for_each(|x| *x *= scale);
            dd.w2.iter_mut().for_each(|x| *x *= scale);
            dd.b2 *= scale;
            match &mut dense_acc {
                None => dense_acc = Some(dd),
                Some(acc) => acc.add_scaled(1.0, &dd),
            }
            if let Some(mut ad) = update.attention_delta {
                ad.data_mut().iter_mut().for_each(|x| *x *= scale);
                match &mut attention_acc {
                    None => attention_acc = Some(ad),
                    Some(acc) => acc.add_scaled(1.0, &ad),
                }
            }
            dense_weight += n as f64;
            for (id, mut g) in update.item_deltas {
                let w = FedAvg.pre(&mut g, n);
                let entry = item_acc
                    .entry(id)
                    .or_insert_with(|| (vec![0.0; g.len()], 0.0));
                fedora_fl::linalg::axpy(1.0, &g, &mut entry.0);
                entry.1 += w;
            }
        }

        // ⑦ Write phase (history table) + public server update.
        let report = server.end_round(mode, config.server_lr, rng)?;
        outcome.total_requests += report.k_requests as u64;
        outcome.total_accesses += report.k_accesses as u64;
        outcome.total_union += report.k_union as u64;

        if let Some(mut acc) = dense_acc {
            let inv = (1.0 / dense_weight.max(1.0)) as f32;
            acc.w1.data_mut().iter_mut().for_each(|x| *x *= inv);
            acc.b1.iter_mut().for_each(|x| *x *= inv);
            acc.w2.iter_mut().for_each(|x| *x *= inv);
            acc.b2 *= inv;
            model.dense_mut().add_scaled(config.server_lr, &acc);
        }
        if let Some(mut acc) = attention_acc {
            let inv = (1.0 / dense_weight.max(1.0)) as f32;
            acc.data_mut().iter_mut().for_each(|x| *x *= inv);
            model.update_attention(config.server_lr, &acc);
        }
        for (id, (mut g, w)) in item_acc {
            let mut m2 = FedAvg;
            m2.post(id, &mut g, w, rng);
            model.update_item_row(id, config.server_lr, &g);
        }
    }

    // Sync the trained history table back into the model for evaluation.
    let table = server.snapshot_table(rng)?;
    for (id, bytes) in table.iter().enumerate() {
        let row = init_model.row_from_bytes(bytes);
        model.set_history_row(id as u64, &row);
    }

    outcome.auc = evaluate_auc(model, dataset);
    let dummies: u64 = server.reports().iter().map(|r| r.dummies as u64).sum();
    let lost: u64 = server.reports().iter().map(|r| r.lost as u64).sum();
    if outcome.total_requests > 0 {
        outcome.reduced_accesses =
            1.0 - outcome.total_accesses as f64 / outcome.total_requests as f64;
    }
    if outcome.total_union > 0 {
        outcome.dummy_rate = dummies as f64 / outcome.total_union as f64;
        outcome.lost_rate = lost as f64 / outcome.total_union as f64;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedora_fl::datasets::SyntheticConfig;
    use fedora_fl::model::{DlrmConfig, Pooling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        let mut cfg = SyntheticConfig::movielens_like();
        cfg.num_users = 48;
        cfg.num_items = 128;
        cfg.samples_per_user = 8;
        cfg.test_samples = 600;
        Dataset::generate(cfg)
    }

    fn tiny_model(seed: u64) -> DlrmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        DlrmModel::new(
            DlrmConfig {
                num_items: 128,
                embedding_dim: 8,
                hidden_dim: 16,
                use_private_history: true,
                pooling: Pooling::Mean,
            },
            &mut rng,
        )
    }

    #[test]
    fn fedora_training_runs_and_counts() {
        let dataset = tiny_dataset();
        let mut model = tiny_model(41);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = TrainingConfig {
            users_per_round: 12,
            rounds: 6,
            protection: Some((ProtectionMode::HideValue, 1.0)),
            ..Default::default()
        };
        let out = train_with_fedora(&mut model, &dataset, &cfg, &mut rng).unwrap();
        assert!(out.total_requests > 0);
        assert!(out.total_accesses > 0);
        assert!(out.reduced_accesses > 0.0, "duplicates must be saved");
        assert!(out.auc > 0.4 && out.auc < 1.0);
    }

    #[test]
    fn epsilon_infinity_has_no_dummies_or_losses() {
        let dataset = tiny_dataset();
        let mut model = tiny_model(43);
        let mut rng = StdRng::seed_from_u64(44);
        let cfg = TrainingConfig {
            users_per_round: 12,
            rounds: 4,
            protection: None,
            ..Default::default()
        };
        let out = train_with_fedora(&mut model, &dataset, &cfg, &mut rng).unwrap();
        assert_eq!(out.dummy_rate, 0.0);
        assert_eq!(out.lost_rate, 0.0);
        assert_eq!(out.total_accesses, out.total_union);
    }

    #[test]
    fn thread_count_does_not_change_outcome() {
        let dataset = tiny_dataset();
        let run = |threads: usize| {
            let mut model = tiny_model(47);
            let mut rng = StdRng::seed_from_u64(48);
            let cfg = TrainingConfig {
                users_per_round: 8,
                rounds: 3,
                threads,
                ..Default::default()
            };
            let out = train_with_fedora(&mut model, &dataset, &cfg, &mut rng).unwrap();
            (out, model.history_row(5).to_vec())
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn hide_count_mode_pads_requests() {
        let dataset = tiny_dataset();
        let mut model = tiny_model(45);
        let mut rng = StdRng::seed_from_u64(46);
        let cfg = TrainingConfig {
            users_per_round: 8,
            rounds: 3,
            protection: Some((ProtectionMode::HideValueCount { padded_count: 20 }, 1.0)),
            ..Default::default()
        };
        let out = train_with_fedora(&mut model, &dataset, &cfg, &mut rng).unwrap();
        // Every user contributes exactly 20 requests.
        assert_eq!(out.total_requests, 8 * 20 * 3);
    }
}
