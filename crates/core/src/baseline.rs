//! `Path ORAM+`: the paper's baseline system (§6.1).
//!
//! Path ORAM+ follows the general structure of FEDORA (Figure 4) — buffer
//! ORAM, programmable aggregation — but its main ORAM is an SSD-friendly
//! **Path ORAM**, and it always accesses the main ORAM **once per user
//! request** (Strawman 1: `k = K`), for perfect privacy. Every access is a
//! full path read *and* write, which is what wears the SSD out (Fig. 7)
//! and inflates latency (Fig. 8).

use fedora_fl::modes::AggregationMode;
use fedora_oram::buffer::{BufferError, BufferOram};
use fedora_oram::path_oram::PathOram;
use fedora_oram::store::{BucketStore, SsdBucketStore};
use fedora_storage::stats::DeviceStats;
use rand::Rng;

use crate::config::FedoraConfig;
use crate::server::{FedoraError, RoundReport};

/// The Path ORAM+ baseline server.
pub struct PathOramPlus {
    config: FedoraConfig,
    main: PathOram<SsdBucketStore>,
    buffer: BufferOram,
    active: Option<ActiveRound>,
    completed: Vec<RoundReport>,
}

#[derive(Clone, Debug)]
struct ActiveRound {
    report: RoundReport,
    ssd_before: DeviceStats,
    buffer_before: DeviceStats,
}

impl PathOramPlus {
    /// Builds the baseline over the same table/SSD configuration FEDORA
    /// uses, bulk-initializing the table via Path ORAM writes (excluded
    /// from statistics).
    pub fn new<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        config: FedoraConfig,
        mut init: F,
        rng: &mut R,
    ) -> Self {
        let key = fedora_crypto::aead::Key::from_bytes([0x6A; 32]);
        let store = SsdBucketStore::new(
            config.geometry,
            key.derive_subkey("baseline-main"),
            config.ssd,
        );
        let mut main = PathOram::new(store, config.table.num_entries, rng);
        for id in 0..config.table.num_entries {
            #[allow(clippy::expect_used)] // construction: tree sized for the table
            main.write(id, init(id), rng)
                .expect("init within provisioned tree");
        }
        main.store_mut().reset_device_stats();
        let buffer = BufferOram::new(
            config.max_requests_per_round,
            config.table.entry_bytes,
            key.derive_subkey("baseline-buffer"),
            rng,
        );
        PathOramPlus {
            config,
            main,
            buffer,
            active: None,
            completed: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FedoraConfig {
        &self.config
    }

    /// Completed round reports.
    pub fn reports(&self) -> &[RoundReport] {
        &self.completed
    }

    /// Cumulative SSD statistics.
    pub fn ssd_stats(&self) -> DeviceStats {
        self.main.store().device_stats()
    }

    /// Read phase: one main-ORAM access per user request (`k = K`),
    /// loading each first occurrence into the buffer ORAM.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::server::FedoraServer::begin_round`].
    pub fn begin_round<R: Rng>(
        &mut self,
        requests: &[u64],
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        if self.active.is_some() {
            return Err(FedoraError::RoundInProgress);
        }
        if requests.len() > self.config.max_requests_per_round {
            return Err(FedoraError::TooManyRequests {
                got: requests.len(),
                max: self.config.max_requests_per_round,
            });
        }
        let mut state = ActiveRound {
            report: RoundReport {
                k_requests: requests.len(),
                ..Default::default()
            },
            ssd_before: self.main.store().device_stats(),
            buffer_before: self.buffer.device_stats(),
        };
        for &id in requests {
            state.report.k_accesses += 1;
            let payload = self.main.read(id, rng)?;
            if self.buffer.is_loaded(id) {
                // The main-ORAM access above already provided the perfect
                // privacy; duplicates only add a dummy buffer slot.
                self.buffer.load_dummy(rng)?;
                state.report.dummies += 1;
            } else {
                self.buffer.load_entry(id, &payload, rng)?;
                state.report.k_union += 1;
            }
        }
        let partial = state.report.clone();
        self.active = Some(state);
        Ok(partial)
    }

    /// Serves one request from the buffer ORAM (never lost: the baseline
    /// reads everything).
    ///
    /// # Errors
    ///
    /// [`FedoraError::UnknownEntry`] for un-requested ids.
    pub fn serve<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<Vec<u8>, FedoraError> {
        if self.active.is_none() {
            return Err(FedoraError::NoActiveRound);
        }
        match self.buffer.serve(id, rng) {
            Ok(bytes) => Ok(bytes),
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Accumulates one client gradient (with `Pre`).
    ///
    /// # Errors
    ///
    /// As for [`serve`](Self::serve).
    pub fn aggregate<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &M,
        id: u64,
        gradient: &[f32],
        n_samples: u32,
        rng: &mut R,
    ) -> Result<(), FedoraError> {
        if self.active.is_none() {
            return Err(FedoraError::NoActiveRound);
        }
        let mut g = gradient.to_vec();
        let weight = mode.pre(&mut g, n_samples);
        match self.buffer.aggregate(id, &g, weight, rng) {
            Ok(()) => Ok(()),
            Err(BufferError::NotLoaded { id }) => Err(FedoraError::UnknownEntry { id }),
            Err(e) => Err(e.into()),
        }
    }

    /// Write phase: applies `Post`, then one main-ORAM access per user
    /// request again (`K` writes total: real updates first, dummy accesses
    /// for the remainder — Strawman 1's constant-`K` behaviour).
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn end_round<M: AggregationMode, R: Rng>(
        &mut self,
        mode: &mut M,
        server_lr: f32,
        rng: &mut R,
    ) -> Result<RoundReport, FedoraError> {
        let mut state = self.active.take().ok_or(FedoraError::NoActiveRound)?;
        let drained = self.buffer.drain_round(rng)?;
        let mut writes = 0usize;
        for entry in drained.entries {
            let mut agg = entry.gradient;
            mode.post(entry.id, &mut agg, entry.weight, rng);
            let mut values: Vec<f32> = entry
                .entry
                .chunks_exact(4)
                .map(crate::convert::le_f32)
                .collect();
            for (v, g) in values.iter_mut().zip(&agg) {
                *v += server_lr * g;
            }
            let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.main.write(entry.id, bytes, rng)?;
            writes += 1;
        }
        // Pad to K accesses: the baseline's access count is always K.
        for _ in writes..state.report.k_requests {
            self.main.dummy_access(rng)?;
        }
        state.report.k_accesses += state.report.k_requests;
        mode.on_round_end();

        state.report.ssd = self.main.store().device_stats().since(&state.ssd_before);
        state.report.buffer_dram = self.buffer.device_stats().since(&state.buffer_before);
        self.completed.push(state.report.clone());
        Ok(state.report)
    }
}

impl core::fmt::Debug for PathOramPlus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PathOramPlus")
            .field("table", &self.config.table)
            .field("rounds_completed", &self.completed.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FedoraConfig, TableSpec};
    use fedora_fl::modes::FedAvg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn baseline() -> (PathOramPlus, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let config = FedoraConfig::for_testing(TableSpec::tiny(64), 32);
        let b = PathOramPlus::new(config, |id| vec![id as u8; 32], &mut rng);
        (b, rng)
    }

    #[test]
    fn accesses_always_equal_2k() {
        let (mut b, mut rng) = baseline();
        let reqs = [5u64, 5, 5, 9, 9, 1];
        b.begin_round(&reqs, &mut rng).unwrap();
        let mut mode = FedAvg;
        let report = b.end_round(&mut mode, 1.0, &mut rng).unwrap();
        assert_eq!(report.k_accesses, 12, "K reads + K writes");
        assert_eq!(report.k_union, 3);
    }

    #[test]
    fn serve_and_update() {
        let (mut b, mut rng) = baseline();
        b.begin_round(&[0, 0], &mut rng).unwrap();
        assert_eq!(b.serve(0, &mut rng).unwrap(), vec![0u8; 32]);
        let mode = FedAvg;
        b.aggregate(&mode, 0, &[1.0; 8], 1, &mut rng).unwrap();
        let mut mode = FedAvg;
        b.end_round(&mut mode, 1.0, &mut rng).unwrap();
        b.begin_round(&[0], &mut rng).unwrap();
        let bytes = b.serve(0, &mut rng).unwrap();
        let vals: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![1.0; 8]);
        b.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn writes_to_ssd_every_access() {
        // The headline difference from FEDORA: the baseline's *read* phase
        // already writes (Path ORAM rewrites every path it reads).
        let (mut b, mut rng) = baseline();
        let before = b.ssd_stats();
        b.begin_round(&[1, 2, 3, 4], &mut rng).unwrap();
        let delta = b.ssd_stats().since(&before);
        assert!(delta.bytes_written > 0, "Path ORAM reads rewrite paths");
        let mut mode = FedAvg;
        b.end_round(&mut mode, 1.0, &mut rng).unwrap();
    }

    #[test]
    fn data_survives_many_rounds() {
        let (mut b, mut rng) = baseline();
        let mut mode = FedAvg;
        for round in 0..8u64 {
            let reqs: Vec<u64> = (0..8).map(|i| (i * 5 + round) % 64).collect();
            b.begin_round(&reqs, &mut rng).unwrap();
            for &id in &reqs {
                let _ = b.serve(id, &mut rng).unwrap();
            }
            b.end_round(&mut mode, 1.0, &mut rng).unwrap();
        }
        assert_eq!(b.reports().len(), 8);
    }
}
