//! System configuration: table presets and the full FEDORA parameter set.

use fedora_fdp::{FdpMechanism, ProtectionMode, YShape};
use fedora_oram::raw::RawOramConfig;
use fedora_oram::TreeGeometry;
use fedora_storage::profile::{SsdProfile, SSD_PAGE_BYTES};
use fedora_storage::Scratchpad;

/// An embedding-table specification (the paper's §6.1 table sizes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of embedding entries (rows).
    pub num_entries: u64,
    /// Bytes per entry.
    pub entry_bytes: usize,
}

impl TableSpec {
    /// The paper's Small table: 10 M entries × 64 B.
    pub fn small() -> Self {
        TableSpec {
            name: "Small",
            num_entries: 10_000_000,
            entry_bytes: 64,
        }
    }

    /// The paper's Medium table: 50 M entries × 128 B.
    pub fn medium() -> Self {
        TableSpec {
            name: "Medium",
            num_entries: 50_000_000,
            entry_bytes: 128,
        }
    }

    /// The paper's Large table: 250 M entries × 256 B.
    pub fn large() -> Self {
        TableSpec {
            name: "Large",
            num_entries: 250_000_000,
            entry_bytes: 256,
        }
    }

    /// All three paper presets.
    pub fn paper_presets() -> [TableSpec; 3] {
        [Self::small(), Self::medium(), Self::large()]
    }

    /// A tiny table for tests and the simulated pipeline.
    pub fn tiny(num_entries: u64) -> Self {
        TableSpec {
            name: "Tiny",
            num_entries,
            entry_bytes: 32,
        }
    }

    /// Raw table size in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.num_entries * self.entry_bytes as u64
    }

    /// The tree geometry FEDORA provisions for this table: `Z` sized so a
    /// bucket fills whole 4-KiB pages (§6.6: "make the bucket size a
    /// multiple of 4 KB"), one block per entry.
    pub fn geometry(&self) -> TreeGeometry {
        self.geometry_for_bucket_pages(1)
    }

    /// Geometry with a bucket spanning `pages` SSD pages (the §6.6 bucket-
    /// size ablation uses 1 and 4).
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0` or no block fits.
    pub fn geometry_for_bucket_pages(&self, pages: usize) -> TreeGeometry {
        assert!(pages > 0, "bucket must span at least one page");
        let budget = pages * SSD_PAGE_BYTES - fedora_crypto::aead::TAG_LEN;
        let slot = fedora_oram::bucket::SLOT_META_BYTES + self.entry_bytes;
        let z = budget / slot;
        assert!(z > 0, "entry too large for bucket");
        TreeGeometry::for_blocks(self.num_entries, self.entry_bytes, z)
    }
}

/// Which entries to read when the mechanism picks `k < k_union` (§4.2:
/// "FEDORA has the liberty to choose which k entries to read").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// The first `k` entries in union order — the paper prototype's choice.
    #[default]
    FirstK,
    /// A uniformly random `k`-subset.
    Random,
    /// The `k` entries with the most requests this round (obliviously
    /// sorted by the union's per-entry counts), minimizing the number of
    /// *requests* that go unserved.
    PopularFirst,
}

/// The privacy configuration of a FEDORA deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct PrivacyConfig {
    /// The ε-FDP mechanism (ε and the Y shape). Its ε is the *user-facing*
    /// target; the effective mechanism ε after group privacy is
    /// [`mechanism_epsilon`](Self::mechanism_epsilon).
    pub mechanism: FdpMechanism,
    /// Oblivious-union chunk size.
    pub chunk_size: usize,
    /// What the guarantee protects (value vs value-count): under
    /// [`ProtectionMode::HideValueCount`] group privacy divides the
    /// mechanism budget by the padded group size (§3.1).
    pub protection: ProtectionMode,
}

impl PrivacyConfig {
    /// ε-FDP at `epsilon` with a uniform shape and the paper's 16 Ki chunk.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon < 0`.
    #[allow(clippy::expect_used)] // the panic is this function's documented contract
    pub fn with_epsilon(epsilon: f64) -> Self {
        PrivacyConfig {
            mechanism: FdpMechanism::new(epsilon, YShape::Uniform).expect("non-negative epsilon"),
            chunk_size: fedora_fdp::ChunkPlan::PAPER_DEFAULT,
            protection: ProtectionMode::HideValue,
        }
    }

    /// Perfect privacy (Strawman 1 behaviour: `k = K` always).
    pub fn perfect() -> Self {
        PrivacyConfig {
            mechanism: FdpMechanism::vanilla(),
            chunk_size: fedora_fdp::ChunkPlan::PAPER_DEFAULT,
            protection: ProtectionMode::HideValue,
        }
    }

    /// No privacy (Strawman 2 behaviour: `k = k_union` always).
    pub fn none() -> Self {
        PrivacyConfig {
            mechanism: FdpMechanism::no_privacy(),
            chunk_size: fedora_fdp::ChunkPlan::PAPER_DEFAULT,
            protection: ProtectionMode::HideValue,
        }
    }

    /// The effective per-value mechanism ε after group-privacy division:
    /// `mechanism.epsilon() / protection.group_size()`. Equal to the
    /// user-facing ε under [`ProtectionMode::HideValue`].
    pub fn mechanism_epsilon(&self) -> f64 {
        self.protection.mechanism_epsilon(self.mechanism.epsilon())
    }
}

/// Cumulative ε-budget policy: the leakage alarm of the privacy
/// observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrivacyBudgetConfig {
    /// Cumulative (sequentially composed) ε ceiling across all completed
    /// rounds. `None` disables the alarm entirely.
    pub max_total_epsilon: Option<f64>,
    /// When `true`, `begin_round` refuses any round whose ε would push the
    /// cumulative total past the ceiling
    /// ([`FedoraError::PrivacyBudgetExhausted`](crate::server::FedoraError)).
    /// When `false`, rounds keep running but crossing the ceiling journals
    /// a `privacy.budget.exceeded` event (alarm-only mode).
    pub enforce: bool,
}

impl PrivacyBudgetConfig {
    /// Alarm-only: journal `privacy.budget.exceeded` past `max_epsilon`
    /// but keep serving rounds.
    pub fn alarm(max_epsilon: f64) -> Self {
        PrivacyBudgetConfig {
            max_total_epsilon: Some(max_epsilon),
            enforce: false,
        }
    }

    /// Enforcing: refuse rounds that would overspend `max_epsilon`.
    pub fn enforcing(max_epsilon: f64) -> Self {
        PrivacyBudgetConfig {
            max_total_epsilon: Some(max_epsilon),
            enforce: true,
        }
    }
}

/// The live privacy/SLO watch plane: every `every_rounds` committed
/// rounds the server snapshots its registry, computes the interval delta
/// against the previous sample ([`fedora_telemetry::Snapshot::delta`]),
/// evaluates the configured rules over the *window* (not lifetime
/// averages), and journals a `watch.alarm.*` event per violated rule. The
/// latest report is kept in memory for the `fedora-net` `watch` verb.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchConfig {
    /// Sample every N committed rounds (0 disables the watch plane
    /// entirely — no snapshots, no overhead).
    pub every_rounds: u64,
    /// SLO: alarm when the window's `round.latency` p99 exceeds this many
    /// nanoseconds.
    pub max_round_p99_ns: Option<u64>,
    /// SLO: alarm when shed requests exceed this many parts-per-million of
    /// the window's admitted + shed requests.
    pub max_shed_ppm: Option<u64>,
    /// Privacy: alarm when the latest empirical-ε estimate confidently
    /// exceeds the configured mechanism ε (see
    /// [`crate::audit::empirical::EpsilonEstimate::exceeds`]).
    pub alarm_on_empirical: bool,
    /// Continuous empirical-ε refresh: every N committed rounds the server
    /// pairs the two most recent live shadow traces (captured via an
    /// internally attached [`crate::audit::AccessTraceRecorder`]), feeds
    /// them to the running [`crate::audit::empirical::EpsilonEstimator`],
    /// and republishes the `fdp.empirical.*` gauges — no on-demand twin
    /// replay. 0 disables the refresher (no recorder is attached, no
    /// per-round trace copies are taken).
    pub empirical_every_rounds: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl WatchConfig {
    /// Watch plane off: no sampling, no rules, no overhead.
    pub fn disabled() -> Self {
        WatchConfig {
            every_rounds: 0,
            max_round_p99_ns: None,
            max_shed_ppm: None,
            alarm_on_empirical: false,
            empirical_every_rounds: 0,
        }
    }

    /// Sample every `every_rounds` rounds with the empirical-ε rule armed
    /// and no SLO thresholds (add them via struct update).
    pub fn every(every_rounds: u64) -> Self {
        WatchConfig {
            every_rounds,
            max_round_p99_ns: None,
            max_shed_ppm: None,
            alarm_on_empirical: true,
            empirical_every_rounds: 0,
        }
    }

    /// Whether the watch plane samples at all.
    pub fn is_enabled(&self) -> bool {
        self.every_rounds > 0
    }

    /// Whether the continuous empirical-ε refresher is on.
    pub fn empirical_enabled(&self) -> bool {
        self.empirical_every_rounds > 0
    }
}

/// How many worker threads the round pipeline may use.
///
/// Parallelism never changes *what* the pipeline computes, only how many
/// cores compute it: work is partitioned statically by index (see
/// [`fedora_par::WorkerPool`]) and merged in index order, so any thread
/// count produces bit-identical gradients, round reports (modulo latency),
/// and canonical access traces. The default of 1 runs the exact serial
/// code path — no threads are spawned at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Worker threads for client training, shard fan-out, and bucket
    /// crypto (0 is clamped to 1).
    pub threads: usize,
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig { threads: 1 }
    }
}

impl ParallelismConfig {
    /// The serial default.
    pub fn serial() -> Self {
        ParallelismConfig::default()
    }

    /// `threads` workers (0 clamps to 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelismConfig {
            threads: threads.max(1),
        }
    }

    /// The worker pool this configuration describes.
    pub fn pool(&self) -> fedora_par::WorkerPool {
        fedora_par::WorkerPool::new(self.threads)
    }
}

/// Look-ahead round pipelining.
///
/// With `lookahead ≥ 1` the server accepts the *scheduled* request set
/// for round N+1 while round N is still running
/// ([`crate::FedoraServer::schedule_next_round`]): a dedicated
/// [`fedora_par::PrefetchWorker`] computes the next round's RNG-free
/// fetch preamble (the per-chunk oblivious unions) off the critical
/// path, the main ORAM's decrypt window skips re-decrypting
/// already-authenticated unchanged buckets, and round N's EO path
/// writes are deferred to the end of its write phase so they overlap
/// the serve/aggregate work instead of serializing behind each
/// insertion.
///
/// None of this moves the access-trace distribution: every RNG draw
/// stays on the engine thread in serial order, device page traffic is
/// identical batch-for-batch, and scrubbed [`crate::RoundReport`]s are
/// byte-identical to serial mode. `lookahead = 0` (the default) is the
/// exact serial code path. Depths beyond 1 are accepted but currently
/// schedule a single round ahead (double buffering).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineConfig {
    /// How many rounds ahead the engine may schedule (0 = serial).
    pub lookahead: usize,
}

impl PipelineConfig {
    /// The serial default: no look-ahead.
    pub fn serial() -> Self {
        PipelineConfig { lookahead: 0 }
    }

    /// Single-round look-ahead (double buffering).
    pub fn lookahead_one() -> Self {
        PipelineConfig { lookahead: 1 }
    }

    /// True when pipelined execution is on.
    pub fn enabled(&self) -> bool {
        self.lookahead > 0
    }
}

/// Fault-tolerance policy for the server's round pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultToleranceConfig {
    /// Transactional rounds: snapshot ORAM state at `begin_round` and roll
    /// back to it when an unrecoverable integrity failure aborts the round.
    /// Costs a full in-memory clone of the main + buffer ORAMs per round.
    pub transactional: bool,
    /// Bucket-read retries before quarantining (0 = fail immediately).
    pub max_read_retries: u32,
    /// Older counters probed when classifying rollback vs corruption.
    pub rollback_window: u64,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            transactional: false,
            max_read_retries: fedora_oram::store::DEFAULT_RETRY_LIMIT,
            rollback_window: fedora_oram::store::DEFAULT_ROLLBACK_WINDOW,
        }
    }
}

impl FaultToleranceConfig {
    /// Transactional rounds with the default retry/classification budget.
    pub fn transactional() -> Self {
        FaultToleranceConfig {
            transactional: true,
            ..Self::default()
        }
    }
}

/// The full FEDORA system configuration.
#[derive(Clone, Debug)]
pub struct FedoraConfig {
    /// The embedding table.
    pub table: TableSpec,
    /// Main-ORAM geometry (derived from the table unless overridden).
    pub geometry: TreeGeometry,
    /// RAW ORAM parameters (eviction period `A`).
    pub raw: RawOramConfig,
    /// Privacy settings.
    pub privacy: PrivacyConfig,
    /// Buffer-ORAM capacity: the maximum requests per round (max clients ×
    /// max features per client, both public).
    pub max_requests_per_round: usize,
    /// SSD device profile.
    pub ssd: SsdProfile,
    /// TEE scratchpad (None-equivalent: `Scratchpad::none()` for the
    /// Fig. 10 ablation).
    pub scratchpad: Scratchpad,
    /// Entry-selection strategy for lossy rounds.
    pub selection: SelectionStrategy,
    /// Fault-tolerance policy (round transactions, retry budget).
    pub fault_tolerance: FaultToleranceConfig,
    /// Cumulative ε-budget alarm/enforcement (off by default).
    pub privacy_budget: PrivacyBudgetConfig,
    /// Worker-thread budget for the round pipeline (serial by default).
    pub parallelism: ParallelismConfig,
    /// Look-ahead round pipelining (serial by default).
    pub pipeline: PipelineConfig,
    /// Live privacy/SLO watch plane (off by default).
    pub watch: WatchConfig,
    /// Telemetry event-journal capacity: the ring keeps the most recent
    /// N events and counts the rest in `telemetry.journal.dropped`.
    /// Defaults to [`fedora_telemetry::MAX_JOURNAL_EVENTS`]; raise it for
    /// long soak runs whose `tail` consumers poll slowly, lower it to
    /// bound memory on small deployments.
    pub journal_capacity: usize,
}

impl FedoraConfig {
    /// The paper's tuned configuration for a table preset.
    pub fn paper_tuned(table: TableSpec, max_requests_per_round: usize) -> Self {
        let geometry = table.geometry();
        FedoraConfig {
            table,
            geometry,
            raw: RawOramConfig {
                eviction_period: Self::tuned_eviction_period(&geometry),
            },
            privacy: PrivacyConfig::with_epsilon(1.0),
            max_requests_per_round,
            ssd: SsdProfile::pm9a1_like(),
            scratchpad: Scratchpad::paper_default(),
            selection: SelectionStrategy::FirstK,
            fault_tolerance: FaultToleranceConfig::default(),
            privacy_budget: PrivacyBudgetConfig::default(),
            parallelism: ParallelismConfig::default(),
            pipeline: PipelineConfig::serial(),
            watch: WatchConfig::disabled(),
            journal_capacity: fedora_telemetry::MAX_JOURNAL_EVENTS,
        }
    }

    /// A small configuration for tests: tiny trees, small chunks, fast EOs.
    pub fn for_testing(table: TableSpec, max_requests_per_round: usize) -> Self {
        let geometry = TreeGeometry::for_blocks(table.num_entries, table.entry_bytes, 8);
        FedoraConfig {
            table,
            geometry,
            raw: RawOramConfig { eviction_period: 4 },
            privacy: PrivacyConfig::with_epsilon(1.0),
            max_requests_per_round,
            ssd: SsdProfile::pm9a1_like(),
            scratchpad: Scratchpad::paper_default(),
            selection: SelectionStrategy::FirstK,
            fault_tolerance: FaultToleranceConfig::default(),
            privacy_budget: PrivacyBudgetConfig::default(),
            parallelism: ParallelismConfig::default(),
            pipeline: PipelineConfig::serial(),
            watch: WatchConfig::disabled(),
            journal_capacity: fedora_telemetry::MAX_JOURNAL_EVENTS,
        }
    }

    /// The paper's tuning rule for the eviction period: `A = 2Z` (the
    /// Ring-ORAM-style bound under ≤50 % provisioning). At the 4-KiB
    /// bucket of the Small table (`Z = 46`) this yields the paper's
    /// maximum of `A = 92`; larger buckets push `A` further (§6.6).
    pub fn tuned_eviction_period(geometry: &TreeGeometry) -> u32 {
        (2 * geometry.z() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_sizes() {
        assert_eq!(TableSpec::small().data_bytes(), 640_000_000);
        assert_eq!(TableSpec::medium().data_bytes(), 6_400_000_000);
        assert_eq!(TableSpec::large().data_bytes(), 64_000_000_000);
    }

    #[test]
    fn geometry_buckets_fill_pages() {
        for spec in TableSpec::paper_presets() {
            let g = spec.geometry();
            assert_eq!(g.pages_per_bucket(4096), 1, "{}", spec.name);
            // Bucket nearly fills the page (> 90% utilization).
            assert!(g.bucket_stored_bytes() > 3600, "{}", spec.name);
            assert!(g.capacity_blocks() >= spec.num_entries, "{}", spec.name);
        }
    }

    #[test]
    fn small_table_z_and_a() {
        // 64-B entries: slot = 24 + 64 = 88; (4096-16)/88 = 46 slots, and
        // A = 2Z = 92 — exactly the paper's "up to 92".
        let g = TableSpec::small().geometry();
        assert_eq!(g.z(), 46);
        assert_eq!(FedoraConfig::tuned_eviction_period(&g), 92);
    }

    #[test]
    fn larger_buckets_allow_larger_a() {
        let small = TableSpec::small();
        let g1 = small.geometry_for_bucket_pages(1);
        let g4 = small.geometry_for_bucket_pages(4);
        assert!(g4.z() > g1.z());
        assert!(
            FedoraConfig::tuned_eviction_period(&g4) > FedoraConfig::tuned_eviction_period(&g1)
        );
    }

    #[test]
    fn oram_amplification_in_paper_range() {
        // The ORAM tree is 1.5–8× the raw data (§3.2); power-of-two leaf
        // rounding can push a config slightly past the nominal ceiling.
        for spec in TableSpec::paper_presets() {
            let g = spec.geometry();
            let amp = g.tree_bytes(4096) as f64 / spec.data_bytes() as f64;
            assert!(
                (1.5..=8.6).contains(&amp),
                "{}: amplification {amp}",
                spec.name
            );
        }
    }

    #[test]
    fn privacy_presets() {
        assert_eq!(PrivacyConfig::perfect().mechanism.epsilon(), 0.0);
        assert!(PrivacyConfig::none().mechanism.epsilon().is_infinite());
        assert_eq!(PrivacyConfig::with_epsilon(1.0).mechanism.epsilon(), 1.0);
    }

    #[test]
    fn group_privacy_divides_mechanism_epsilon() {
        let mut p = PrivacyConfig::with_epsilon(1.0);
        assert_eq!(p.mechanism_epsilon(), 1.0);
        p.protection = ProtectionMode::hide_count_paper();
        assert!((p.mechanism_epsilon() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn budget_presets() {
        assert_eq!(PrivacyBudgetConfig::default().max_total_epsilon, None);
        let alarm = PrivacyBudgetConfig::alarm(5.0);
        assert_eq!(alarm.max_total_epsilon, Some(5.0));
        assert!(!alarm.enforce);
        assert!(PrivacyBudgetConfig::enforcing(5.0).enforce);
    }
}
