//! Durable crash recovery: the write-ahead round journal, the checkpoint
//! format, and the crash-point vocabulary of the chaos harness.
//!
//! The durability contract (DESIGN.md §8):
//!
//! * **Write-ahead round journal** — before a round mutates any ORAM
//!   state, a *round-begin* record (round number, intended ε charge,
//!   request digest, per-round fault seed, caller RNG seed hint) is
//!   appended and synced. After the round's checkpoint is durable, a
//!   *round-commit* record seals it. Recovery replays the journal to the
//!   last durable checkpoint and rolls torn rounds back — but charges
//!   their ε anyway, so a crash can never *under*-report leakage.
//! * **Checkpoints** — the full server state in a checksummed, versioned
//!   binary frame, written with the atomic temp-file + rename + fsync
//!   discipline of [`fedora_storage::durable`]. Generations are monotonic
//!   and the last two are retained; a checkpoint older than the journal's
//!   newest commit is a rollback and is refused at restore.
//! * **Crash points** — named instants where the chaos harness can "kill"
//!   the server mid-round and assert that recovery lands exactly on the
//!   last committed round.
//!
//! Journal records and checkpoint bodies are sealed with the server's
//! AEAD (subkey `"durable"`): the journal holds per-round privacy
//! accounting and the checkpoint holds stash/buffer plaintext, neither of
//! which may rest on disk in the clear. Nonces never repeat: journal
//! records use a monotonic sequence number (not the round number, which
//! repeats when an aborted round is retried) and checkpoints use their
//! monotonic generation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce};
use fedora_storage::durable::{
    atomic_write_file, open_frame, read_journal, seal_frame, ByteReader, ByteWriter, CodecError,
    JournalWriter,
};
use fedora_storage::FaultConfig;

/// Checkpoint frame magic tag.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FDCK";
/// Checkpoint frame format version. v2 added the aggregation-mode
/// optimizer state to the body.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Journal file name inside a state directory.
const JOURNAL_FILE: &str = "journal.log";
/// Nonce domain of round-begin journal records.
const KIND_BEGIN: u8 = 1;
/// Nonce domain of round-commit journal records.
const KIND_COMMIT: u8 = 2;
/// Nonce domain of checkpoint bodies (disjoint from journal kinds).
const CHECKPOINT_DOMAIN: u32 = 3;
/// AAD binding checkpoint ciphertext to its role.
const CHECKPOINT_AAD: &[u8] = b"fedora-checkpoint";

/// A named instant where the chaos harness can kill the server mid-round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After the round-begin journal record is durable, before any ORAM
    /// state changes.
    PostJournalBegin,
    /// After the first main-ORAM access of the read phase.
    MidFetch,
    /// After the first main-ORAM insertion of the write phase.
    MidEvictionWrite,
    /// After the round's checkpoint is durable (data synced), before the
    /// round-commit journal record — the classic "commit marker lost"
    /// window.
    PostDataSyncPreCommit,
}

impl CrashPoint {
    /// Every crash point, in round order.
    pub fn all() -> [CrashPoint; 4] {
        [
            CrashPoint::PostJournalBegin,
            CrashPoint::MidFetch,
            CrashPoint::MidEvictionWrite,
            CrashPoint::PostDataSyncPreCommit,
        ]
    }

    /// The stable kebab-case name (CLI flag value, telemetry attribute).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PostJournalBegin => "post-journal-begin",
            CrashPoint::MidFetch => "mid-fetch",
            CrashPoint::MidEvictionWrite => "mid-eviction-write",
            CrashPoint::PostDataSyncPreCommit => "post-data-sync-pre-commit",
        }
    }
}

impl core::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for CrashPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CrashPoint::all()
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown crash point '{s}'"))
    }
}

/// Errors from the durability subsystem (journal + checkpoint I/O and
/// decoding). I/O errors are carried as strings so the error stays
/// `Clone + PartialEq` like every other [`crate::server::FedoraError`]
/// variant.
#[derive(Clone, Debug, PartialEq)]
pub enum DurableError {
    /// A filesystem operation failed.
    Io(String),
    /// Persisted bytes failed to decode (truncation, checksum, shape).
    Codec(CodecError),
    /// A journal record or checkpoint failed AEAD authentication: the
    /// state directory was tampered with (a torn *tail* is tolerated; a
    /// torn or forged *interior* record is not).
    Unauthentic {
        /// The record's sequence number (or checkpoint generation).
        seq: u64,
    },
    /// Recovery was requested but the state directory holds no loadable
    /// checkpoint.
    NoCheckpoint,
    /// A durable operation was requested on a server with no state
    /// directory attached (see `FedoraServer::enable_durability`).
    NotEnabled,
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e.to_string())
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

impl core::fmt::Display for DurableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DurableError::Io(msg) => write!(f, "durable I/O: {msg}"),
            DurableError::Codec(e) => write!(f, "durable decode: {e}"),
            DurableError::Unauthentic { seq } => {
                write!(f, "durable record {seq} failed authentication")
            }
            DurableError::NoCheckpoint => f.write_str("no checkpoint to restore"),
            DurableError::NotEnabled => f.write_str("durability is not enabled"),
        }
    }
}

impl std::error::Error for DurableError {}

/// SplitMix64 — the per-round fault-seed derivation. Matches the
/// avalanche quality of the injector's own mixer so consecutive rounds
/// get statistically independent chaos streams from one master seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A restart-stable chaos plan: one master seed plus per-operation fault
/// rates. Each round derives its injector seed from (master seed, round
/// number), and the derived seed is journaled in that round's begin
/// record — so a campaign replayed across a crash/restore re-arms the
/// *same* fault stream for the same round, making chaos campaigns
/// reproducible end-to-end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed for the whole campaign.
    pub master_seed: u64,
    /// Per-read bit-flip probability.
    pub bitflip: f64,
    /// Per-read rollback-replay probability.
    pub rollback: f64,
    /// Per-operation transient-failure probability.
    pub transient: f64,
}

impl FaultPlan {
    /// The injector seed for `round` (deterministic in the plan).
    pub fn round_seed(&self, round: u64) -> u64 {
        splitmix64(self.master_seed ^ round.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// The injector configuration to arm for `round`.
    pub fn config_for_round(&self, round: u64) -> FaultConfig {
        FaultConfig::chaos(
            self.round_seed(round),
            self.bitflip,
            self.rollback,
            self.transient,
        )
    }
}

/// The write-ahead record synced before a round mutates any ORAM state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeginRecord {
    /// Journal sequence number (monotonic, never reused).
    pub seq: u64,
    /// The round about to run (the server's committed-round counter).
    pub round: u64,
    /// The ε this round intends to charge. Recovery charges it for torn
    /// rounds so a crash can only over-report, never under-report.
    pub epsilon: f64,
    /// Public request count `K`.
    pub k_requests: u64,
    /// FNV-1a-64 digest of the request id sequence (the "client set";
    /// kept as a digest so the journal stays O(1) per round).
    pub request_digest: u64,
    /// The fault-injector seed armed for this round, if a [`FaultPlan`]
    /// is active.
    pub fault_seed: Option<u64>,
    /// The caller-provided RNG seed hint for this round (0 when unset).
    pub seed_hint: u64,
}

/// The record sealing a round after its checkpoint is durable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommitRecord {
    /// Journal sequence number.
    pub seq: u64,
    /// The round that committed.
    pub round: u64,
    /// The checkpoint generation holding this round's state.
    pub generation: u64,
    /// Cumulative ε after this round (the accountant's total).
    pub total_epsilon: f64,
    /// FNV-1a-64 digest of the round's scrubbed [`RoundReport`]
    /// encoding, for recovery cross-checks.
    ///
    /// [`RoundReport`]: crate::server::RoundReport
    pub report_digest: u64,
}

/// One authenticated journal record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JournalRecord {
    /// Round begin (write-ahead).
    Begin(BeginRecord),
    /// Round commit.
    Commit(CommitRecord),
}

impl JournalRecord {
    /// The record's journal sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            JournalRecord::Begin(b) => b.seq,
            JournalRecord::Commit(c) => c.seq,
        }
    }
}

/// Statistics of one checkpoint write (the `durable.checkpoint.*`
/// telemetry series mirror these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The generation written.
    pub generation: u64,
    /// On-disk frame size in bytes.
    pub bytes: u64,
    /// Host wall-clock spent encoding + syncing, in nanoseconds.
    pub ns: u64,
}

fn journal_aad(kind: u8, seq: u64) -> [u8; 9] {
    let mut aad = [0u8; 9];
    aad[0] = kind;
    aad[1..9].copy_from_slice(&seq.to_le_bytes());
    aad
}

fn checkpoint_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:020}.bin"))
}

/// Lists checkpoint generations present in `dir`, ascending.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<u64>, DurableError> {
    let mut gens = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".bin"))
        {
            if let Ok(g) = gen.parse::<u64>() {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Reads and authenticates every intact journal record in `dir`.
///
/// A torn tail (crash mid-append) is dropped silently, matching
/// [`read_journal`]'s contract; an *interior* record that fails AEAD
/// authentication is tampering and errors out.
///
/// # Errors
///
/// [`DurableError`] on I/O failure, decode failure, or tampering.
pub fn read_records(dir: &Path, key: &Key) -> Result<Vec<JournalRecord>, DurableError> {
    let aead = ChaCha20Poly1305::new(key);
    let payloads = read_journal(&dir.join(JOURNAL_FILE))?;
    let mut out = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        let mut r = ByteReader::new(payload);
        let kind = r.get_u8()?;
        let seq = r.get_u64()?;
        let ct = r.get_raw(r.remaining())?;
        let nonce = Nonce::from_u64_pair(u32::from(kind), seq);
        let body = aead
            .decrypt(&nonce, ct, &journal_aad(kind, seq))
            .map_err(|_| DurableError::Unauthentic { seq })?;
        let mut b = ByteReader::new(&body);
        let record = match kind {
            KIND_BEGIN => {
                let round = b.get_u64()?;
                let epsilon = b.get_f64()?;
                let k_requests = b.get_u64()?;
                let request_digest = b.get_u64()?;
                let has_fault = b.get_bool()?;
                let fault_seed = b.get_u64()?;
                let seed_hint = b.get_u64()?;
                JournalRecord::Begin(BeginRecord {
                    seq,
                    round,
                    epsilon,
                    k_requests,
                    request_digest,
                    fault_seed: has_fault.then_some(fault_seed),
                    seed_hint,
                })
            }
            KIND_COMMIT => JournalRecord::Commit(CommitRecord {
                seq,
                round: b.get_u64()?,
                generation: b.get_u64()?,
                total_epsilon: b.get_f64()?,
                report_digest: b.get_u64()?,
            }),
            _ => return Err(CodecError::Invalid("unknown journal record kind").into()),
        };
        b.expect_end()?;
        out.push(record);
    }
    Ok(out)
}

/// Loads and decrypts the newest loadable checkpoint in `dir`, falling
/// back to the previous generation if the newest fails to decode.
/// Returns `(generation, plaintext body)`, or `None` when no checkpoint
/// file exists.
///
/// # Errors
///
/// The newest checkpoint's error when every candidate fails.
pub fn load_latest_checkpoint(
    dir: &Path,
    key: &Key,
) -> Result<Option<(u64, Vec<u8>)>, DurableError> {
    let gens = list_checkpoints(dir)?;
    let mut first_err = None;
    for &gen in gens.iter().rev() {
        match load_checkpoint(dir, key, gen) {
            Ok(body) => return Ok(Some((gen, body))),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

/// Loads and decrypts one checkpoint generation.
///
/// # Errors
///
/// [`DurableError`] on I/O failure, frame damage, or tampering.
pub fn load_checkpoint(dir: &Path, key: &Key, generation: u64) -> Result<Vec<u8>, DurableError> {
    let bytes = fs::read(checkpoint_file(dir, generation))?;
    let payload = open_frame(&bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
    let mut r = ByteReader::new(payload);
    let gen_inside = r.get_u64()?;
    if gen_inside != generation {
        return Err(CodecError::Invalid("checkpoint generation mismatch").into());
    }
    let ct = r.get_raw(r.remaining())?;
    let aead = ChaCha20Poly1305::new(key);
    let nonce = Nonce::from_u64_pair(CHECKPOINT_DOMAIN, generation);
    aead.decrypt(&nonce, ct, CHECKPOINT_AAD)
        .map_err(|_| DurableError::Unauthentic { seq: generation })
}

/// The open durable state of one server: the journal appender plus the
/// monotonic sequence and generation counters. Counters are recovered
/// from the directory contents on open, so they keep climbing across
/// restarts (nonce uniqueness depends on this).
#[derive(Debug)]
pub struct DurableState {
    dir: PathBuf,
    journal: JournalWriter,
    aead: ChaCha20Poly1305,
    next_seq: u64,
    next_generation: u64,
}

impl DurableState {
    /// Opens (creating if needed) the state directory and its journal,
    /// resuming the sequence/generation counters past everything already
    /// on disk.
    ///
    /// # Errors
    ///
    /// [`DurableError`] on I/O failure or undecodable existing records.
    pub fn open(dir: &Path, key: Key) -> Result<Self, DurableError> {
        fs::create_dir_all(dir)?;
        // Open the writer first: it truncates any torn tail a crash
        // mid-append left behind, so (a) records appended from here on are
        // never shadowed behind torn bytes, and (b) resuming the sequence
        // from the intact records below cannot reuse an AEAD nonce against
        // surviving torn ciphertext — the torn bytes are gone.
        let journal = JournalWriter::open(&dir.join(JOURNAL_FILE))?;
        // Sequence resume needs only the plaintext headers; tampered
        // ciphertext is caught by read_records at recovery time.
        let mut next_seq = 0;
        for payload in read_journal(&dir.join(JOURNAL_FILE))? {
            let mut r = ByteReader::new(&payload);
            let _kind = r.get_u8()?;
            next_seq = next_seq.max(r.get_u64()?.saturating_add(1));
        }
        let next_generation = list_checkpoints(dir)?
            .last()
            .map(|g| g.saturating_add(1))
            .unwrap_or(0);
        Ok(DurableState {
            dir: dir.to_path_buf(),
            journal,
            aead: ChaCha20Poly1305::new(&key),
            next_seq,
            next_generation,
        })
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The next checkpoint generation to be written.
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    fn append(&mut self, kind: u8, body: &[u8]) -> Result<u64, DurableError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nonce = Nonce::from_u64_pair(u32::from(kind), seq);
        let ct = self.aead.encrypt(&nonce, body, &journal_aad(kind, seq));
        let mut w = ByteWriter::new();
        w.put_u8(kind);
        w.put_u64(seq);
        w.put_raw(&ct);
        self.journal.append(&w.into_bytes())?;
        Ok(seq)
    }

    /// Appends (and syncs) a round-begin record. Returns its sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the append or sync fails.
    #[allow(clippy::too_many_arguments)]
    pub fn append_begin(
        &mut self,
        round: u64,
        epsilon: f64,
        k_requests: u64,
        request_digest: u64,
        fault_seed: Option<u64>,
        seed_hint: u64,
    ) -> Result<u64, DurableError> {
        let mut w = ByteWriter::new();
        w.put_u64(round);
        w.put_f64(epsilon);
        w.put_u64(k_requests);
        w.put_u64(request_digest);
        w.put_bool(fault_seed.is_some());
        w.put_u64(fault_seed.unwrap_or(0));
        w.put_u64(seed_hint);
        self.append(KIND_BEGIN, &w.into_bytes())
    }

    /// Appends (and syncs) a round-commit record. Returns its sequence
    /// number.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when the append or sync fails.
    pub fn append_commit(
        &mut self,
        round: u64,
        generation: u64,
        total_epsilon: f64,
        report_digest: u64,
    ) -> Result<u64, DurableError> {
        let mut w = ByteWriter::new();
        w.put_u64(round);
        w.put_u64(generation);
        w.put_f64(total_epsilon);
        w.put_u64(report_digest);
        self.append(KIND_COMMIT, &w.into_bytes())
    }

    /// Seals `body` into the next checkpoint generation and commits it
    /// atomically (temp file + `sync_all` + rename + directory fsync).
    /// Keeps the last two generations, pruning older files. Returns the
    /// generation and its on-disk size.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] when any filesystem step fails.
    pub fn write_checkpoint(&mut self, body: &[u8]) -> Result<(u64, u64), DurableError> {
        let generation = self.next_generation;
        self.next_generation += 1;
        let nonce = Nonce::from_u64_pair(CHECKPOINT_DOMAIN, generation);
        let ct = self.aead.encrypt(&nonce, body, CHECKPOINT_AAD);
        let mut w = ByteWriter::new();
        w.put_u64(generation);
        w.put_raw(&ct);
        let frame = seal_frame(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &w.into_bytes());
        atomic_write_file(&checkpoint_file(&self.dir, generation), &frame)?;
        // Keep-last-2: the newest survives a torn successor, the one
        // before it survives a corrupted newest.
        for old in list_checkpoints(&self.dir)? {
            if old + 1 < generation {
                let _ = fs::remove_file(checkpoint_file(&self.dir, old));
            }
        }
        Ok((generation, frame.len() as u64))
    }
}

/// FNV-1a-64 digest of a request id sequence (order-sensitive).
pub fn request_digest(requests: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(requests.len() * 8);
    for &id in requests {
        bytes.extend_from_slice(&id.to_le_bytes());
    }
    fedora_storage::fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fedora-core-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn key() -> Key {
        Key::from_bytes([0x5E; 32]).derive_subkey("durable")
    }

    #[test]
    fn crash_point_names_roundtrip() {
        for p in CrashPoint::all() {
            assert_eq!(p.name().parse::<CrashPoint>().unwrap(), p);
        }
        assert!("nonsense".parse::<CrashPoint>().is_err());
    }

    #[test]
    fn journal_records_roundtrip_and_resume_seq() {
        let dir = temp_dir("journal");
        let mut d = DurableState::open(&dir, key()).unwrap();
        d.append_begin(0, 1.0, 4, request_digest(&[1, 2, 2, 3]), Some(99), 7)
            .unwrap();
        d.append_commit(0, 0, 1.0, 0xABCD).unwrap();
        drop(d);
        // Reopen: sequence keeps climbing (nonce uniqueness across
        // restarts), and both records decode + authenticate.
        let mut d = DurableState::open(&dir, key()).unwrap();
        let seq = d.append_begin(1, 1.0, 2, 0, None, 0).unwrap();
        assert_eq!(seq, 2);
        let records = read_records(&dir, &key()).unwrap();
        assert_eq!(records.len(), 3);
        let JournalRecord::Begin(b) = records[0] else {
            panic!("expected begin");
        };
        assert_eq!(b.round, 0);
        assert_eq!(b.fault_seed, Some(99));
        assert_eq!(b.seed_hint, 7);
        let JournalRecord::Commit(c) = records[1] else {
            panic!("expected commit");
        };
        assert_eq!(c.report_digest, 0xABCD);
        assert_eq!(records[2].seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_trimmed_and_post_restart_records_stay_visible() {
        let dir = temp_dir("torn-tail");
        let mut d = DurableState::open(&dir, key()).unwrap();
        d.append_begin(0, 0.5, 1, 0, None, 0).unwrap(); // seq 0
        d.append_commit(0, 0, 0.5, 1).unwrap(); // seq 1
        d.append_begin(1, 0.5, 1, 0, None, 0).unwrap(); // seq 2 — will be torn
        drop(d);
        // Tear the last record mid-ciphertext, as a real crash mid-append
        // would.
        let path = dir.join("journal.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        // Reopen: the torn tail is truncated away, so seq 2 is reissued
        // over a clean file (no nonce reuse against surviving torn
        // ciphertext) and the new record is visible to recovery instead
        // of being shadowed behind torn bytes.
        let mut d = DurableState::open(&dir, key()).unwrap();
        assert_eq!(d.append_begin(1, 0.5, 2, 7, None, 0).unwrap(), 2);
        d.append_commit(1, 1, 1.0, 9).unwrap(); // seq 3
        drop(d);
        let records = read_records(&dir, &key()).unwrap();
        assert_eq!(records.len(), 4);
        let JournalRecord::Begin(b) = records[2] else {
            panic!("expected post-restart begin");
        };
        assert_eq!((b.seq, b.round, b.k_requests), (2, 1, 2));
        let JournalRecord::Commit(c) = records[3] else {
            panic!("expected post-restart commit");
        };
        assert_eq!((c.seq, c.round, c.total_epsilon), (3, 1, 1.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_journal_record_is_unauthentic() {
        let dir = temp_dir("tamper");
        let mut d = DurableState::open(&dir, key()).unwrap();
        d.append_begin(0, 1.0, 4, 0, None, 0).unwrap();
        d.append_commit(0, 0, 1.0, 0).unwrap();
        drop(d);
        // Flip a ciphertext bit in the *first* record (interior, not a
        // torn tail): header is 4 (len) + 1 (kind) + 8 (seq) bytes in.
        let path = dir.join("journal.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes[14] ^= 1;
        // Recompute the storage-layer checksum so only AEAD can object.
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let sum = fedora_storage::fnv1a64(&bytes[4..4 + len]);
        bytes[4 + len..4 + len + 8].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_records(&dir, &key()),
            Err(DurableError::Unauthentic { seq: 0 })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_rotate_and_keep_last_two() {
        let dir = temp_dir("ckpt");
        let mut d = DurableState::open(&dir, key()).unwrap();
        for i in 0..4u8 {
            let (gen, bytes) = d.write_checkpoint(&[i; 32]).unwrap();
            assert_eq!(gen, u64::from(i));
            assert!(bytes > 32);
        }
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![2, 3]);
        let (gen, body) = load_latest_checkpoint(&dir, &key()).unwrap().unwrap();
        assert_eq!(gen, 3);
        assert_eq!(body, vec![3u8; 32]);
        // A damaged newest generation falls back to the previous one.
        let newest = checkpoint_file(&dir, 3);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (gen, body) = load_latest_checkpoint(&dir, &key()).unwrap().unwrap();
        assert_eq!(gen, 2);
        assert_eq!(body, vec![2u8; 32]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_latest_checkpoint(&dir, &key()).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_seeds_are_stable_and_distinct() {
        let plan = FaultPlan {
            master_seed: 42,
            bitflip: 0.1,
            rollback: 0.0,
            transient: 0.2,
        };
        assert_eq!(plan.round_seed(3), plan.round_seed(3));
        assert_ne!(plan.round_seed(3), plan.round_seed(4));
        let cfg = plan.config_for_round(3);
        assert_eq!(cfg.seed, plan.round_seed(3));
        assert_eq!(cfg.bitflip_per_read, 0.1);
        assert_eq!(cfg.transient_per_read, 0.2);
    }

    #[test]
    fn request_digest_is_order_sensitive() {
        assert_eq!(request_digest(&[1, 2, 3]), request_digest(&[1, 2, 3]));
        assert_ne!(request_digest(&[1, 2, 3]), request_digest(&[3, 2, 1]));
    }
}
