//! Obliviousness auditor: shadow-mode twin-run trace comparison.
//!
//! The FDP guarantee is a claim about the *physical access sequence*: two
//! rounds whose private inputs differ must produce (statistically)
//! indistinguishable device traffic. This module checks that claim
//! empirically instead of trusting the implementation:
//!
//! 1. An [`AccessTraceRecorder`] is attached behind the main ORAM's page
//!    device, capturing the exact (op, page) sequence the untrusted SSD
//!    observes.
//! 2. A **twin run** replays the same round schedule on two servers with
//!    the same seed but *differing private inputs* (same public request
//!    count `K`, different duplication structure, hence different
//!    `k_union`).
//! 3. The traces are canonicalized to (op, tree level) — raw page numbers
//!    legitimately differ because leaf positions are random — and
//!    compared: exactly for vanilla `delta(K)` shapes (ε = 0 claims
//!    *perfect* obliviousness), or with a two-sample chi-squared test over
//!    per-(op, level) access frequencies for finite-ε shapes.
//!
//! The §3.2 naive-deduplication strawman (read exactly `k_union` entries,
//! ε = ∞) is the deliberate canary: its trace *length* leaks the union
//! size, the canonical traces diverge, and the auditor must flag it.

use fedora_fl::modes::FedAvg;
use fedora_storage::{AccessOp, AccessRecord, AccessTraceRecorder};
use fedora_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::FedoraConfig;
use crate::server::{FedoraError, FedoraServer};

pub mod empirical;

/// One canonicalized access: the operation and the tree level it touched.
///
/// Raw page numbers depend on the (secret, random) leaf positions, so two
/// honest runs never match page-for-page. What obliviousness fixes is the
/// *structure*: every fetch reads a full root-to-leaf path, so the level
/// sequence is input-independent. Canonicalization maps each page to its
/// bucket (`page / pages_per_bucket`) and the bucket to its tree level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalAccess {
    /// Read or write.
    pub op: AccessOp,
    /// Tree level (root = 0, leaves = depth).
    pub level: u32,
}

/// Canonicalizes a raw page trace to (op, level) pairs.
pub fn canonicalize(trace: &[AccessRecord], pages_per_bucket: u64) -> Vec<CanonicalAccess> {
    let ppb = pages_per_bucket.max(1);
    trace
        .iter()
        .map(|r| {
            let node = r.page / ppb;
            // Heap numbering: level = floor(log2(node + 1)).
            let level = 63 - (node + 1).leading_zeros();
            CanonicalAccess { op: r.op, level }
        })
        .collect()
}

/// Result of the two-sample chi-squared test over per-(op, level) counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChiSquared {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom (occupied bins − 1).
    pub df: usize,
    /// Critical value at the auditor's significance (α ≈ 0.001).
    pub critical: f64,
    /// Whether the statistic stayed below the critical value.
    pub pass: bool,
}

/// Two-sample chi-squared over per-bin counts (bins = (op, level) pairs).
///
/// Uses the standard normalization for unequal totals: with bin counts
/// `a_i`, `b_i` and totals `A`, `B`, the statistic is
/// `Σ (a_i·√(B/A) − b_i·√(A/B))² / (a_i + b_i)` with `bins − 1` degrees
/// of freedom. The critical value comes from the Wilson–Hilferty
/// approximation at z ≈ 3.09 (α ≈ 0.001), chosen loose on purpose: the
/// auditor must not false-alarm on sampling noise.
pub fn chi_squared_two_sample(a: &[CanonicalAccess], b: &[CanonicalAccess]) -> ChiSquared {
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<(u8, u32), (f64, f64)> = BTreeMap::new();
    for c in a {
        bins.entry((op_key(c.op), c.level)).or_insert((0.0, 0.0)).0 += 1.0;
    }
    for c in b {
        bins.entry((op_key(c.op), c.level)).or_insert((0.0, 0.0)).1 += 1.0;
    }
    let total_a: f64 = a.len() as f64;
    let total_b: f64 = b.len() as f64;
    if total_a == 0.0 || total_b == 0.0 {
        // An empty trace against a non-empty one is trivially
        // distinguishable; two empty traces are trivially equal.
        let pass = a.is_empty() && b.is_empty();
        return ChiSquared {
            statistic: if pass { 0.0 } else { f64::INFINITY },
            df: bins.len().saturating_sub(1),
            critical: 0.0,
            pass,
        };
    }
    let ra = (total_b / total_a).sqrt();
    let rb = (total_a / total_b).sqrt();
    let mut statistic = 0.0;
    for &(ca, cb) in bins.values() {
        let denom = ca + cb;
        if denom > 0.0 {
            let d = ca * ra - cb * rb;
            statistic += d * d / denom;
        }
    }
    let df = bins.len().saturating_sub(1).max(1);
    let critical = chi_squared_critical(df);
    ChiSquared {
        statistic,
        df,
        critical,
        pass: statistic <= critical,
    }
}

pub(crate) fn op_key(op: AccessOp) -> u8 {
    match op {
        AccessOp::Read => 0,
        AccessOp::Write => 1,
    }
}

/// The auditor's shared confidence level: Φ⁻¹(0.999) ≈ 3.09, i.e.
/// α ≈ 0.001 one-sided. Both the chi-squared critical value and the
/// empirical-ε confidence interval ([`empirical`]) use this z so the two
/// judgements alarm at the same significance.
pub(crate) const CONFIDENCE_Z: f64 = 3.090_232;

/// Wilson–Hilferty approximation of the chi-squared critical value at
/// α ≈ 0.001 (z ≈ 3.09): `df·(1 − 2/(9df) + z·√(2/(9df)))³`.
pub(crate) fn chi_squared_critical(df: usize) -> f64 {
    let k = df as f64;
    let t = 2.0 / (9.0 * k);
    k * (1.0 - t + CONFIDENCE_Z * t.sqrt()).powi(3)
}

/// The auditor's verdict on one twin run.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditVerdict {
    /// Canonical traces are identical: perfectly oblivious, as `delta(K)`
    /// shapes (ε = 0) must be.
    Oblivious,
    /// Traces differ, but per-(op, level) frequencies are statistically
    /// indistinguishable at the auditor's significance — consistent with
    /// the claimed finite-ε FDP guarantee.
    IndistinguishableWithinEpsilon,
    /// The traces diverge in a way the claimed guarantee cannot explain
    /// (e.g. the naive-dedup strawman leaking `k_union` through the trace
    /// length, or a claimed-perfect mechanism with unequal traces).
    Leaky {
        /// Human-readable explanation of the divergence.
        reason: String,
    },
}

impl AuditVerdict {
    /// True for either passing verdict.
    pub fn is_pass(&self) -> bool {
        !matches!(self, AuditVerdict::Leaky { .. })
    }
}

/// Everything one twin run measured.
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// Raw trace length of run A (pages touched).
    pub len_a: usize,
    /// Raw trace length of run B.
    pub len_b: usize,
    /// Whether the canonical (op, level) sequences matched exactly.
    pub canonical_equal: bool,
    /// The chi-squared frequency test (run even when traces are equal,
    /// where it is trivially passing).
    pub chi: ChiSquared,
    /// The mechanism ε the configuration claims.
    pub mechanism_epsilon: f64,
    /// The verdict.
    pub verdict: AuditVerdict,
}

/// Builds the standard twin inputs: run A requests `k` *distinct* entries,
/// run B requests the same entry `k` times. Both have the same public
/// request count `K = k`; their secret union sizes are `k` and `1`.
pub fn twin_inputs(k: usize) -> (Vec<u64>, Vec<u64>) {
    let a: Vec<u64> = (0..k as u64).collect();
    let b: Vec<u64> = vec![0; k];
    (a, b)
}

/// Runs `rounds` rounds of `requests` on a fresh server seeded with
/// `seed`, capturing the main-ORAM page trace. Construction (bulk table
/// load) happens before the recorder attaches, so only protocol traffic
/// is captured.
///
/// # Errors
///
/// Round failures propagate unchanged.
pub fn traced_run(
    config: &FedoraConfig,
    seed: u64,
    requests: &[u64],
    rounds: usize,
) -> Result<Vec<AccessRecord>, FedoraError> {
    let entry_bytes = config.table.entry_bytes;
    let config = config.clone();
    traced_run_with(
        &mut move |rng: &mut StdRng| {
            Ok(FedoraServer::with_telemetry(
                config.clone(),
                |id| vec![(id % 251) as u8; entry_bytes],
                Registry::disabled(),
                rng,
            ))
        },
        seed,
        requests,
        rounds,
    )
}

/// Like [`traced_run`], but the server comes from `factory` instead of a
/// fresh build — the hook that lets the auditor run against a *recovered*
/// server (build fresh, [`FedoraServer::recover`], return it) and check
/// that crash recovery preserved the obliviousness claim. The factory
/// receives the run's seeded RNG; construction happens before the
/// recorder attaches, so only protocol traffic is captured.
///
/// # Errors
///
/// Factory and round failures propagate unchanged.
pub fn traced_run_with<F>(
    factory: &mut F,
    seed: u64,
    requests: &[u64],
    rounds: usize,
) -> Result<Vec<AccessRecord>, FedoraError>
where
    F: FnMut(&mut StdRng) -> Result<FedoraServer, FedoraError>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = factory(&mut rng)?;
    let recorder = AccessTraceRecorder::new();
    server.set_access_recorder(recorder.clone());
    let mut mode = FedAvg;
    for _ in 0..rounds {
        server.begin_round(requests, &mut rng)?;
        server.end_round(&mut mode, 1.0, &mut rng)?;
    }
    Ok(recorder.take())
}

/// The twin-run audit: replays the same schedule with two differing
/// private inputs and judges the traces against the configured claim.
///
/// # Errors
///
/// Round failures propagate unchanged.
pub fn audit_twin_inputs(
    config: &FedoraConfig,
    seed: u64,
    requests_a: &[u64],
    requests_b: &[u64],
    rounds: usize,
) -> Result<AuditOutcome, FedoraError> {
    let trace_a = traced_run(config, seed, requests_a, rounds)?;
    let trace_b = traced_run(config, seed, requests_b, rounds)?;
    judge_traces(config, trace_a, trace_b)
}

/// Like [`audit_twin_inputs`], but both runs use servers built by
/// `factory` — e.g. crash-recovered ones. The factory runs once per twin
/// (same `seed`-derived RNG state each time); the claim judged is the one
/// `config` declares.
///
/// # Errors
///
/// Factory and round failures propagate unchanged.
pub fn audit_twin_inputs_with<F>(
    config: &FedoraConfig,
    factory: &mut F,
    seed: u64,
    requests_a: &[u64],
    requests_b: &[u64],
    rounds: usize,
) -> Result<AuditOutcome, FedoraError>
where
    F: FnMut(&mut StdRng) -> Result<FedoraServer, FedoraError>,
{
    let trace_a = traced_run_with(factory, seed, requests_a, rounds)?;
    let trace_b = traced_run_with(factory, seed, requests_b, rounds)?;
    judge_traces(config, trace_a, trace_b)
}

/// Canonicalizes two twin traces and judges them against the configured
/// privacy claim (shared tail of the `audit_twin_inputs*` pair).
fn judge_traces(
    config: &FedoraConfig,
    trace_a: Vec<AccessRecord>,
    trace_b: Vec<AccessRecord>,
) -> Result<AuditOutcome, FedoraError> {
    let ppb = config.geometry.pages_per_bucket(config.ssd.page_bytes);
    let canon_a = canonicalize(&trace_a, ppb);
    let canon_b = canonicalize(&trace_b, ppb);
    let canonical_equal = canon_a == canon_b;
    let chi = chi_squared_two_sample(&canon_a, &canon_b);
    let epsilon = config.privacy.mechanism.epsilon();
    let verdict = if canonical_equal {
        AuditVerdict::Oblivious
    } else if epsilon == 0.0 {
        AuditVerdict::Leaky {
            reason: format!(
                "mechanism claims perfect FDP (ε = 0) but canonical traces \
                 diverge ({} vs {} accesses)",
                canon_a.len(),
                canon_b.len()
            ),
        }
    } else if epsilon.is_infinite() {
        AuditVerdict::Leaky {
            reason: format!(
                "no-privacy mechanism (naive dedup, ε = ∞): trace length \
                 leaks k_union ({} vs {} accesses)",
                canon_a.len(),
                canon_b.len()
            ),
        }
    } else if chi.pass {
        AuditVerdict::IndistinguishableWithinEpsilon
    } else {
        AuditVerdict::Leaky {
            reason: format!(
                "per-level access frequencies distinguishable beyond the \
                 claimed ε = {epsilon}: χ² = {:.2} > {:.2} (df = {})",
                chi.statistic, chi.critical, chi.df
            ),
        }
    };
    Ok(AuditOutcome {
        len_a: trace_a.len(),
        len_b: trace_b.len(),
        canonical_equal,
        chi,
        mechanism_epsilon: epsilon,
        verdict,
    })
}

/// Determinism check: two runs with *identical* inputs and seed must
/// produce byte-identical raw traces (otherwise twin comparisons would be
/// meaningless).
///
/// # Errors
///
/// Round failures propagate unchanged.
pub fn audit_determinism(
    config: &FedoraConfig,
    seed: u64,
    requests: &[u64],
    rounds: usize,
) -> Result<bool, FedoraError> {
    let first = traced_run(config, seed, requests, rounds)?;
    let second = traced_run(config, seed, requests, rounds)?;
    Ok(first == second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrivacyConfig, TableSpec};

    fn config(privacy: PrivacyConfig) -> FedoraConfig {
        let mut c = FedoraConfig::for_testing(TableSpec::tiny(128), 64);
        c.privacy = privacy;
        c
    }

    #[test]
    fn canonicalize_maps_pages_to_levels() {
        let trace = [
            AccessRecord {
                op: AccessOp::Read,
                page: 0, // node 0 → level 0
            },
            AccessRecord {
                op: AccessOp::Read,
                page: 3, // node 1 → level 1
            },
            AccessRecord {
                op: AccessOp::Write,
                page: 14, // node 7 → level 3
            },
        ];
        let canon = canonicalize(&trace, 2);
        assert_eq!(
            canon,
            vec![
                CanonicalAccess {
                    op: AccessOp::Read,
                    level: 0
                },
                CanonicalAccess {
                    op: AccessOp::Read,
                    level: 1
                },
                CanonicalAccess {
                    op: AccessOp::Write,
                    level: 3
                },
            ]
        );
    }

    #[test]
    fn chi_squared_equal_traces_pass() {
        let a: Vec<CanonicalAccess> = (0..4u32)
            .flat_map(|level| {
                std::iter::repeat_n(
                    CanonicalAccess {
                        op: AccessOp::Read,
                        level,
                    },
                    25,
                )
            })
            .collect();
        let chi = chi_squared_two_sample(&a, &a);
        assert!(chi.pass, "{chi:?}");
        assert!(chi.statistic < 1e-9);
    }

    #[test]
    fn chi_squared_skewed_traces_fail() {
        let a: Vec<CanonicalAccess> = (0..4u32)
            .flat_map(|level| {
                std::iter::repeat_n(
                    CanonicalAccess {
                        op: AccessOp::Read,
                        level,
                    },
                    100,
                )
            })
            .collect();
        // b hammers level 0 only: grossly distinguishable.
        let b: Vec<CanonicalAccess> = std::iter::repeat_n(
            CanonicalAccess {
                op: AccessOp::Read,
                level: 0,
            },
            400,
        )
        .collect();
        let chi = chi_squared_two_sample(&a, &b);
        assert!(!chi.pass, "{chi:?}");
    }

    #[test]
    fn vanilla_delta_k_is_oblivious() {
        let c = config(PrivacyConfig::perfect());
        let (a, b) = twin_inputs(8);
        let outcome = audit_twin_inputs(&c, 7, &a, &b, 2).unwrap();
        assert!(outcome.canonical_equal, "{outcome:?}");
        assert_eq!(outcome.verdict, AuditVerdict::Oblivious);
    }

    #[test]
    fn naive_dedup_strawman_is_flagged() {
        let c = config(PrivacyConfig::none());
        let (a, b) = twin_inputs(8);
        let outcome = audit_twin_inputs(&c, 7, &a, &b, 2).unwrap();
        assert!(!outcome.canonical_equal);
        assert!(
            matches!(outcome.verdict, AuditVerdict::Leaky { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn identical_inputs_replay_byte_identical() {
        let c = config(PrivacyConfig::with_epsilon(1.0));
        let (a, _) = twin_inputs(8);
        assert!(audit_determinism(&c, 7, &a, 2).unwrap());
    }
}
