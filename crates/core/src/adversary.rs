//! Adversary simulations: what an honest-but-curious server operator can
//! actually infer, measured.
//!
//! The paper's threat model (§4.1) grants the adversary the values,
//! addresses, sizes, and timing of everything stored off-chip. This module
//! implements the natural attacks at each protection level and measures
//! their success, turning the security argument into executable evidence:
//!
//! * [`frequency_attack`] — against an *unprotected* embedding table
//!   (plain per-request lookups, the Figure 1 strawman), request
//!   addresses directly reveal each user's feature values; the attack
//!   recovers the popularity ranking exactly.
//! * [`trace_attack`] — against FEDORA's main ORAM, the same adversary
//!   sees only uniformly random path leaves; the attack's accuracy
//!   collapses to chance.
//! * [`count_attack`] — against the access *count* `k`, the optimal
//!   single-observation distinguisher between two neighboring worlds; its
//!   advantage is bounded by `(e^ε − 1)/(e^ε + 1)` under ε-FDP, and this
//!   module measures it across ε.

use fedora_fdp::FdpMechanism;
use rand::Rng;

/// Result of a distinguishing attack: the measured probability of
/// guessing the world correctly (0.5 = chance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Number of trials run.
    pub trials: u32,
    /// Fraction of correct guesses.
    pub success_rate: f64,
}

impl AttackOutcome {
    /// The advantage over random guessing, in [−0.5, 0.5].
    pub fn advantage(&self) -> f64 {
        self.success_rate - 0.5
    }
}

/// Frequency attack against unprotected lookups: given the multiset of
/// accessed table rows (directly visible without ORAM), recover the
/// top-`n` most popular feature values. Returns the fraction of the true
/// top-`n` the attacker identifies — 1.0 means total leakage.
pub fn frequency_attack(observed_rows: &[u64], true_top: &[u64]) -> f64 {
    if true_top.is_empty() {
        return 1.0;
    }
    let mut counts: std::collections::HashMap<u64, u64> = Default::default();
    for &r in observed_rows {
        *counts.entry(r).or_default() += 1;
    }
    let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let guessed: Vec<u64> = ranked
        .iter()
        .take(true_top.len())
        .map(|(id, _)| *id)
        .collect();
    let hits = true_top.iter().filter(|t| guessed.contains(t)).count();
    hits as f64 / true_top.len() as f64
}

/// Trace attack against an ORAM: the adversary only sees path leaves. The
/// attack applies the same frequency analysis to the leaves and tries to
/// find the `n` hottest *rows*; since leaves are uniform and remapped per
/// access, the recovered "ranking" is noise. Returns the same hit
/// fraction as [`frequency_attack`] — expected ≈ `n / num_leaves`.
pub fn trace_attack(observed_leaves: &[u64], true_top: &[u64]) -> f64 {
    // The strongest thing the adversary can do with leaves is the same
    // frequency analysis; the API is deliberately identical.
    frequency_attack(observed_leaves, true_top)
}

/// The optimal single-observation distinguisher against the FDP-noised
/// access count: given worlds with `k_union` and `k_union + 1`, guess by
/// likelihood ratio. Measures its empirical success over `trials`.
///
/// Under ε-FDP the advantage is bounded by `(e^ε − 1)/(e^ε + 1)`
/// (the standard DP hypothesis-testing bound for balanced priors).
#[allow(clippy::expect_used)] // k_union ≤ k_max by the caller's contract
pub fn count_attack<R: Rng>(
    mechanism: &FdpMechanism,
    k_union: u64,
    k_max: u64,
    trials: u32,
    rng: &mut R,
) -> AttackOutcome {
    let pdf_a = mechanism.pdf(k_union, k_max).expect("valid world A");
    let pdf_b = mechanism.pdf(k_union + 1, k_max).expect("valid world B");
    let mut correct = 0u32;
    for _ in 0..trials {
        let world_b: bool = rng.gen();
        let secret = if world_b { k_union + 1 } else { k_union };
        let k = mechanism.sample_k(secret, k_max, rng);
        let (pa, pb) = (pdf_a[(k - 1) as usize], pdf_b[(k - 1) as usize]);
        let guess_b = pb > pa || (pb == pa && rng.gen());
        if guess_b == world_b {
            correct += 1;
        }
    }
    AttackOutcome {
        trials,
        success_rate: correct as f64 / trials as f64,
    }
}

/// The DP bound on a single-observation distinguisher's success rate with
/// balanced priors: `e^ε / (1 + e^ε)`.
pub fn dp_success_bound(epsilon: f64) -> f64 {
    if epsilon.is_infinite() {
        1.0
    } else {
        let e = epsilon.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedora_fdp::YShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequency_attack_wins_without_protection() {
        // 1000 observations: rows 3 and 7 dominate.
        let mut obs = vec![3u64; 400];
        obs.extend(std::iter::repeat_n(7, 300));
        obs.extend((0..300).map(|i| 100 + i % 50));
        assert_eq!(frequency_attack(&obs, &[3, 7]), 1.0);
    }

    #[test]
    fn trace_attack_fails_against_uniform_leaves() {
        let mut rng = StdRng::seed_from_u64(1);
        let leaves: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..1024u64)).collect();
        // The "true top" rows are irrelevant to the leaf distribution.
        let hit = trace_attack(&leaves, &[3, 7, 11, 13]);
        assert!(hit <= 0.25, "trace attack should be near chance, got {hit}");
    }

    #[test]
    fn count_attack_bounded_by_dp() {
        let mut rng = StdRng::seed_from_u64(2);
        for eps in [0.1, 0.5, 1.0, 2.0] {
            let mech = FdpMechanism::new(eps, YShape::Uniform).expect("valid");
            let out = count_attack(&mech, 30, 100, 6000, &mut rng);
            let bound = dp_success_bound(eps);
            // 3-sigma statistical slack on 6000 Bernoulli trials.
            let slack = 3.0 * (0.25f64 / 6000.0).sqrt();
            assert!(
                out.success_rate <= bound + slack,
                "eps={eps}: success {:.4} exceeds bound {:.4}",
                out.success_rate,
                bound
            );
        }
    }

    #[test]
    fn count_attack_wins_against_strawman2() {
        let mut rng = StdRng::seed_from_u64(3);
        let mech = FdpMechanism::no_privacy();
        let out = count_attack(&mech, 30, 100, 2000, &mut rng);
        assert!(
            out.success_rate > 0.99,
            "deterministic k must leak: {:?}",
            out
        );
    }

    #[test]
    fn count_attack_blind_against_strawman1() {
        let mut rng = StdRng::seed_from_u64(4);
        let mech = FdpMechanism::vanilla();
        let out = count_attack(&mech, 30, 100, 4000, &mut rng);
        assert!(
            (out.success_rate - 0.5).abs() < 0.03,
            "k = K always: attacker must be at chance, got {:?}",
            out
        );
    }

    #[test]
    fn bound_is_monotone_in_epsilon() {
        assert!(dp_success_bound(0.1) < dp_success_bound(1.0));
        assert!(dp_success_bound(1.0) < dp_success_bound(3.0));
        assert_eq!(dp_success_bound(f64::INFINITY), 1.0);
        assert!((dp_success_bound(0.0) - 0.5).abs() < 1e-12);
    }
}
