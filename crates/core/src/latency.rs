//! The per-round latency model (Fig. 8) and the scratchpad ablation
//! (Fig. 10).
//!
//! End-to-end FL latency is dominated by user-side training and network
//! communication, which the paper (following Google's production numbers)
//! takes as a fixed **2 minutes per round**. FEDORA adds server-side
//! overhead on top: SSD path I/O, DRAM traffic (buffer ORAM, VTree),
//! controller compute (the O(K²) oblivious union, AEAD en/decryption), and
//! — when the TEE has no scratchpad — extra oblivious scans during EO
//! eviction.

use fedora_storage::stats::DeviceStats;

use crate::config::FedoraConfig;
use crate::server::RoundReport;

/// The fixed FL round time the overhead is measured against (§6.1).
pub const FL_ROUND_BASE_S: f64 = 120.0;

/// Controller compute-cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyParams {
    /// Cost of one oblivious-union slot visit (compare + cmov), ns.
    pub union_slot_ns: f64,
    /// AEAD throughput cost, ns per byte (ChaCha20-Poly1305 in software
    /// runs at a few GB/s).
    pub crypto_ns_per_byte: f64,
    /// Payload-restructuring cost during an EO (present with or without a
    /// scratchpad): ns per byte moved at DRAM bandwidth.
    pub evict_move_ns_per_byte: f64,
    /// Oblivious candidate-selection cost when **no** scratchpad exists:
    /// selection degenerates to O(path_slots²) compare-and-cmov pairs over
    /// DRAM-resident metadata; ns per slot pair. With the scratchpad the
    /// metadata is staged on-chip and this term vanishes.
    pub evict_pair_ns: f64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        LatencyParams {
            union_slot_ns: 1.0,
            crypto_ns_per_byte: 0.35,
            evict_move_ns_per_byte: 0.05,
            evict_pair_ns: 24.0,
        }
    }
}

/// One round's latency decomposition.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoundLatency {
    /// SSD busy time, ns.
    pub ssd_ns: f64,
    /// DRAM busy time (buffer ORAM + VTree), ns.
    pub dram_ns: f64,
    /// Controller compute (union + crypto), ns.
    pub controller_ns: f64,
    /// Eviction-scan time (the part the scratchpad accelerates), ns.
    pub eviction_ns: f64,
}

impl RoundLatency {
    /// Total added latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ssd_ns + self.dram_ns + self.controller_ns + self.eviction_ns
    }

    /// Total added latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_ns() / 1e9
    }

    /// Overhead relative to the 2-minute FL round (the Fig. 8 y-axis).
    pub fn overhead_fraction(&self) -> f64 {
        self.total_s() / FL_ROUND_BASE_S
    }
}

/// The latency model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyModel {
    /// Compute-cost parameters.
    pub params: LatencyParams,
}

impl LatencyModel {
    /// Computes one round's latency from its report and the system
    /// configuration (simulated-device path).
    pub fn round_latency(&self, report: &RoundReport, config: &FedoraConfig) -> RoundLatency {
        let dram = report.buffer_dram.merged(&report.vtree_dram);
        RoundLatency {
            ssd_ns: report.ssd.busy_ns as f64,
            dram_ns: dram.busy_ns as f64,
            controller_ns: self.controller_ns(report.union_scan_slots, &report.ssd, &dram),
            eviction_ns: self.eviction_ns(
                report.eo_accesses,
                config,
                config.scratchpad.fits(config.ssd.page_bytes),
            ),
        }
    }

    /// Controller compute: union scans + AEAD over all moved bytes.
    pub fn controller_ns(
        &self,
        union_scan_slots: u64,
        ssd: &DeviceStats,
        dram: &DeviceStats,
    ) -> f64 {
        let crypto_bytes =
            (ssd.bytes_read + ssd.bytes_written + dram.bytes_read + dram.bytes_written) as f64;
        union_scan_slots as f64 * self.params.union_slot_ns
            + crypto_bytes * self.params.crypto_ns_per_byte
    }

    /// Eviction-selection time for `eo_accesses` EO accesses.
    ///
    /// Both configurations pay for moving the path's slot payloads
    /// (linear in bytes). Without the scratchpad, candidate *selection*
    /// additionally degenerates to an oblivious O(path_slots²) scan over
    /// DRAM-resident metadata — the dominant term for small blocks, where
    /// many slots fit a path; with large blocks the SSD transfer dwarfs it
    /// (the Fig. 10 shape).
    pub fn eviction_ns(
        &self,
        eo_accesses: u64,
        config: &FedoraConfig,
        has_scratchpad: bool,
    ) -> f64 {
        let geo = &config.geometry;
        let path_slots = geo.num_levels() as f64 * geo.z() as f64;
        let slot_bytes = (fedora_oram::bucket::SLOT_META_BYTES + geo.block_bytes()) as f64;
        let move_cost = path_slots * slot_bytes * self.params.evict_move_ns_per_byte;
        let select_cost = if has_scratchpad {
            0.0
        } else {
            path_slots * path_slots * self.params.evict_pair_ns
        };
        eo_accesses as f64 * (move_cost + select_cost)
    }

    /// Analytic-path latency for paper-scale configs: combine
    /// [`crate::analytic`] counts with this model.
    pub fn analytic_round_latency(
        &self,
        config: &FedoraConfig,
        counts: &crate::analytic::RoundCounts,
        k_requests: u64,
        union_scan_slots: u64,
        has_scratchpad: bool,
    ) -> RoundLatency {
        let page = config.ssd.page_bytes;
        let ssd_ns = crate::analytic::ssd_busy_ns(&config.ssd, counts) as f64;
        // DRAM traffic ≈ buffer ORAM moving 2× entry bytes per request
        // through a log-depth tree, plus VTree bits (negligible bytes but
        // counted per access).
        let buffer_geo = fedora_oram::TreeGeometry::for_blocks(
            config.max_requests_per_round.max(2) as u64,
            2 * config.table.entry_bytes + 8,
            4,
        );
        let buffer_path_bytes =
            buffer_geo.num_levels() as u64 * buffer_geo.bucket_stored_bytes() as u64;
        // Loads (k) + serves (K) + aggregates (K, read+write) + drain (k).
        let k = counts.path_reads.saturating_sub(counts.path_writes); // AO count
        let buffer_accesses = 2 * k + 3 * k_requests;
        let dram_bytes = buffer_accesses * 2 * buffer_path_bytes;
        let dram_ns = dram_bytes as f64 / 20.0; // 20 B/ns DDR5-like
        let ssd_stats = DeviceStats {
            pages_read: counts.pages_read,
            pages_written: counts.pages_written,
            bytes_read: counts.pages_read * page as u64,
            bytes_written: counts.pages_written * page as u64,
            busy_ns: ssd_ns as u64,
            ..DeviceStats::default()
        };
        let dram_stats = DeviceStats {
            pages_read: buffer_accesses,
            pages_written: buffer_accesses,
            bytes_read: dram_bytes / 2,
            bytes_written: dram_bytes / 2,
            busy_ns: dram_ns as u64,
            ..DeviceStats::default()
        };
        RoundLatency {
            ssd_ns,
            dram_ns,
            controller_ns: self.controller_ns(union_scan_slots, &ssd_stats, &dram_stats),
            eviction_ns: self.eviction_ns(counts.path_writes, config, has_scratchpad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::fedora_round;
    use crate::config::{FedoraConfig, TableSpec};

    fn config() -> FedoraConfig {
        FedoraConfig::paper_tuned(TableSpec::small(), 100_000)
    }

    #[test]
    fn overhead_fraction_is_relative_to_2min() {
        let lat = RoundLatency {
            ssd_ns: 12e9,
            ..Default::default()
        };
        assert!((lat.overhead_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn no_scratchpad_costs_more() {
        let m = LatencyModel::default();
        let cfg = config();
        let with = m.eviction_ns(100, &cfg, true);
        let without = m.eviction_ns(100, &cfg, false);
        assert!(without > 10.0 * with, "with {with} vs without {without}");
        assert!(with > 0.0);
    }

    #[test]
    fn fig10_shape_small_blocks_hurt_more() {
        // The *relative* slowdown from losing the scratchpad shrinks as
        // blocks grow (§6.6 / Fig. 10).
        let m = LatencyModel::default();
        let slowdown = |spec: TableSpec, k: u64| {
            let cfg = FedoraConfig::paper_tuned(spec, 1_000_000);
            let a = cfg.raw.eviction_period;
            let counts = fedora_round(&cfg.geometry, k, a, 4096);
            let scans = k * 16 * 1024; // chunked union cost
            let with = m
                .analytic_round_latency(&cfg, &counts, k, scans, true)
                .total_ns();
            let without = m
                .analytic_round_latency(&cfg, &counts, k, scans, false)
                .total_ns();
            without / with
        };
        let small = slowdown(TableSpec::small(), 10_000);
        let large = slowdown(TableSpec::large(), 1_000_000);
        assert!(small > large, "small {small} should exceed large {large}");
        assert!(small > 1.2 && small < 2.0, "small-table slowdown {small}");
        assert!(large < 1.3, "large-table slowdown {large}");
    }

    #[test]
    fn latency_components_sum() {
        let lat = RoundLatency {
            ssd_ns: 1.0,
            dram_ns: 2.0,
            controller_ns: 3.0,
            eviction_ns: 4.0,
        };
        assert_eq!(lat.total_ns(), 10.0);
    }
}
