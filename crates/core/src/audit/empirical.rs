//! Online empirical-ε estimation over replayed twin pairs.
//!
//! The twin-run auditor ([`crate::audit`]) answers a yes/no question: did
//! the traces diverge beyond what the configured claim allows? This module
//! upgrades that to a *quantity* — how much did the observed access
//! pattern actually leak — so a live deployment can alarm when empirical
//! leakage drifts past the configured budget instead of waiting for an
//! offline audit.
//!
//! ## Model
//!
//! Each replayed twin pair contributes one sample: the same round schedule
//! run with the same seed on two servers whose private inputs differ in
//! `d` feature values (`d` = [`value_distance`]; prefer `d = 1` adjacent
//! inputs, see [`adjacent_inputs`]). Both traces are canonicalized with
//! the offline auditor's machinery, then collapsed to **path counts** per
//! operation: the number of root-level (level-0) touches. Every tree-path
//! access touches the root exactly once, so the root count is the one
//! degree of freedom the mechanism's `k` draw controls — counting deeper
//! levels as well would replay the same evidence once per level (path
//! accesses are perfectly correlated across levels) and overstate the
//! leakage by the tree depth.
//!
//! The per-arm path-count distributions are estimated **empirically**
//! (smoothed pmfs over the observed support), not with a parametric
//! model: a parametric surrogate sees only means and would score an
//! honest DP mechanism (noise-overlapped supports) the same as a
//! deterministic leak with the same mean gap. The per-sample privacy loss
//! is the symmetric log-likelihood ratio of each arm's observed count
//! under its own pmf versus the other's, divided by `d` for per-value ε.
//!
//! ## Estimate and alarm semantics
//!
//! [`EpsilonEstimate::eps_hat`] is the bias-corrected mean per-value loss;
//! the confidence interval uses the same z ≈ 3.09 (α ≈ 0.001) as the
//! auditor's Wilson–Hilferty chi-squared critical value, so both
//! judgements alarm at the same significance. The alarm predicate
//! ([`EpsilonEstimate::exceeds`]) is deliberately conservative: it fires
//! only when the CI *lower* bound clears the budget, i.e. when the data
//! confidently rules out the configured ε.
//!
//! **Honest caveat:** a black-box estimate from `n` pairs can never
//! exceed ≈ `ln(2n + 1)` nats of measured loss per channel — disjoint
//! observed supports are indistinguishable from a likelihood ratio of
//! about `2n`. The estimate is therefore a *lower bound* on leakage, and
//! tight intervals (or confidently clearing a small budget) need tens of
//! samples. Deterministic leaks (the §3.2 naive-dedup strawman) hit that
//! `ln(2n + 1)` ceiling with zero variance, which is exactly what makes
//! them alarm quickly; honest mechanisms at `d = 1` sit well below their
//! configured ε.

use std::collections::BTreeMap;

use fedora_storage::AccessRecord;

use crate::audit::{
    canonicalize, chi_squared_two_sample, op_key, traced_run, CanonicalAccess, ChiSquared,
    CONFIDENCE_Z,
};
use crate::config::FedoraConfig;
use crate::server::FedoraError;

/// A per-operation channel key (read / write).
type Channel = u8;

/// Occurrences per distinct path-count value — one arm's raw pmf.
type Pmf = BTreeMap<u64, u64>;

/// Add-half-smoothed probabilities over a channel's union support.
type SmoothedPmf = BTreeMap<u64, f64>;

/// The running empirical-ε estimate over the twin pairs observed so far.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpsilonEstimate {
    /// Bias-corrected mean per-value privacy loss (the empirical ε).
    pub eps_hat: f64,
    /// Lower confidence bound at the auditor's significance (α ≈ 0.001).
    pub ci_lo: f64,
    /// Upper confidence bound (`+∞` until two samples exist).
    pub ci_hi: f64,
    /// Twin pairs the estimate is based on.
    pub samples: usize,
}

impl EpsilonEstimate {
    /// An estimate carrying no evidence at all.
    pub fn empty() -> Self {
        EpsilonEstimate {
            eps_hat: 0.0,
            ci_lo: 0.0,
            ci_hi: f64::INFINITY,
            samples: 0,
        }
    }

    /// Whether the estimate *confidently* exceeds `budget` (the configured
    /// per-value mechanism ε): the CI lower bound clears the budget with at
    /// least two samples behind it. Never fires against an infinite budget
    /// (a no-privacy claim bounds nothing).
    pub fn exceeds(&self, budget: f64) -> bool {
        budget.is_finite() && self.samples >= 2 && self.ci_lo > budget
    }
}

/// Streaming estimator: feed it raw twin traces one pair at a time
/// ([`EpsilonEstimator::observe_pair`]), read the current estimate at any
/// point ([`EpsilonEstimator::estimate`]). Only per-channel path counts
/// are retained, so memory grows with `samples`, not trace length.
#[derive(Clone, Debug)]
pub struct EpsilonEstimator {
    pages_per_bucket: u64,
    /// Twin value-distance `d`: the loss of one pair bounds `d` values'
    /// worth of ε, so per-value ε divides by it.
    distance: f64,
    /// Retained-pair cap (0 = unbounded): once exceeded, the oldest pair
    /// is evicted, turning the estimate into a sliding window over the
    /// most recent pairs — what a long-lived live refresher wants.
    max_samples: usize,
    counts_a: Vec<BTreeMap<Channel, u64>>,
    counts_b: Vec<BTreeMap<Channel, u64>>,
    /// Per-pair value distance (pairs fed via
    /// [`observe_pair_scaled`](Self::observe_pair_scaled) may each carry
    /// their own `d`; [`observe_pair`](Self::observe_pair) uses the
    /// constructor's).
    distances: Vec<f64>,
}

impl EpsilonEstimator {
    /// Creates an estimator for twins `distance` feature values apart on a
    /// tree with `pages_per_bucket` pages per bucket.
    pub fn new(pages_per_bucket: u64, distance: usize) -> Self {
        EpsilonEstimator {
            pages_per_bucket,
            distance: distance.max(1) as f64,
            max_samples: 0,
            counts_a: Vec::new(),
            counts_b: Vec::new(),
            distances: Vec::new(),
        }
    }

    /// Caps retained pairs at `max` (0 = unbounded); when a new pair would
    /// exceed the cap the oldest is evicted, so a long-lived estimator
    /// holds bounded memory and tracks *recent* behaviour.
    pub fn set_max_samples(&mut self, max: usize) {
        self.max_samples = max;
    }

    /// Twin pairs observed so far.
    pub fn samples(&self) -> usize {
        self.counts_a.len()
    }

    /// Ingests one replayed twin pair (raw traces; canonicalization and
    /// path-count collapse happen here).
    pub fn observe_pair(&mut self, trace_a: &[AccessRecord], trace_b: &[AccessRecord]) {
        let d = self.distance;
        self.push_pair(trace_a, trace_b, d);
    }

    /// Ingests one pair whose inputs sit `distance` feature values apart,
    /// overriding the constructor's distance for this sample only. This is
    /// the live-refresher entry point: consecutive captured rounds are not
    /// controlled twins, so each pair carries its own symmetric-difference
    /// distance ([`value_distance`]) and the per-value scaling stays honest.
    pub fn observe_pair_scaled(
        &mut self,
        trace_a: &[AccessRecord],
        trace_b: &[AccessRecord],
        distance: usize,
    ) {
        self.push_pair(trace_a, trace_b, distance.max(1) as f64);
    }

    fn push_pair(&mut self, trace_a: &[AccessRecord], trace_b: &[AccessRecord], distance: f64) {
        self.counts_a
            .push(path_counts(&canonicalize(trace_a, self.pages_per_bucket)));
        self.counts_b
            .push(path_counts(&canonicalize(trace_b, self.pages_per_bucket)));
        self.distances.push(distance);
        if self.max_samples > 0 && self.counts_a.len() > self.max_samples {
            self.counts_a.remove(0);
            self.counts_b.remove(0);
            self.distances.remove(0);
        }
    }

    /// The current estimate. See the [module docs](self) for semantics.
    pub fn estimate(&self) -> EpsilonEstimate {
        let n = self.counts_a.len();
        if n == 0 {
            return EpsilonEstimate::empty();
        }
        let nf = n as f64;
        // Channels observed anywhere, and the per-channel empirical pmfs
        // of each arm's path count (occurrences per distinct count value).
        let mut channels: BTreeMap<Channel, (Pmf, Pmf)> = BTreeMap::new();
        for i in 0..n {
            for (arm, per_sample) in [(0, &self.counts_a), (1, &self.counts_b)] {
                for (&ch, &c) in &per_sample[i] {
                    let entry = channels.entry(ch).or_default();
                    let pmf = if arm == 0 { &mut entry.0 } else { &mut entry.1 };
                    *pmf.entry(c).or_insert(0) += 1;
                }
            }
        }
        // Smoothed pmf over the union support (add-half keeps log-ratios
        // finite where one arm never produced a count value). `support`
        // also drives the plug-in bias correction below.
        let mut support_excess = 0usize;
        let mut smoothed: BTreeMap<Channel, (SmoothedPmf, SmoothedPmf)> = BTreeMap::new();
        for (&ch, (pmf_a, pmf_b)) in &channels {
            let support: Vec<u64> = {
                let mut s: Vec<u64> = pmf_a.keys().chain(pmf_b.keys()).copied().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            support_excess += support.len().saturating_sub(1);
            let denom = nf + 0.5 * support.len() as f64;
            let smooth = |pmf: &Pmf| -> SmoothedPmf {
                support
                    .iter()
                    .map(|&c| (c, (pmf.get(&c).copied().unwrap_or(0) as f64 + 0.5) / denom))
                    .collect()
            };
            smoothed.insert(ch, (smooth(pmf_a), smooth(pmf_b)));
        }
        // Per-pair loss: symmetric log-likelihood ratio of each arm's
        // observed counts under its own pmf versus the other's, summed
        // over channels, scaled to per-value ε.
        let losses: Vec<f64> = (0..n)
            .map(|i| {
                let mut llr = 0.0;
                for (ch, (pa, pb)) in &smoothed {
                    let ca = self.counts_a[i].get(ch).copied().unwrap_or(0);
                    let cb = self.counts_b[i].get(ch).copied().unwrap_or(0);
                    // Counts absent from the support maps only happen for
                    // the all-zero channel a trace never touched; both
                    // pmfs then agree and the term is zero.
                    if let (Some(&pa_a), Some(&pb_a)) = (pa.get(&ca), pb.get(&ca)) {
                        llr += 0.5 * (pa_a / pb_a).ln();
                    }
                    if let (Some(&pb_b), Some(&pa_b)) = (pb.get(&cb), pa.get(&cb)) {
                        llr += 0.5 * (pb_b / pa_b).ln();
                    }
                }
                llr / self.distances[i]
            })
            .collect();
        let mean = losses.iter().sum::<f64>() / nf;
        // First-order plug-in bias of the empirical-llr estimate, scaled
        // by the mean inverse distance (reduces to 1/d when every pair
        // shares the constructor's distance).
        let inv_d = self.distances.iter().map(|d| 1.0 / d).sum::<f64>() / nf;
        let bias = support_excess as f64 * inv_d / (2.0 * nf);
        let eps_hat = (mean - bias).max(0.0);
        if n < 2 {
            return EpsilonEstimate {
                eps_hat,
                ci_lo: 0.0,
                ci_hi: f64::INFINITY,
                samples: n,
            };
        }
        let var = losses.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (nf - 1.0);
        let half = CONFIDENCE_Z * (var / nf).sqrt();
        EpsilonEstimate {
            eps_hat,
            ci_lo: (eps_hat - half).max(0.0),
            ci_hi: eps_hat + half,
            samples: n,
        }
    }
}

/// Collapses a canonical trace into per-operation path counts: the number
/// of root-level touches, one per tree-path access.
fn path_counts(canon: &[CanonicalAccess]) -> BTreeMap<Channel, u64> {
    let mut counts: BTreeMap<Channel, u64> = BTreeMap::new();
    for c in canon {
        if c.level == 0 {
            *counts.entry(op_key(c.op)).or_insert(0) += 1;
        }
    }
    counts
}

/// Number of feature values two request schedules differ in: the symmetric
/// difference of their requested-entry sets (≥ 1, so a degenerate pair
/// still yields a defined per-value ε).
pub fn value_distance(requests_a: &[u64], requests_b: &[u64]) -> usize {
    use std::collections::BTreeSet;
    let a: BTreeSet<u64> = requests_a.iter().copied().collect();
    let b: BTreeSet<u64> = requests_b.iter().copied().collect();
    a.symmetric_difference(&b).count().max(1)
}

/// The canonical distance-1 estimation input: `k` requests for `k`
/// distinct entries versus the same schedule with the last entry replaced
/// by a duplicate of its neighbour — `k_union` differs by exactly one,
/// the adjacent-database pair of the DP definition.
pub fn adjacent_inputs(k: usize) -> (Vec<u64>, Vec<u64>) {
    if k < 2 {
        return (vec![0], vec![0]);
    }
    let a: Vec<u64> = (0..k as u64).collect();
    let mut b = a.clone();
    b[k - 1] = b[k - 2];
    (a, b)
}

/// Everything one empirical estimation run measured.
#[derive(Clone, Debug)]
pub struct EmpiricalOutcome {
    /// The empirical-ε estimate.
    pub estimate: EpsilonEstimate,
    /// Pooled chi-squared frequency test over all replayed traces (the
    /// offline auditor's judgement on the same evidence).
    pub chi: ChiSquared,
    /// The per-value mechanism ε the configuration claims.
    pub mechanism_epsilon: f64,
    /// Twin value-distance the per-value scaling used.
    pub distance: usize,
    /// Whether the estimate confidently exceeds the claimed ε.
    pub alarm: bool,
}

/// Replays `samples` independent twin pairs (one round each, seeds derived
/// from `seed`) and estimates the empirical per-value ε of `config`'s
/// mechanism. Fresh servers per replay, as [`traced_run`] builds them.
/// Prefer [`adjacent_inputs`] (distance 1) for the request pair: large
/// distances dilute the per-value estimate and weaken the alarm.
///
/// # Errors
///
/// Round failures propagate unchanged.
pub fn estimate_twin_inputs(
    config: &FedoraConfig,
    seed: u64,
    requests_a: &[u64],
    requests_b: &[u64],
    samples: usize,
) -> Result<EmpiricalOutcome, FedoraError> {
    let ppb = config.geometry.pages_per_bucket(config.ssd.page_bytes);
    let distance = value_distance(requests_a, requests_b);
    let mut estimator = EpsilonEstimator::new(ppb, distance);
    let mut pooled_a: Vec<CanonicalAccess> = Vec::new();
    let mut pooled_b: Vec<CanonicalAccess> = Vec::new();
    for i in 0..samples {
        // Golden-ratio stride decorrelates per-sample seeds while keeping
        // the schedule reproducible from one root seed.
        let s = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let trace_a = traced_run(config, s, requests_a, 1)?;
        let trace_b = traced_run(config, s, requests_b, 1)?;
        pooled_a.extend(canonicalize(&trace_a, ppb));
        pooled_b.extend(canonicalize(&trace_b, ppb));
        estimator.observe_pair(&trace_a, &trace_b);
    }
    let estimate = estimator.estimate();
    let chi = chi_squared_two_sample(&pooled_a, &pooled_b);
    let mechanism_epsilon = config.privacy.mechanism.epsilon();
    Ok(EmpiricalOutcome {
        estimate,
        chi,
        mechanism_epsilon,
        distance,
        alarm: estimate.exceeds(mechanism_epsilon),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedora_storage::{AccessOp, AccessRecord};

    /// `n` read path-accesses: each touches root (page 0) plus two deeper
    /// pages, the shape a tree-path fetch leaves with one page per bucket.
    fn paths(n: usize) -> Vec<AccessRecord> {
        let mut t = Vec::new();
        for _ in 0..n {
            for page in [0u64, 1, 3] {
                t.push(AccessRecord {
                    op: AccessOp::Read,
                    page,
                });
            }
        }
        t
    }

    #[test]
    fn empty_estimator_is_inconclusive() {
        let est = EpsilonEstimator::new(1, 7).estimate();
        assert_eq!(est, EpsilonEstimate::empty());
        assert!(!est.exceeds(0.0));
        assert!(!est.exceeds(1.0));
    }

    #[test]
    fn identical_twins_estimate_zero() {
        let mut e = EpsilonEstimator::new(1, 7);
        for _ in 0..4 {
            let t = paths(5);
            e.observe_pair(&t, &t);
        }
        let est = e.estimate();
        assert_eq!(est.samples, 4);
        assert_eq!(est.eps_hat, 0.0);
        assert_eq!(est.ci_lo, 0.0);
        assert!(est.ci_hi < 1e-9, "{est:?}");
        assert!(!est.exceeds(0.0));
    }

    #[test]
    fn deterministic_length_leak_yields_confident_epsilon() {
        // Arm A always walks 8 paths, arm B always 1 — the naive-dedup
        // shape: disjoint supports, zero variance.
        let mut e = EpsilonEstimator::new(1, 1);
        for _ in 0..8 {
            e.observe_pair(&paths(8), &paths(1));
        }
        let est = e.estimate();
        // Disjoint supports measure ≈ ln(2n + 1) nats.
        assert!(est.eps_hat > 2.0, "{est:?}");
        assert!(est.exceeds(1.0), "{est:?}");
        assert!(est.ci_lo > 1.0, "{est:?}");
    }

    #[test]
    fn noisy_overlapping_counts_stay_below_budget() {
        // Both arms draw path counts from overlapping supports (an honest
        // DP mechanism's shape): the measured per-value loss stays small.
        let a_counts = [8, 9, 8, 10, 9, 8, 9, 10];
        let b_counts = [9, 8, 10, 8, 9, 10, 8, 9];
        let mut e = EpsilonEstimator::new(1, 1);
        for (&ca, &cb) in a_counts.iter().zip(&b_counts) {
            e.observe_pair(&paths(ca), &paths(cb));
        }
        let est = e.estimate();
        assert!(est.eps_hat < 0.5, "{est:?}");
        assert!(!est.exceeds(1.0), "{est:?}");
    }

    #[test]
    fn one_sample_has_unbounded_upper_ci() {
        let mut e = EpsilonEstimator::new(1, 1);
        e.observe_pair(&paths(1), &paths(4));
        let est = e.estimate();
        assert_eq!(est.samples, 1);
        assert_eq!(est.ci_hi, f64::INFINITY);
        // A single pair can never alarm, however lopsided.
        assert!(!est.exceeds(0.0));
    }

    #[test]
    fn distance_scales_per_value_epsilon() {
        let build = |d: usize| {
            let mut e = EpsilonEstimator::new(1, d);
            for _ in 0..3 {
                e.observe_pair(&paths(8), &paths(2));
            }
            e.estimate().eps_hat
        };
        let tight = build(1);
        let grouped = build(8);
        assert!(tight > 0.0 && grouped > 0.0);
        assert!((tight / grouped - 8.0).abs() < 0.5, "{tight} vs {grouped}");
    }

    #[test]
    fn scaled_pairs_match_constructor_distance() {
        // Feeding every pair through observe_pair_scaled with the same d
        // must reproduce observe_pair on an estimator constructed with d.
        let mut fixed = EpsilonEstimator::new(1, 4);
        let mut scaled = EpsilonEstimator::new(1, 1);
        for _ in 0..4 {
            fixed.observe_pair(&paths(8), &paths(2));
            scaled.observe_pair_scaled(&paths(8), &paths(2), 4);
        }
        assert_eq!(fixed.estimate(), scaled.estimate());
    }

    #[test]
    fn max_samples_evicts_oldest_pairs() {
        let mut e = EpsilonEstimator::new(1, 1);
        e.set_max_samples(3);
        // Old lopsided pairs…
        for _ in 0..5 {
            e.observe_pair(&paths(8), &paths(1));
        }
        assert_eq!(e.samples(), 3, "cap holds");
        // …age out entirely once three identical pairs displace them.
        for _ in 0..3 {
            let t = paths(5);
            e.observe_pair(&t, &t);
        }
        let est = e.estimate();
        assert_eq!(est.samples, 3);
        assert_eq!(est.eps_hat, 0.0, "window now sees only identical twins");
    }

    #[test]
    fn adjacent_inputs_are_distance_one() {
        let (a, b) = adjacent_inputs(8);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        assert_eq!(value_distance(&a, &b), 1);
        let (a1, b1) = adjacent_inputs(1);
        assert_eq!(value_distance(&a1, &b1), 1); // clamped floor
    }

    #[test]
    fn value_distance_is_symmetric_difference() {
        assert_eq!(value_distance(&[0, 1, 2, 3], &[0, 0, 0, 0]), 3);
        assert_eq!(value_distance(&[5], &[5]), 1); // clamped floor
        assert_eq!(value_distance(&[1, 2], &[3, 4]), 4);
    }
}
