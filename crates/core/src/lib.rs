//! FEDORA: practical federated recommendation model learning using ORAM
//! with controlled privacy.
//!
//! This crate is the paper's primary contribution: a federated-learning
//! server that lets users download/train/upload only the embedding-table
//! rows their private features touch, while an SSD-resident main ORAM
//! hides *which* rows and the ε-FDP mechanism bounds what leaks through
//! *how many* rows are touched.
//!
//! A round (Figure 4) runs:
//!
//! 1. **Union** — the controller obliviously unions the `K` user requests
//!    (chunked when `K` is large).
//! 2. **Choose `k`** — sampled from the ε-FDP distribution (Eq. 3).
//! 3. **Read phase** — `k` AO accesses move entries from the main ORAM
//!    (SSD, FL-friendly RAW ORAM: zero writes) into the buffer ORAM (DRAM).
//! 4. **Serve** — each of the `K` user requests is answered from the
//!    buffer ORAM.
//! 5. **Local training** — on user devices (the [`fedora_fl`] substrate).
//! 6. **Aggregate** — uploaded gradients accumulate in the buffer ORAM
//!    under a programmable `Pre` function.
//! 7. **Write phase** — `k` entries drain back, `Post` is applied, and
//!    the main ORAM absorbs them with one EO access per `A` insertions.
//!
//! Modules:
//!
//! * [`config`] — table presets (Small/Medium/Large from §6.1) and the
//!   full system configuration.
//! * [`server`] — the FEDORA controller pipeline over real simulated
//!   devices.
//! * [`baseline`] — `Path ORAM+`: the paper's baseline (SSD-friendly Path
//!   ORAM, one main-ORAM access per user request, perfect privacy).
//! * [`analytic`] — closed-form per-round I/O counts for paper-scale
//!   configurations (validated against the simulated pipeline by
//!   integration tests).
//! * [`cost`] — SSD lifetime (Fig. 7), hardware cost / power / energy
//!   (Fig. 9) from device statistics and the paper's constants.
//! * [`latency`] — the per-round latency model (Fig. 8) and the
//!   scratchpad ablation (Fig. 10).
//! * [`training`] — full FL training through the FEDORA pipeline
//!   (Table 1: access reduction, dummy/lost rates, final AUC).
//! * [`adversary`] — attack simulations: frequency analysis against
//!   unprotected lookups (wins), against ORAM traces (chance), and the
//!   optimal access-count distinguisher vs its DP bound.
//! * [`multi`] — multiple private tables (one pipeline per sparse
//!   feature), composing in parallel per feature value.
//! * [`audit`] — the obliviousness auditor: shadow-mode page-trace
//!   capture plus a twin-run harness checking the configured privacy
//!   claim against the physical access sequence.
//! * [`durable`] — crash recovery: the write-ahead round journal, the
//!   checkpoint format, and the crash-point vocabulary of the chaos
//!   harness.
//!
//! # Example
//!
//! ```
//! use fedora::config::{FedoraConfig, TableSpec};
//! use fedora::server::FedoraServer;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let config = FedoraConfig::for_testing(TableSpec::tiny(256), 64);
//! let mut server = FedoraServer::new(config, |_| vec![0u8; 32], &mut rng);
//! let report = server.begin_round(&[1, 5, 1, 9, 5, 5], &mut rng).unwrap();
//! assert_eq!(report.k_union, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub(crate) mod convert {
    //! Infallible little-endian field decoding for fixed-layout entries.
    //! Lengths are layout invariants; the panic is centralized here rather
    //! than scattered through fallible-looking `expect` calls.

    /// Decodes a little-endian `f32` from an exactly-4-byte field.
    #[allow(clippy::expect_used)]
    pub(crate) fn le_f32(bytes: &[u8]) -> f32 {
        f32::from_le_bytes(bytes.try_into().expect("4-byte field"))
    }
}

pub mod adversary;
pub mod analytic;
pub mod audit;
pub mod baseline;
pub mod config;
pub mod cost;
pub mod durable;
pub mod latency;
pub mod multi;
pub mod server;
pub mod training;

pub use config::{FedoraConfig, TableSpec};
pub use durable::{CrashPoint, FaultPlan};
pub use server::{FedoraServer, RoundReport};
