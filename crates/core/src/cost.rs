//! Hardware cost, power, and energy models (Fig. 9) plus SSD lifetime
//! bookkeeping (Fig. 7).
//!
//! Constants follow the paper's §6.5: hardware is replaced every five
//! years or when the SSD wears out, whichever is first; DRAM costs
//! $3.15/GB and draws 375 mW/GB continuously; the SSD costs $0.10/GB and
//! draws its rated 6.2 W while actively reading/writing.

use fedora_storage::profile::{DramProfile, SsdProfile, GB};

/// Deployment-level cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// SSD device constants.
    pub ssd: SsdProfile,
    /// DRAM device constants.
    pub dram: DramProfile,
    /// Hardware replacement horizon in years (the paper uses 5).
    pub horizon_years: f64,
    /// FL round period in seconds (the paper assumes 2 minutes).
    pub round_period_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ssd: SsdProfile::pm9a1_like(),
            dram: DramProfile::ddr5_like(),
            horizon_years: 5.0,
            round_period_s: 120.0,
        }
    }
}

/// The cost/power/energy summary of one design point.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemCost {
    /// Amortized hardware cost over the horizon, in dollars.
    pub hardware_usd: f64,
    /// Average power draw in watts.
    pub avg_power_w: f64,
    /// Energy per FL round in joules.
    pub energy_per_round_j: f64,
}

impl CostModel {
    /// Cost of an SSD-based design (FEDORA or Path ORAM+): the main ORAM
    /// occupies `ssd_bytes` of SSD; auxiliary structures occupy
    /// `dram_bytes` of DRAM; the SSD is busy `ssd_busy_s_per_round`
    /// seconds per round and wears out after `ssd_lifetime_months`.
    pub fn ssd_design(
        &self,
        ssd_bytes: u64,
        dram_bytes: u64,
        ssd_busy_s_per_round: f64,
        ssd_lifetime_months: f64,
    ) -> SystemCost {
        let horizon_months = self.horizon_years * 12.0;
        let replacement_period = ssd_lifetime_months.min(horizon_months).max(1e-6);
        let replacements = horizon_months / replacement_period;
        let ssd_cost = self.ssd.cost_per_gb * (ssd_bytes as f64 / GB) * replacements;
        let dram_cost = self.dram.cost_per_gb * (dram_bytes as f64 / GB);

        let duty = (ssd_busy_s_per_round / self.round_period_s).min(1.0);
        let ssd_power = self.ssd.active_power_w * duty;
        let dram_power = self.dram.static_power_w_per_gb * (dram_bytes as f64 / GB);
        let power = ssd_power + dram_power;

        SystemCost {
            hardware_usd: ssd_cost + dram_cost,
            avg_power_w: power,
            energy_per_round_j: power * self.round_period_s,
        }
    }

    /// Cost of the DRAM-based alternative: the entire main ORAM lives in
    /// DRAM (plus the same auxiliary DRAM), drawing static power
    /// continuously; DRAM is assumed to last the whole horizon.
    pub fn dram_design(&self, oram_bytes: u64, aux_dram_bytes: u64) -> SystemCost {
        let total = (oram_bytes + aux_dram_bytes) as f64 / GB;
        let power = self.dram.static_power_w_per_gb * total;
        SystemCost {
            hardware_usd: self.dram.cost_per_gb * total,
            avg_power_w: power,
            energy_per_round_j: power * self.round_period_s,
        }
    }

    /// Normalizes `design` by the DRAM-based `reference` (the Fig. 9
    /// y-axes are "% of the DRAM-based design").
    pub fn normalized(design: &SystemCost, reference: &SystemCost) -> SystemCost {
        SystemCost {
            hardware_usd: design.hardware_usd / reference.hardware_usd,
            avg_power_w: design.avg_power_w / reference.avg_power_w,
            energy_per_round_j: design.energy_per_round_j / reference.energy_per_round_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{fedora_round, lifetime_months, path_oram_plus_round, ssd_busy_ns};
    use crate::config::{FedoraConfig, TableSpec};

    #[test]
    fn ssd_is_cheaper_per_byte() {
        let m = CostModel::default();
        // Long-lived SSD design vs DRAM design for the same capacity.
        let ssd = m.ssd_design(64_000_000_000, 1_000_000_000, 1.0, 120.0);
        let dram = m.dram_design(64_000_000_000, 1_000_000_000);
        assert!(ssd.hardware_usd < dram.hardware_usd / 5.0);
    }

    #[test]
    fn short_lifetime_inflates_ssd_cost() {
        let m = CostModel::default();
        let long = m.ssd_design(1e12 as u64, 0, 1.0, 60.0);
        let short = m.ssd_design(1e12 as u64, 0, 1.0, 1.0);
        assert!(short.hardware_usd > 50.0 * long.hardware_usd);
    }

    #[test]
    fn fig9_shape_fedora_beats_dram_design() {
        // FEDORA (ε=1-ish counts) vs DRAM-based, Small table, 100K updates.
        let m = CostModel::default();
        let geo = TableSpec::small().geometry();
        let a = FedoraConfig::tuned_eviction_period(&geo);
        let k = 50_000; // ε=1 roughly halves the 100K accesses
        let counts = fedora_round(&geo, k, a, 4096);
        let life = lifetime_months(&m.ssd, &geo, &counts, m.round_period_s);
        let busy = ssd_busy_ns(&m.ssd, &counts) as f64 / 1e9;
        let tree = geo.tree_bytes(4096);
        let fed = m.ssd_design(tree, tree / 50, busy, life);
        let dram = m.dram_design(tree, tree / 50);
        let norm = CostModel::normalized(&fed, &dram);
        // Paper: 6–22× cheaper hardware, 1.9–23× less power/energy.
        assert!(norm.hardware_usd < 0.2, "hw {:.3}", norm.hardware_usd);
        assert!(norm.avg_power_w < 0.6, "power {:.3}", norm.avg_power_w);
        assert!(
            norm.energy_per_round_j < 0.6,
            "energy {:.3}",
            norm.energy_per_round_j
        );
    }

    #[test]
    fn fig9_shape_baseline_can_exceed_dram_cost() {
        // Path ORAM+ wears the SSD so fast that replacements erase the
        // price advantage (the >100% bars in Fig. 9, 1M updates).
        let m = CostModel::default();
        let geo = TableSpec::small().geometry();
        let counts = path_oram_plus_round(&geo, 1_000_000, 4096);
        let life = lifetime_months(&m.ssd, &geo, &counts, m.round_period_s);
        assert!(life < 1.0, "baseline lifetime {life} months");
        let busy = ssd_busy_ns(&m.ssd, &counts) as f64 / 1e9;
        let tree = geo.tree_bytes(4096);
        let base = m.ssd_design(tree, tree / 50, busy, life);
        let dram = m.dram_design(tree, tree / 50);
        let norm = CostModel::normalized(&base, &dram);
        assert!(
            norm.hardware_usd > 1.0,
            "baseline hw {:.3}",
            norm.hardware_usd
        );
    }

    #[test]
    fn duty_cycle_caps_at_one() {
        let m = CostModel::default();
        let c = m.ssd_design(1_000_000_000, 0, 1e9, 120.0);
        assert!(c.avg_power_w <= m.ssd.active_power_w + 1e-9);
    }
}
