//! Closed-form per-round I/O counts for paper-scale configurations.
//!
//! The paper's Small/Medium/Large tables (10 M–250 M entries) are too large
//! to simulate block-for-block on a laptop, but every SSD figure is a
//! *counting* argument: page reads/writes per round, scaled by device
//! constants. This module provides those counts in closed form; an
//! integration test validates them against the simulated pipeline at small
//! scale, which is what justifies using them at full scale.

use fedora_oram::TreeGeometry;
use fedora_storage::profile::SsdProfile;

/// Per-round I/O counts of a main-ORAM design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundCounts {
    /// Full path reads.
    pub path_reads: u64,
    /// Full path writes.
    pub path_writes: u64,
    /// SSD pages read.
    pub pages_read: u64,
    /// SSD pages written.
    pub pages_written: u64,
}

impl RoundCounts {
    /// Bytes written per round.
    pub fn bytes_written(&self, page_bytes: usize) -> u64 {
        self.pages_written * page_bytes as u64
    }

    /// Bytes read per round.
    pub fn bytes_read(&self, page_bytes: usize) -> u64 {
        self.pages_read * page_bytes as u64
    }
}

/// Pages along one path.
fn path_pages(geometry: &TreeGeometry, page_bytes: usize) -> u64 {
    geometry.num_levels() as u64 * geometry.pages_per_bucket(page_bytes)
}

/// FEDORA's per-round counts: `k` AO path reads (read phase, zero writes
/// thanks to the VTree) plus `⌈k/A⌉` EO accesses (write phase, each a path
/// read + path write).
pub fn fedora_round(
    geometry: &TreeGeometry,
    k_accesses: u64,
    eviction_period: u32,
    page_bytes: usize,
) -> RoundCounts {
    let pp = path_pages(geometry, page_bytes);
    let eos = k_accesses.div_ceil(eviction_period as u64);
    RoundCounts {
        path_reads: k_accesses + eos,
        path_writes: eos,
        pages_read: (k_accesses + eos) * pp,
        pages_written: eos * pp,
    }
}

/// Path ORAM+'s per-round counts: `K` accesses in the read phase plus `K`
/// in the write phase, each a full path read **and** write.
pub fn path_oram_plus_round(
    geometry: &TreeGeometry,
    k_requests: u64,
    page_bytes: usize,
) -> RoundCounts {
    let pp = path_pages(geometry, page_bytes);
    let accesses = 2 * k_requests;
    RoundCounts {
        path_reads: accesses,
        path_writes: accesses,
        pages_read: accesses * pp,
        pages_written: accesses * pp,
    }
}

/// Expected SSD lifetime in months when the SSD is exactly the size of the
/// ORAM tree (the paper's convention), rounds repeat every
/// `round_period_s`, and each round writes `counts.pages_written` pages.
///
/// Returns `f64::INFINITY` if nothing is written.
pub fn lifetime_months(
    profile: &SsdProfile,
    geometry: &TreeGeometry,
    counts: &RoundCounts,
    round_period_s: f64,
) -> f64 {
    let bytes_per_round = counts.bytes_written(profile.page_bytes) as f64;
    if bytes_per_round == 0.0 {
        return f64::INFINITY;
    }
    let capacity = geometry.tree_bytes(profile.page_bytes);
    let endurance = profile.endurance_bytes(capacity);
    let rounds = endurance / bytes_per_round;
    rounds * round_period_s / (30.44 * 24.0 * 3600.0)
}

/// SSD busy time per round in nanoseconds (batched path I/O model) — the
/// SSD component of the Fig. 8 latency.
pub fn ssd_busy_ns(profile: &SsdProfile, counts: &RoundCounts) -> u64 {
    // Each path op is issued as one batch; batching across paths is not
    // assumed (matches the simulated store's accounting).
    profile.batch_read_ns(counts.pages_read) + profile.batch_write_ns(counts.pages_written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableSpec;

    #[test]
    fn fedora_counts_shape() {
        let geo = TreeGeometry::new(10, 46, 64);
        let c = fedora_round(&geo, 92, 46, 4096);
        assert_eq!(c.path_writes, 2, "92 inserts / A=46");
        assert_eq!(c.path_reads, 92 + 2);
        assert_eq!(c.pages_read, 94 * 11);
        assert_eq!(c.pages_written, 2 * 11);
    }

    #[test]
    fn baseline_writes_much_more() {
        let geo = TableSpec::small().geometry();
        let a = crate::config::FedoraConfig::tuned_eviction_period(&geo);
        let fed = fedora_round(&geo, 10_000, a, 4096);
        let base = path_oram_plus_round(&geo, 10_000, 4096);
        let ratio = base.pages_written as f64 / fed.pages_written as f64;
        // EO amortization (A=46) × read-phase write elimination (2×) ≈ 92×,
        // matching the paper's orders-of-magnitude lifetime gap.
        assert!(ratio > 50.0, "write reduction only {ratio}×");
    }

    #[test]
    fn lifetime_ordering_matches_paper() {
        // Fig. 7 shape: Path ORAM+ lives days-to-weeks; FEDORA years.
        let geo = TableSpec::small().geometry();
        let profile = SsdProfile::pm9a1_like();
        let a = crate::config::FedoraConfig::tuned_eviction_period(&geo);
        let fed = lifetime_months(&profile, &geo, &fedora_round(&geo, 100_000, a, 4096), 120.0);
        let base = lifetime_months(
            &profile,
            &geo,
            &path_oram_plus_round(&geo, 100_000, 4096),
            120.0,
        );
        assert!(base < 2.0, "baseline {base} months should be dire");
        assert!(fed > 10.0 * base, "FEDORA {fed} vs baseline {base}");
    }

    #[test]
    fn zero_writes_is_infinite_lifetime() {
        let geo = TreeGeometry::new(5, 4, 64);
        let c = RoundCounts::default();
        assert!(lifetime_months(&SsdProfile::default(), &geo, &c, 120.0).is_infinite());
    }

    #[test]
    fn busy_time_positive() {
        let geo = TreeGeometry::new(10, 46, 64);
        let c = fedora_round(&geo, 1000, 46, 4096);
        assert!(ssd_busy_ns(&SsdProfile::default(), &c) > 0);
    }
}
