//! Zero-dependency scoped worker pool with **deterministic static
//! partitioning**.
//!
//! FEDORA's round pipeline has three embarrassingly parallel layers —
//! per-client local training, per-shard ORAM rounds, and per-bucket AEAD
//! on the path read/eviction paths — but parallelism must never perturb
//! obliviousness or reproducibility. This crate therefore provides the
//! *least clever* parallel substrate that still wins wall-clock time:
//!
//! * **Static partitioning by index.** Item `i` of `n` always runs on
//!   worker `i / ceil(n / workers)`; there is no queue and no
//!   data-dependent stealing, so the set of items a worker touches is a
//!   pure function of `(n, workers)` — never of the data. Timing leaks
//!   aside (out of model, as for the serial code), the work *placement*
//!   carries no secret.
//! * **Merge in index order.** Every `map_*` call returns results in
//!   item-index order regardless of completion order, so a caller that
//!   folds the results serially is bit-identical to the serial run.
//! * **`threads = 1` is exactly the serial code.** No threads are
//!   spawned, items run inline in index order on the caller's stack, and
//!   thread-local state (span stacks, scratch buffers) behaves as if the
//!   pool did not exist. Every baseline and test at the default
//!   configuration is untouched.
//!
//! Workers are scoped [`std::thread::scope`] threads: borrows of the
//! caller's stack flow into the closures without `'static` bounds or
//! reference counting, and a worker panic is re-raised on the caller
//! after all siblings finish (no detached threads, no poisoned state).

use std::panic::resume_unwind;
use std::thread;

/// A handle describing how much parallelism to use.
///
/// The pool is stateless — threads are spawned per call via
/// [`std::thread::scope`] and joined before the call returns — so a
/// `WorkerPool` is just a validated thread count that can be freely
/// copied into any layer of the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool running `threads` workers; `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: every call runs inline on the caller.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// Configured worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when calls run inline without spawning.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Static chunk length for `n` items: `ceil(n / threads)`.
    fn chunk_len(&self, n: usize) -> usize {
        n.div_ceil(self.threads.min(n).max(1))
    }

    /// Maps `f(index, &item)` over `items`, returning results in item
    /// order. Deterministic static partitioning: worker `w` owns the
    /// contiguous index range `[w·c, (w+1)·c)` with `c = ceil(n/threads)`.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers finish.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = self.chunk_len(items.len());
        run_chunked(items.chunks(chunk), chunk, |base, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(j, t)| f(base + j, t))
                .collect()
        })
    }

    /// Maps `f(index, &mut item)` over `items`, returning results in item
    /// order. Each worker owns a disjoint contiguous sub-slice, so the
    /// mutable borrows never alias.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers finish.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = self.chunk_len(items.len());
        run_chunked(items.chunks_mut(chunk), chunk, |base, slice| {
            slice
                .iter_mut()
                .enumerate()
                .map(|(j, t)| f(base + j, t))
                .collect()
        })
    }

    /// Runs `f(index)` for `0..n`, returning results in index order.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.is_serial() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = self.chunk_len(n);
        let starts: Vec<usize> = (0..n).step_by(chunk).collect();
        run_chunked(starts.iter().copied(), chunk, |_, start| {
            (start..(start + chunk).min(n)).map(&f).collect()
        })
    }
}

/// Spawns one scoped worker per chunk, collects each worker's result
/// vector, and flattens them in chunk (= index) order. `base` passed to
/// `f` is `chunk_index * chunk_len`, i.e. the first item index of the
/// chunk.
fn run_chunked<'env, C, I, R, F>(chunks: C, chunk_len: usize, f: F) -> Vec<R>
where
    C: Iterator<Item = I>,
    I: Send + 'env,
    R: Send,
    F: Fn(usize, I) -> Vec<R> + Sync,
{
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .enumerate()
            .map(|(c, chunk)| s.spawn(move || f(c * chunk_len, chunk)))
            .collect();
        let mut out = Vec::new();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(p) => panic = panic.or(Some(p)),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
    }

    #[test]
    fn map_preserves_index_order_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| i as u64 + v * 3)
            .collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let got = WorkerPool::new(threads).map(&items, |i, v| i as u64 + v * 3);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_partitions_disjointly() {
        for threads in [1, 2, 5, 16] {
            let mut items = vec![0u64; 64];
            let sums = WorkerPool::new(threads).map_mut(&mut items, |i, v| {
                *v = i as u64;
                *v
            });
            assert_eq!(items, (0..64).collect::<Vec<u64>>(), "threads={threads}");
            assert_eq!(sums, items, "threads={threads}");
        }
    }

    #[test]
    fn map_indices_covers_exact_range() {
        for (threads, n) in [(1, 10), (4, 10), (4, 3), (3, 0), (7, 7)] {
            let got = WorkerPool::new(threads).map_indices(n, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn partitioning_is_static_not_data_dependent() {
        // Worker assignment is a pure function of (n, threads): item i is
        // handled in chunk i / ceil(n/threads), regardless of payload.
        let pool = WorkerPool::new(4);
        let items = vec![(); 10];
        let chunk = 10usize.div_ceil(4);
        let ids = pool.map(&items, |i, ()| i / chunk);
        assert_eq!(ids, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn serial_pool_spawns_nothing() {
        // Inline execution: the closure observes the caller's thread.
        let caller = std::thread::current().id();
        let same =
            WorkerPool::serial().map(&[1, 2, 3], |_, _| std::thread::current().id() == caller);
        assert_eq!(same, vec![true, true, true]);
    }

    #[test]
    fn parallel_pool_actually_fans_out() {
        let seen = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map(&[(); 32], |_, ()| {
            seen.fetch_add(1, Ordering::Relaxed);
            while seen.load(Ordering::Relaxed) < 4 {
                std::thread::yield_now();
            }
        });
        assert!(seen.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(4).map_indices(8, |i| {
                if i == 5 {
                    panic!("worker boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
