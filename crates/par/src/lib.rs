//! Zero-dependency scoped worker pool with **deterministic static
//! partitioning**.
//!
//! FEDORA's round pipeline has three embarrassingly parallel layers —
//! per-client local training, per-shard ORAM rounds, and per-bucket AEAD
//! on the path read/eviction paths — but parallelism must never perturb
//! obliviousness or reproducibility. This crate therefore provides the
//! *least clever* parallel substrate that still wins wall-clock time:
//!
//! * **Static partitioning by index.** Item `i` of `n` always runs on
//!   worker `i / ceil(n / workers)`; there is no queue and no
//!   data-dependent stealing, so the set of items a worker touches is a
//!   pure function of `(n, workers)` — never of the data. Timing leaks
//!   aside (out of model, as for the serial code), the work *placement*
//!   carries no secret.
//! * **Merge in index order.** Every `map_*` call returns results in
//!   item-index order regardless of completion order, so a caller that
//!   folds the results serially is bit-identical to the serial run.
//! * **`threads = 1` is exactly the serial code.** No threads are
//!   spawned, items run inline in index order on the caller's stack, and
//!   thread-local state (span stacks, scratch buffers) behaves as if the
//!   pool did not exist. Every baseline and test at the default
//!   configuration is untouched.
//!
//! Workers are scoped [`std::thread::scope`] threads: borrows of the
//! caller's stack flow into the closures without `'static` bounds or
//! reference counting, and a worker panic is re-raised on the caller
//! after all siblings finish (no detached threads, no poisoned state).

use std::panic::resume_unwind;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// A handle describing how much parallelism to use.
///
/// The pool is stateless — threads are spawned per call via
/// [`std::thread::scope`] and joined before the call returns — so a
/// `WorkerPool` is just a validated thread count that can be freely
/// copied into any layer of the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool running `threads` workers; `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: every call runs inline on the caller.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// Configured worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when calls run inline without spawning.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Static chunk length for `n` items: `ceil(n / threads)`.
    fn chunk_len(&self, n: usize) -> usize {
        n.div_ceil(self.threads.min(n).max(1))
    }

    /// Maps `f(index, &item)` over `items`, returning results in item
    /// order. Deterministic static partitioning: worker `w` owns the
    /// contiguous index range `[w·c, (w+1)·c)` with `c = ceil(n/threads)`.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers finish.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = self.chunk_len(items.len());
        run_chunked(items.chunks(chunk), chunk, |base, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(j, t)| f(base + j, t))
                .collect()
        })
    }

    /// Maps `f(index, &mut item)` over `items`, returning results in item
    /// order. Each worker owns a disjoint contiguous sub-slice, so the
    /// mutable borrows never alias.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers finish.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = self.chunk_len(items.len());
        run_chunked(items.chunks_mut(chunk), chunk, |base, slice| {
            slice
                .iter_mut()
                .enumerate()
                .map(|(j, t)| f(base + j, t))
                .collect()
        })
    }

    /// Runs `f(index)` for `0..n`, returning results in index order.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.is_serial() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = self.chunk_len(n);
        let starts: Vec<usize> = (0..n).step_by(chunk).collect();
        run_chunked(starts.iter().copied(), chunk, |_, start| {
            (start..(start + chunk).min(n)).map(&f).collect()
        })
    }
}

/// A dedicated look-ahead worker alongside the scoped [`WorkerPool`]:
/// one long-lived thread that runs **one job at a time** off the caller's
/// critical path.
///
/// Built for round pipelining: while round *N* serves and aggregates, the
/// worker computes round *N+1*'s deterministic, RNG-free preamble (the
/// per-chunk oblivious unions). The single-slot discipline — submit one
/// job, then take (or discard) its result before submitting the next —
/// keeps the protocol trivially ordered: there is never more than one
/// speculative computation in flight, so nothing can complete out of
/// order.
///
/// Jobs must be *pure* with respect to protocol state: they receive owned
/// inputs and return an owned result. Anything stateful (RNG draws,
/// counters, device access) stays on the caller's thread.
pub struct PrefetchWorker<T: Send + 'static> {
    tx: Option<mpsc::Sender<Job<T>>>,
    rx: mpsc::Receiver<(T, u64)>,
    handle: Option<thread::JoinHandle<()>>,
    in_flight: bool,
}

type Job<T> = Box<dyn FnOnce() -> T + Send>;

impl<T: Send + 'static> PrefetchWorker<T> {
    /// Spawns the worker thread (named `fedora-par-prefetch`).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[allow(clippy::expect_used)] // thread spawn failure is unrecoverable
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (tx, job_rx) = mpsc::channel::<Job<T>>();
        let (done_tx, rx) = mpsc::channel::<(T, u64)>();
        let handle = thread::Builder::new()
            .name("fedora-par-prefetch".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let started = Instant::now();
                    let out = job();
                    let worked_ns = started.elapsed().as_nanos() as u64;
                    if done_tx.send((out, worked_ns)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn prefetch worker");
        PrefetchWorker {
            tx: Some(tx),
            rx,
            handle: Some(handle),
            in_flight: false,
        }
    }

    /// Submits a job. The single-slot discipline is enforced: a result
    /// still pending from an earlier submit is drained (and dropped)
    /// first, blocking until that job finishes.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the worker thread.
    pub fn submit<F: FnOnce() -> T + Send + 'static>(&mut self, job: F) {
        self.discard();
        if let Some(tx) = &self.tx {
            if tx.send(Box::new(job)).is_ok() {
                self.in_flight = true;
            } else {
                self.join_and_reraise();
            }
        }
    }

    /// True when a submitted job's result has not been taken yet.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Blocks for the in-flight job and returns `(result, worked_ns)`,
    /// where `worked_ns` is the wall time the worker spent computing —
    /// the caller subtracts its own blocked time to credit genuine
    /// overlap. Returns `None` when nothing is in flight.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the worker thread.
    pub fn take(&mut self) -> Option<(T, u64)> {
        if !self.in_flight {
            return None;
        }
        self.in_flight = false;
        match self.rx.recv() {
            Ok(done) => Some(done),
            Err(_) => {
                self.join_and_reraise();
                None
            }
        }
    }

    /// Drains and drops the in-flight result, if any (blocking until the
    /// job finishes — a speculative computation is never left running
    /// against state the caller is about to change).
    pub fn discard(&mut self) {
        let _ = self.take();
    }

    /// Joins the dead worker thread and re-raises its panic payload.
    fn join_and_reraise(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
        panic!("prefetch worker exited unexpectedly");
    }
}

impl<T: Send + 'static> Drop for PrefetchWorker<T> {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; drain any pending
        // result so the worker's send cannot block, then join quietly
        // (panics during drop would abort).
        self.tx = None;
        if self.in_flight {
            let _ = self.rx.recv();
            self.in_flight = false;
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for PrefetchWorker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchWorker")
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

/// Spawns one scoped worker per chunk, collects each worker's result
/// vector, and flattens them in chunk (= index) order. `base` passed to
/// `f` is `chunk_index * chunk_len`, i.e. the first item index of the
/// chunk.
fn run_chunked<'env, C, I, R, F>(chunks: C, chunk_len: usize, f: F) -> Vec<R>
where
    C: Iterator<Item = I>,
    I: Send + 'env,
    R: Send,
    F: Fn(usize, I) -> Vec<R> + Sync,
{
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .enumerate()
            .map(|(c, chunk)| s.spawn(move || f(c * chunk_len, chunk)))
            .collect();
        let mut out = Vec::new();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(p) => panic = panic.or(Some(p)),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
    }

    #[test]
    fn map_preserves_index_order_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| i as u64 + v * 3)
            .collect();
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let got = WorkerPool::new(threads).map(&items, |i, v| i as u64 + v * 3);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_partitions_disjointly() {
        for threads in [1, 2, 5, 16] {
            let mut items = vec![0u64; 64];
            let sums = WorkerPool::new(threads).map_mut(&mut items, |i, v| {
                *v = i as u64;
                *v
            });
            assert_eq!(items, (0..64).collect::<Vec<u64>>(), "threads={threads}");
            assert_eq!(sums, items, "threads={threads}");
        }
    }

    #[test]
    fn map_indices_covers_exact_range() {
        for (threads, n) in [(1, 10), (4, 10), (4, 3), (3, 0), (7, 7)] {
            let got = WorkerPool::new(threads).map_indices(n, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn partitioning_is_static_not_data_dependent() {
        // Worker assignment is a pure function of (n, threads): item i is
        // handled in chunk i / ceil(n/threads), regardless of payload.
        let pool = WorkerPool::new(4);
        let items = vec![(); 10];
        let chunk = 10usize.div_ceil(4);
        let ids = pool.map(&items, |i, ()| i / chunk);
        assert_eq!(ids, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn serial_pool_spawns_nothing() {
        // Inline execution: the closure observes the caller's thread.
        let caller = std::thread::current().id();
        let same =
            WorkerPool::serial().map(&[1, 2, 3], |_, _| std::thread::current().id() == caller);
        assert_eq!(same, vec![true, true, true]);
    }

    #[test]
    fn parallel_pool_actually_fans_out() {
        let seen = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map(&[(); 32], |_, ()| {
            seen.fetch_add(1, Ordering::Relaxed);
            while seen.load(Ordering::Relaxed) < 4 {
                std::thread::yield_now();
            }
        });
        assert!(seen.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn prefetch_runs_off_caller_thread_and_returns_in_order() {
        let caller = std::thread::current().id();
        let mut worker: PrefetchWorker<(bool, u64)> = PrefetchWorker::new();
        assert!(!worker.is_in_flight());
        assert!(worker.take().is_none());
        for i in 0..3u64 {
            worker.submit(move || (std::thread::current().id() == caller, i * 7));
            assert!(worker.is_in_flight());
            let ((on_caller, value), worked_ns) = worker.take().unwrap();
            assert!(!on_caller, "job must run on the worker thread");
            assert_eq!(value, i * 7);
            let _ = worked_ns; // measured, possibly 0 on coarse clocks
        }
    }

    #[test]
    fn prefetch_submit_drains_stale_result() {
        let mut worker: PrefetchWorker<u64> = PrefetchWorker::new();
        worker.submit(|| 1);
        // Submitting again without taking drops the stale result.
        worker.submit(|| 2);
        assert_eq!(worker.take().unwrap().0, 2);
    }

    #[test]
    fn prefetch_discard_clears_slot() {
        let mut worker: PrefetchWorker<u64> = PrefetchWorker::new();
        worker.submit(|| 41);
        worker.discard();
        assert!(!worker.is_in_flight());
        worker.submit(|| 42);
        assert_eq!(worker.take().unwrap().0, 42);
    }

    #[test]
    fn prefetch_worker_panic_reraises_on_take() {
        let result = std::panic::catch_unwind(|| {
            let mut worker: PrefetchWorker<u64> = PrefetchWorker::new();
            worker.submit(|| panic!("prefetch boom"));
            worker.take()
        });
        assert!(result.is_err());
    }

    #[test]
    fn prefetch_drop_with_in_flight_job_is_clean() {
        let mut worker: PrefetchWorker<u64> = PrefetchWorker::new();
        worker.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            9
        });
        drop(worker); // must not hang or panic
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(4).map_indices(8, |i| {
                if i == 5 {
                    panic!("worker boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
