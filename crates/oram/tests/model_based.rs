//! Model-based property tests: each ORAM is driven with arbitrary
//! operation sequences and compared against a plain `HashMap` model. Any
//! divergence between the oblivious structure and the trivial model is a
//! correctness bug.

use std::collections::HashMap;

use fedora_crypto::aead::Key;
use fedora_oram::buffer::BufferOram;
use fedora_oram::path_oram::PathOram;
use fedora_oram::raw::{RawOram, RawOramConfig};
use fedora_oram::ring::{RingOram, RingOramConfig};
use fedora_oram::store::DramBucketStore;
use fedora_oram::TreeGeometry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BLOCKS: u64 = 64;
const BLOCK_BYTES: usize = 8;

/// An abstract operation against a key-value ORAM.
#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64, u8),
    Dummy,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..BLOCKS).prop_map(Op::Read),
        ((0..BLOCKS), any::<u8>()).prop_map(|(id, v)| Op::Write(id, v)),
        Just(Op::Dummy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn path_oram_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..120), seed: u64) {
        let geo = TreeGeometry::for_blocks(BLOCKS, BLOCK_BYTES, 4);
        let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([1; 32]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oram = PathOram::new(store, BLOCKS, &mut rng);
        let mut model: HashMap<u64, u8> = HashMap::new();

        for op in ops {
            match op {
                Op::Read(id) => {
                    let got = oram.read(id, &mut rng).expect("read");
                    let want = model.get(&id).copied().unwrap_or(0);
                    prop_assert_eq!(got[0], want, "block {} diverged", id);
                }
                Op::Write(id, v) => {
                    oram.write(id, vec![v; BLOCK_BYTES], &mut rng).expect("write");
                    model.insert(id, v);
                }
                Op::Dummy => oram.dummy_access(&mut rng).expect("dummy"),
            }
        }
        // Full final audit.
        for id in 0..BLOCKS {
            let got = oram.read(id, &mut rng).expect("read");
            prop_assert_eq!(got[0], model.get(&id).copied().unwrap_or(0));
        }
    }

    #[test]
    fn raw_oram_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..120), seed: u64, a in 1u32..12) {
        let geo = TreeGeometry::for_blocks(BLOCKS, BLOCK_BYTES, 8);
        let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([2; 32]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oram = RawOram::new(
            store,
            BLOCKS,
            RawOramConfig { eviction_period: a },
            |_| vec![0u8; BLOCK_BYTES],
            &mut rng,
        );
        let mut model: HashMap<u64, u8> = HashMap::new();

        for op in ops {
            match op {
                Op::Read(id) => {
                    let got = oram.access(id, None, &mut rng).expect("access");
                    prop_assert_eq!(got[0], model.get(&id).copied().unwrap_or(0));
                }
                Op::Write(id, v) => {
                    oram.access(id, Some(vec![v; BLOCK_BYTES]), &mut rng).expect("access");
                    model.insert(id, v);
                }
                Op::Dummy => oram.dummy_fetch(&mut rng).expect("dummy"),
            }
        }
        // Counters remain derivable from the root EO counter.
        prop_assert!(oram.counters_match_schedule());
        // Final audit via the FEDORA phase pair.
        for id in 0..BLOCKS {
            let blk = oram.fetch(id, &mut rng).expect("fetch");
            prop_assert_eq!(blk.payload[0], model.get(&id).copied().unwrap_or(0));
            oram.insert(id, blk.payload, &mut rng).expect("insert");
        }
    }

    #[test]
    fn ring_oram_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..80), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oram = RingOram::new(
            BLOCKS,
            BLOCK_BYTES,
            RingOramConfig::classic(),
            Key::from_bytes([4; 32]),
            |_| vec![0u8; BLOCK_BYTES],
            &mut rng,
        );
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Read(id) => {
                    let got = oram.access(id, None, &mut rng).expect("access");
                    prop_assert_eq!(got[0], model.get(&id).copied().unwrap_or(0));
                }
                Op::Write(id, v) => {
                    oram.access(id, Some(vec![v; BLOCK_BYTES]), &mut rng).expect("access");
                    model.insert(id, v);
                }
                Op::Dummy => {} // Ring has no separate dummy op here.
            }
        }
        for id in 0..BLOCKS {
            let got = oram.access(id, None, &mut rng).expect("access");
            prop_assert_eq!(got[0], model.get(&id).copied().unwrap_or(0));
        }
    }

    #[test]
    fn buffer_oram_matches_model(
        loads in proptest::collection::vec((0u64..1000, any::<u8>()), 1..24),
        aggs in proptest::collection::vec((0usize..24, -10.0f32..10.0), 0..48),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut buf = BufferOram::new(32, 8, Key::from_bytes([3; 32]), &mut rng);
        // Model: id -> (entry byte, grad sum, weight).
        let mut model: Vec<(u64, u8, f32, f64)> = Vec::new();
        for (id, v) in &loads {
            if model.iter().any(|(mid, ..)| mid == id) {
                continue; // protocol loads each unique id once
            }
            buf.load_entry(*id, &[*v; 8], &mut rng).expect("capacity 32 >= 24");
            model.push((*id, *v, 0.0, 0.0));
        }
        for (slot, g) in &aggs {
            if model.is_empty() {
                break;
            }
            let idx = *slot % model.len();
            let (id, _, grad, weight) = &mut model[idx];
            buf.aggregate(*id, &[*g, 0.0], 1.0, &mut rng).expect("loaded");
            *grad += *g;
            *weight += 1.0;
        }
        let drained = buf.drain_round(&mut rng).expect("drain");
        prop_assert_eq!(drained.entries.len(), model.len());
        for want in &model {
            let got = drained.entries.iter().find(|e| e.id == want.0).expect("present");
            prop_assert_eq!(got.entry[0], want.1);
            prop_assert!((got.gradient[0] - want.2).abs() < 1e-4);
            prop_assert!((got.weight - want.3).abs() < 1e-4);
        }
    }
}
