//! ORAM substrate for FEDORA: Path ORAM, RAW ORAM, VTree and buffer ORAM.
//!
//! FEDORA's main ORAM protects the embedding table on the SSD; a smaller
//! buffer ORAM in DRAM holds each round's working set. This crate provides
//! every tree-ORAM variant the paper uses or compares against:
//!
//! * [`geometry`] — tree shape: depth, bucket size `Z`, block size, heap
//!   node indexing, bucket ↔ SSD-page layout.
//! * [`block`] / [`bucket`] — fixed-size data blocks, slot metadata, and
//!   bucket (de)serialization.
//! * [`position`] — the position map (block → leaf), held in DRAM.
//! * [`stash`] — the bounded stash with high-water tracking.
//! * [`store`] — encrypted bucket storage over [`fedora_storage::SimSsd`]
//!   (page-granular) or [`fedora_storage::SimDram`].
//! * [`path_oram`] — classic Path ORAM (Stefanov et al.), the building
//!   block of the `Path ORAM+` baseline.
//! * [`raw`] — RAW ORAM (Fletcher et al.): access-only (AO) reads and
//!   eviction-only (EO) writes with eviction period `A`, extended with
//!   FEDORA's FL-friendly split (§4.4 Opt. 1: read phase with **no** EO,
//!   write phase with **no** AO) and the VTree (Opt. 2: AO accesses are
//!   SSD-write-free).
//! * [`vtree`] — the DRAM-resident mirror of the main ORAM's valid flags.
//! * [`buffer`] — the buffer ORAM: blocks twice the main-ORAM size whose
//!   second half accumulates gradients (plus a sample-count slot), serving
//!   user requests and implementing Eq. 4's Σ Pre(Δθ).
//!
//! Every ORAM records a physical access *trace* (the leaf/path identifiers
//! an adversary would observe); property tests use the trace to check
//! obliviousness claims.
//!
//! # Example
//!
//! ```
//! use fedora_oram::geometry::TreeGeometry;
//! use fedora_oram::path_oram::PathOram;
//! use fedora_oram::store::DramBucketStore;
//! use fedora_crypto::aead::Key;
//! use rand::SeedableRng;
//!
//! let geo = TreeGeometry::for_blocks(64, 16, 4);
//! let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([0; 32]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut oram = PathOram::new(store, 64, &mut rng);
//! oram.write(7, vec![0xAB; 16], &mut rng).unwrap();
//! assert_eq!(oram.read(7, &mut rng).unwrap(), vec![0xAB; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod block;
pub mod bucket;
pub mod buffer;
pub mod geometry;
pub mod path_oram;
pub mod position;
pub mod raw;
pub mod recursive;
pub mod ring;
pub mod stash;
pub mod store;
pub mod vtree;

pub(crate) mod convert {
    //! Infallible little-endian field decoding for fixed-layout
    //! serialization. Lengths are invariants of the layouts, so a mismatch
    //! is a programming bug, not runtime input — the panic is centralized
    //! here instead of scattering `expect` calls through fallible paths.

    /// Decodes a little-endian `u64` from an exactly-8-byte field.
    #[allow(clippy::expect_used)]
    pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
        u64::from_le_bytes(bytes.try_into().expect("8-byte field"))
    }

    /// Decodes a little-endian `f32` from an exactly-4-byte field.
    #[allow(clippy::expect_used)]
    pub(crate) fn le_f32(bytes: &[u8]) -> f32 {
        f32::from_le_bytes(bytes.try_into().expect("4-byte field"))
    }
}

pub use block::Block;
pub use bucket::Bucket;
pub use buffer::BufferOram;
pub use geometry::TreeGeometry;
pub use path_oram::PathOram;
pub use raw::{RawOram, RawOramConfig};
pub use vtree::VTree;

/// Errors surfaced by ORAM operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OramError {
    /// A block id beyond the ORAM's capacity was requested.
    BlockOutOfRange {
        /// The requested block id.
        id: u64,
        /// Number of blocks the ORAM holds.
        capacity: u64,
    },
    /// A payload of the wrong size was supplied.
    BadPayloadLength {
        /// Supplied length.
        got: usize,
        /// Required block size.
        want: usize,
    },
    /// The backing device failed (programming error in sizing).
    Device,
    /// Decryption/authentication of a bucket failed and retries (if any)
    /// were exhausted; the failure is classified and locates the bucket.
    Integrity {
        /// What kind of violation was detected.
        kind: fedora_crypto::IntegrityError,
        /// Heap index of the offending bucket.
        node: u64,
    },
    /// The requested block was not found where the invariant says it must
    /// be (tree or stash) — indicates corruption or a protocol bug.
    MissingBlock {
        /// The block id that could not be found.
        id: u64,
    },
}

impl core::fmt::Display for OramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OramError::BlockOutOfRange { id, capacity } => {
                write!(f, "block {id} out of range (capacity {capacity})")
            }
            OramError::BadPayloadLength { got, want } => {
                write!(f, "payload length {got} does not match block size {want}")
            }
            OramError::Device => f.write_str("backing device error"),
            OramError::Integrity { kind, node } => {
                write!(f, "bucket {node} failed authentication: {kind}")
            }
            OramError::MissingBlock { id } => {
                write!(f, "block {id} missing from assigned path and stash")
            }
        }
    }
}

impl std::error::Error for OramError {}
