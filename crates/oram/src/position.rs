//! The position map: block id → assigned leaf.
//!
//! FEDORA keeps the position map in (encrypted, untrusted) DRAM. The map's
//! *content* is secret; its access pattern during controller operation is
//! made data-independent either by the scratchpad-resident working set or by
//! oblivious scans (the §6.6 ablation). Here the map is a dense array with
//! access counting; the latency model charges for its accesses, and an
//! optional oblivious mode performs real whole-array scans for small maps.

use fedora_oblivious::scan::{oblivious_read_u64, oblivious_write_u64};
use fedora_storage::{ByteReader, ByteWriter, CodecError};
use rand::Rng;

/// Dense position map for `n` blocks.
#[derive(Clone, Debug)]
pub struct PositionMap {
    leaves: Vec<u64>,
    accesses: u64,
    oblivious: bool,
}

impl PositionMap {
    /// Creates a map of `num_blocks` entries with uniformly random leaves
    /// in `[0, num_leaves)`.
    pub fn random<R: Rng>(num_blocks: u64, num_leaves: u64, rng: &mut R) -> Self {
        PositionMap {
            leaves: (0..num_blocks)
                .map(|_| rng.gen_range(0..num_leaves))
                .collect(),
            accesses: 0,
            oblivious: false,
        }
    }

    /// Switches the map into oblivious-scan mode: every get/set touches the
    /// entire array. Only sensible for small maps (used by tests and the
    /// no-scratchpad ablation).
    pub fn set_oblivious(&mut self, oblivious: bool) {
        self.oblivious = oblivious;
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Number of get/set operations performed (for the latency model).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Size of the map in bytes (8 bytes per entry).
    pub fn size_bytes(&self) -> u64 {
        self.leaves.len() as u64 * 8
    }

    /// Looks up the leaf of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (callers validate ids at the API
    /// boundary; an out-of-range id here is a bug).
    pub fn get(&mut self, id: u64) -> u64 {
        self.accesses += 1;
        if self.oblivious {
            oblivious_read_u64(&self.leaves, id)
        } else {
            self.leaves[id as usize]
        }
    }

    /// Updates the leaf of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range in non-oblivious mode.
    pub fn set(&mut self, id: u64, leaf: u64) {
        self.accesses += 1;
        if self.oblivious {
            oblivious_write_u64(&mut self.leaves, id, leaf);
        } else {
            self.leaves[id as usize] = leaf;
        }
    }

    /// Looks up and atomically remaps `id` to `new_leaf`, returning the old
    /// leaf — the canonical ORAM access-start operation.
    pub fn get_and_remap(&mut self, id: u64, new_leaf: u64) -> u64 {
        let old = self.get(id);
        self.set(id, new_leaf);
        old
    }

    /// Serializes the map (assignments, access counter, mode) into `w` for
    /// checkpointing.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64s(&self.leaves);
        w.put_u64(self.accesses);
        w.put_bool(self.oblivious);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a map of the same size.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an entry-count mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let leaves = r.get_u64s()?;
        if leaves.len() != self.leaves.len() {
            return Err(CodecError::Invalid("position-map size mismatch"));
        }
        self.leaves = leaves;
        self.accesses = r.get_u64()?;
        self.oblivious = r.get_bool()?;
        Ok(())
    }
}

/// A position map held **encrypted** in DRAM using the paper's §5.2
/// group-based scheme ([`fedora_crypto::flat::FlatGroupStore`]): 64
/// positions per 512-byte group, counters chained up to one on-chip root
/// counter. Every access decrypts/verifies the group's counter chain and
/// (on `set`) re-encrypts it — the faithful (and slower) alternative to
/// the plaintext-mirror [`PositionMap`], used where the DRAM itself is
/// untrusted.
pub struct EncryptedPositionMap {
    store: fedora_crypto::flat::FlatGroupStore,
    dram: fedora_storage::SimDram,
    num_positions: u64,
    accesses: u64,
}

impl EncryptedPositionMap {
    /// Positions per encryption group.
    pub const PER_GROUP: u64 = (fedora_crypto::flat::GROUP_BYTES / 8) as u64;

    /// Creates a map of `num_positions` entries with uniformly random
    /// leaves in `[0, num_leaves)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_positions == 0`.
    #[allow(clippy::expect_used)] // store sized for `groups` two lines up
    pub fn random<R: Rng>(
        num_positions: u64,
        num_leaves: u64,
        key: fedora_crypto::aead::Key,
        rng: &mut R,
    ) -> Self {
        assert!(num_positions > 0, "need at least one position");
        let groups = num_positions.div_ceil(Self::PER_GROUP) as usize;
        let mut store = fedora_crypto::flat::FlatGroupStore::new(key, groups);
        for g in 0..groups {
            let mut plain = vec![0u8; fedora_crypto::flat::GROUP_BYTES];
            for slot in 0..Self::PER_GROUP {
                let idx = g as u64 * Self::PER_GROUP + slot;
                if idx >= num_positions {
                    break;
                }
                let leaf = rng.gen_range(0..num_leaves);
                let at = (slot * 8) as usize;
                plain[at..at + 8].copy_from_slice(&leaf.to_le_bytes());
            }
            store.write_group(g, &plain).expect("provisioned");
        }
        let dram = fedora_storage::SimDram::new(
            fedora_storage::DramProfile::default(),
            store.total_bytes() as u64,
        );
        EncryptedPositionMap {
            store,
            dram,
            num_positions,
            accesses: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.num_positions
    }

    /// Whether the map is empty (never true; see `random`).
    pub fn is_empty(&self) -> bool {
        self.num_positions == 0
    }

    /// Accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Off-chip bytes the encrypted map occupies (ciphertext + counter
    /// groups + tags).
    pub fn stored_bytes(&self) -> u64 {
        self.store.total_bytes() as u64
    }

    /// DRAM traffic statistics.
    pub fn device_stats(&self) -> fedora_storage::DeviceStats {
        *self.dram.stats()
    }

    fn charge(&mut self, write: bool) {
        // One group transits the bus per operation.
        let bytes = fedora_crypto::flat::GROUP_BYTES as u64 + 16;
        let mut buf = vec![0u8; bytes as usize];
        let _ = self.dram.read(0, &mut buf);
        if write {
            let _ = self.dram.write(0, &buf);
        }
    }

    /// Looks up the leaf of `id`, verifying the group's counter chain.
    ///
    /// # Errors
    ///
    /// [`fedora_crypto::flat::FlatStoreError`] on tamper/replay.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&mut self, id: u64) -> Result<u64, fedora_crypto::flat::FlatStoreError> {
        assert!(id < self.num_positions, "id {id} out of range");
        self.accesses += 1;
        self.charge(false);
        let group = (id / Self::PER_GROUP) as usize;
        let plain = self.store.read_group(group)?;
        let at = ((id % Self::PER_GROUP) * 8) as usize;
        Ok(crate::convert::le_u64(&plain[at..at + 8]))
    }

    /// Updates the leaf of `id` (read-modify-write of its group).
    ///
    /// # Errors
    ///
    /// [`fedora_crypto::flat::FlatStoreError`] on tamper/replay.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: u64, leaf: u64) -> Result<(), fedora_crypto::flat::FlatStoreError> {
        assert!(id < self.num_positions, "id {id} out of range");
        self.accesses += 1;
        self.charge(true);
        let group = (id / Self::PER_GROUP) as usize;
        let mut plain = self.store.read_group(group)?;
        let at = ((id % Self::PER_GROUP) * 8) as usize;
        plain[at..at + 8].copy_from_slice(&leaf.to_le_bytes());
        self.store.write_group(group, &plain)
    }

    /// Test/attack hook into the underlying store.
    pub fn store_mut(&mut self) -> &mut fedora_crypto::flat::FlatGroupStore {
        &mut self.store
    }
}

impl core::fmt::Debug for EncryptedPositionMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EncryptedPositionMap")
            .field("positions", &self.num_positions)
            .field("stored_bytes", &self.stored_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_init_in_range() {
        let mut r = rng();
        let mut pm = PositionMap::random(100, 16, &mut r);
        for id in 0..100 {
            assert!(pm.get(id) < 16);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = rng();
        let mut pm = PositionMap::random(10, 8, &mut r);
        pm.set(3, 7);
        assert_eq!(pm.get(3), 7);
    }

    #[test]
    fn get_and_remap_returns_old() {
        let mut r = rng();
        let mut pm = PositionMap::random(10, 8, &mut r);
        pm.set(0, 2);
        assert_eq!(pm.get_and_remap(0, 5), 2);
        assert_eq!(pm.get(0), 5);
    }

    #[test]
    fn oblivious_mode_equivalent() {
        let mut r = rng();
        let mut pm = PositionMap::random(32, 16, &mut r);
        let baseline: Vec<u64> = (0..32).map(|i| pm.get(i)).collect();
        pm.set_oblivious(true);
        for (i, &exp) in baseline.iter().enumerate() {
            assert_eq!(pm.get(i as u64), exp);
        }
        pm.set(9, 3);
        assert_eq!(pm.get(9), 3);
    }

    #[test]
    fn access_counting() {
        let mut r = rng();
        let mut pm = PositionMap::random(4, 4, &mut r);
        let before = pm.accesses();
        pm.get(0);
        pm.set(1, 0);
        pm.get_and_remap(2, 1);
        assert_eq!(pm.accesses() - before, 4);
    }

    #[test]
    fn encrypted_map_roundtrip() {
        let mut r = rng();
        let key = fedora_crypto::aead::Key::from_bytes([0x21; 32]);
        let mut pm = EncryptedPositionMap::random(300, 64, key, &mut r);
        for id in 0..300 {
            assert!(pm.get(id).unwrap() < 64);
        }
        pm.set(5, 63).unwrap();
        pm.set(299, 1).unwrap();
        assert_eq!(pm.get(5).unwrap(), 63);
        assert_eq!(pm.get(299).unwrap(), 1);
        assert_eq!(pm.accesses(), 300 + 4);
        assert!(pm.device_stats().bytes_read > 0);
    }

    #[test]
    fn encrypted_map_detects_replay() {
        let mut r = rng();
        let key = fedora_crypto::aead::Key::from_bytes([0x22; 32]);
        let mut pm = EncryptedPositionMap::random(128, 16, key, &mut r);
        pm.set(0, 7).unwrap();
        let old = pm.store_mut().snapshot(0, 0);
        pm.set(0, 9).unwrap();
        pm.store_mut().tamper(0, 0, old);
        assert!(pm.get(0).is_err(), "rolled-back group must fail");
    }

    #[test]
    fn encrypted_map_overhead_small() {
        let mut r = rng();
        let key = fedora_crypto::aead::Key::from_bytes([0x23; 32]);
        let pm = EncryptedPositionMap::random(64 * 64, 16, key, &mut r);
        let raw = 64 * 64 * 8;
        let overhead = pm.stored_bytes() as f64 / raw as f64 - 1.0;
        assert!(overhead < 0.1, "overhead {overhead:.3}");
    }

    #[test]
    fn size_bytes() {
        let mut r = rng();
        let pm = PositionMap::random(1000, 4, &mut r);
        assert_eq!(pm.size_bytes(), 8000);
    }
}
