//! Classic Path ORAM (Stefanov et al., CCS'13).
//!
//! Every access reads one whole path into the stash, serves the block,
//! remaps it to a fresh random leaf, and greedily writes the path back.
//! This is the engine inside the paper's `Path ORAM+` baseline; FEDORA's
//! main ORAM uses the RAW variant in [`crate::raw`] instead.

use fedora_storage::{ByteReader, ByteWriter, CodecError};
use rand::Rng;

use crate::block::Block;
use crate::bucket::Bucket;
use crate::position::PositionMap;
use crate::stash::Stash;
use crate::store::BucketStore;
use crate::OramError;

/// A Path ORAM over any [`BucketStore`].
#[derive(Clone, Debug)]
pub struct PathOram<S: BucketStore> {
    store: S,
    position: PositionMap,
    stash: Stash,
    num_blocks: u64,
    trace: Vec<u64>,
    accesses: u64,
}

impl<S: BucketStore> PathOram<S> {
    /// Creates a Path ORAM holding `num_blocks` logical blocks, all
    /// initially zero-filled (blocks materialize in the tree as they are
    /// first evicted).
    ///
    /// # Panics
    ///
    /// Panics if the tree would be over half full — the provisioning
    /// bound that keeps stash occupancy small.
    pub fn new<R: Rng>(store: S, num_blocks: u64, rng: &mut R) -> Self {
        let geo = store.geometry();
        assert!(
            2 * num_blocks <= geo.capacity_blocks(),
            "{num_blocks} blocks over capacity {} breaks the ≤50% provisioning bound",
            geo.capacity_blocks()
        );
        let position = PositionMap::random(num_blocks, geo.num_leaves(), rng);
        PathOram {
            store,
            position,
            stash: Stash::new(),
            num_blocks,
            trace: Vec::new(),
            accesses: 0,
        }
    }

    /// Number of logical blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store (for stats resets).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Highest stash occupancy observed.
    pub fn stash_high_water(&self) -> usize {
        self.stash.high_water()
    }

    /// Number of accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Takes the recorded physical trace (the leaf of each path touched) —
    /// exactly what an adversary observing the untrusted memory sees.
    pub fn take_trace(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.trace)
    }

    /// The current leaf assignment of `id`. Crate-internal: the recursive
    /// position-map construction records where its level blocks landed.
    pub(crate) fn position_of(&mut self, id: u64) -> u64 {
        self.position.get(id)
    }

    /// Serializes the controller state — position map, stash, access
    /// counter, and pending trace — into `w`. The backing store is encoded
    /// separately by the caller (it owns the device image).
    pub fn encode_controller_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.num_blocks);
        self.position.encode_state(w);
        self.stash.encode_state(w);
        w.put_u64(self.accesses);
        w.put_u64s(&self.trace);
    }

    /// Restores controller state captured by
    /// [`encode_controller_state`](Self::encode_controller_state) onto an
    /// ORAM of the same shape.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a shape mismatch.
    pub fn decode_controller_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.get_u64()? != self.num_blocks {
            return Err(CodecError::Invalid("path-oram block-count mismatch"));
        }
        self.position.decode_state(r)?;
        self.stash.decode_state(r)?;
        self.accesses = r.get_u64()?;
        self.trace = r.get_u64s()?;
        Ok(())
    }

    fn check_id(&self, id: u64) -> Result<(), OramError> {
        if id >= self.num_blocks {
            return Err(OramError::BlockOutOfRange {
                id,
                capacity: self.num_blocks,
            });
        }
        Ok(())
    }

    /// The core access: reads the block's path, optionally overwrites the
    /// payload, remaps the block, and evicts the path back.
    fn access<R: Rng>(
        &mut self,
        id: u64,
        new_payload: Option<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<u8>, OramError> {
        self.check_id(id)?;
        let geo = self.store.geometry();
        if let Some(p) = &new_payload {
            if p.len() != geo.block_bytes() {
                return Err(OramError::BadPayloadLength {
                    got: p.len(),
                    want: geo.block_bytes(),
                });
            }
        }
        let new_leaf = rng.gen_range(0..geo.num_leaves());
        let leaf = self.position.get_and_remap(id, new_leaf);
        self.trace.push(leaf);
        self.accesses += 1;

        // ② Bring the whole path into the stash.
        let mut path = self.store.read_path(leaf)?;
        for bucket in &mut path {
            for block in bucket.drain_valid() {
                self.stash.push(block);
            }
        }

        // ③ Serve the block (materializing it on first touch).
        let old_payload;
        if let Some(block) = self.stash.get_mut(id) {
            old_payload = block.payload.clone();
            block.leaf = new_leaf;
            if let Some(p) = new_payload {
                block.payload = p;
            }
        } else {
            old_payload = vec![0u8; geo.block_bytes()];
            let payload = new_payload.unwrap_or_else(|| old_payload.clone());
            self.stash.push(Block::new(id, new_leaf, payload));
        }

        // ⑤ Greedy write-back, deepest level first.
        let mut out_path = vec![Bucket::empty(geo.z(), geo.block_bytes()); path.len()];
        for level in (0..=geo.depth()).rev() {
            let candidates = self
                .stash
                .drain_for_bucket(leaf, level, geo.depth(), geo.z());
            let bucket = &mut out_path[level as usize];
            for block in candidates {
                let inserted = bucket.try_insert(block);
                debug_assert!(inserted, "drain_for_bucket respects capacity");
            }
        }
        self.store.write_path(leaf, &out_path)?;
        Ok(old_payload)
    }

    /// Reads block `id`.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for bad ids; store errors propagate.
    pub fn read<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<Vec<u8>, OramError> {
        self.access(id, None, rng)
    }

    /// Writes block `id`, returning the previous payload.
    ///
    /// # Errors
    ///
    /// [`OramError::BadPayloadLength`] when `payload` is the wrong size;
    /// [`OramError::BlockOutOfRange`] for bad ids.
    pub fn write<R: Rng>(
        &mut self,
        id: u64,
        payload: Vec<u8>,
        rng: &mut R,
    ) -> Result<Vec<u8>, OramError> {
        self.access(id, Some(payload), rng)
    }

    /// Performs a dummy access: reads and rewrites a uniformly random path
    /// without touching any block — indistinguishable from a real access.
    pub fn dummy_access<R: Rng>(&mut self, rng: &mut R) -> Result<(), OramError> {
        let geo = self.store.geometry();
        let leaf = rng.gen_range(0..geo.num_leaves());
        self.trace.push(leaf);
        self.accesses += 1;
        let mut path = self.store.read_path(leaf)?;
        for bucket in &mut path {
            for block in bucket.drain_valid() {
                self.stash.push(block);
            }
        }
        let mut out_path = vec![Bucket::empty(geo.z(), geo.block_bytes()); path.len()];
        for level in (0..=geo.depth()).rev() {
            for block in self
                .stash
                .drain_for_bucket(leaf, level, geo.depth(), geo.z())
            {
                let inserted = out_path[level as usize].try_insert(block);
                debug_assert!(inserted, "drain_for_bucket respects capacity");
            }
        }
        self.store.write_path(leaf, &out_path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TreeGeometry;
    use crate::store::DramBucketStore;
    use fedora_crypto::aead::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oram(blocks: u64, seed: u64) -> (PathOram<DramBucketStore>, StdRng) {
        let geo = TreeGeometry::for_blocks(blocks, 16, 4);
        let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([1; 32]));
        let mut rng = StdRng::seed_from_u64(seed);
        let o = PathOram::new(store, blocks, &mut rng);
        (o, rng)
    }

    #[test]
    fn fresh_blocks_read_zero() {
        let (mut o, mut rng) = oram(16, 1);
        for id in 0..16 {
            assert_eq!(o.read(id, &mut rng).unwrap(), vec![0u8; 16]);
        }
    }

    #[test]
    fn write_then_read() {
        let (mut o, mut rng) = oram(32, 2);
        for id in 0..32u64 {
            o.write(id, vec![id as u8; 16], &mut rng).unwrap();
        }
        for id in 0..32u64 {
            assert_eq!(o.read(id, &mut rng).unwrap(), vec![id as u8; 16]);
        }
    }

    #[test]
    fn write_returns_old_value() {
        let (mut o, mut rng) = oram(8, 3);
        o.write(3, vec![1u8; 16], &mut rng).unwrap();
        let old = o.write(3, vec![2u8; 16], &mut rng).unwrap();
        assert_eq!(old, vec![1u8; 16]);
        assert_eq!(o.read(3, &mut rng).unwrap(), vec![2u8; 16]);
    }

    #[test]
    fn interleaved_workload_consistent() {
        let (mut o, mut rng) = oram(64, 4);
        let mut model = vec![vec![0u8; 16]; 64];
        for step in 0..500u64 {
            let id = rng.gen_range(0..64u64);
            if step % 3 == 0 {
                let val = vec![(step % 251) as u8; 16];
                o.write(id, val.clone(), &mut rng).unwrap();
                model[id as usize] = val;
            } else {
                assert_eq!(
                    o.read(id, &mut rng).unwrap(),
                    model[id as usize],
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn stash_stays_bounded() {
        let (mut o, mut rng) = oram(64, 5);
        for _ in 0..1000 {
            let id = rng.gen_range(0..64u64);
            o.read(id, &mut rng).unwrap();
        }
        // The classic bound: stash stays small (well under N).
        assert!(
            o.stash_high_water() < 30,
            "stash high water {} too large",
            o.stash_high_water()
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut o, mut rng) = oram(8, 6);
        assert_eq!(
            o.read(8, &mut rng),
            Err(OramError::BlockOutOfRange { id: 8, capacity: 8 })
        );
    }

    #[test]
    fn wrong_payload_len_rejected() {
        let (mut o, mut rng) = oram(8, 7);
        assert_eq!(
            o.write(0, vec![0u8; 5], &mut rng),
            Err(OramError::BadPayloadLength { got: 5, want: 16 })
        );
    }

    #[test]
    fn trace_records_one_leaf_per_access() {
        let (mut o, mut rng) = oram(16, 8);
        for id in 0..10 {
            o.read(id, &mut rng).unwrap();
        }
        o.dummy_access(&mut rng).unwrap();
        let trace = o.take_trace();
        assert_eq!(trace.len(), 11);
        assert!(o.take_trace().is_empty());
    }

    #[test]
    fn dummy_access_preserves_data() {
        let (mut o, mut rng) = oram(16, 9);
        o.write(5, vec![9u8; 16], &mut rng).unwrap();
        for _ in 0..50 {
            o.dummy_access(&mut rng).unwrap();
        }
        assert_eq!(o.read(5, &mut rng).unwrap(), vec![9u8; 16]);
    }

    /// The headline obliviousness property: the physical trace is uniform
    /// random leaves regardless of which blocks are accessed. We check that
    /// two very different logical workloads produce traces whose leaf
    /// histograms are statistically indistinguishable from uniform.
    #[test]
    fn trace_is_uniform_over_leaves() {
        let n_accesses = 4000usize;
        // Workload A: hammer one block. Workload B: scan all blocks.
        let (mut oa, mut rng_a) = oram(64, 10);
        for _ in 0..n_accesses {
            oa.read(7, &mut rng_a).unwrap();
        }
        let (mut ob, mut rng_b) = oram(64, 11);
        for i in 0..n_accesses {
            ob.read((i % 64) as u64, &mut rng_b).unwrap();
        }
        let leaves = oa.store().geometry().num_leaves() as usize;
        let histo = |trace: &[u64]| {
            let mut h = vec![0f64; leaves];
            for &l in trace {
                h[l as usize] += 1.0;
            }
            h
        };
        let ha = histo(&oa.take_trace());
        let hb = histo(&ob.take_trace());
        let expected = n_accesses as f64 / leaves as f64;
        // Chi-square-ish sanity: every leaf within 5 sigma of uniform.
        let sigma = expected.sqrt();
        for l in 0..leaves {
            assert!(
                (ha[l] - expected).abs() < 5.0 * sigma,
                "A leaf {l}: {}",
                ha[l]
            );
            assert!(
                (hb[l] - expected).abs() < 5.0 * sigma,
                "B leaf {l}: {}",
                hb[l]
            );
        }
    }
}
