//! Ring ORAM (Ren et al., USENIX Sec'15) — the design whose `A`/`Z`
//! analysis FEDORA's eviction-period tuning builds on.
//!
//! Ring ORAM reads **one slot per bucket** instead of whole buckets: each
//! bucket holds `Z` real slots plus `S` dummies under a per-bucket random
//! permutation, and an access touches the target block's slot (or a fresh
//! dummy) in every bucket on the path. Combined with the AO/EO split
//! (evictions every `A` accesses, reverse-lexicographic order) the online
//! bandwidth drops from `O((L+1)·Z)` blocks to `O(L+1)`.
//!
//! **Why FEDORA does not use it for the main ORAM:** the SSD is a block
//! device — reading one 64-byte slot still transfers a whole 4-KiB page,
//! so Ring ORAM's bandwidth advantage evaporates (see
//! [`RingOram::slots_read`] vs the page math in the tests). It remains the
//! right design for byte-addressable (DRAM) tiers, and this implementation
//! runs over [`SimDram`] accordingly.

use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce, TAG_LEN};
use fedora_crypto::counter::{EvictionSchedule, RootCounter};
use fedora_storage::profile::DramProfile;
use fedora_storage::stats::DeviceStats;
use fedora_storage::SimDram;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::block::Block;
use crate::geometry::TreeGeometry;
use crate::position::PositionMap;
use crate::stash::Stash;
use crate::OramError;

/// Ring ORAM parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingOramConfig {
    /// Real slots per bucket.
    pub z: usize,
    /// Dummy slots per bucket (a bucket supports `S` reads between
    /// reshuffles).
    pub s: usize,
    /// Eviction period (one EO per `A` accesses).
    pub a: u32,
}

impl RingOramConfig {
    /// The parameters from the Ring ORAM paper's running example.
    pub fn classic() -> Self {
        RingOramConfig { z: 4, s: 6, a: 3 }
    }
}

/// Per-bucket controller metadata (held in the trusted area; small).
#[derive(Clone, Debug)]
struct BucketMeta {
    /// `slot_of[i]`: physical slot of logical entry `i` (0..Z are real
    /// slot homes, Z..Z+S dummies).
    slot_of: Vec<usize>,
    /// Logical entry id stored in each real home (None = vacant).
    ids: Vec<Option<u64>>,
    /// Physical slots already consumed since the last reshuffle.
    consumed: Vec<bool>,
    /// Reads since last reshuffle.
    reads: u32,
    /// Write counter for slot encryption nonces.
    version: u64,
}

/// A Ring ORAM over simulated DRAM.
pub struct RingOram {
    geometry: TreeGeometry,
    config: RingOramConfig,
    aead: ChaCha20Poly1305,
    dram: SimDram,
    meta: Vec<BucketMeta>,
    position: PositionMap,
    stash: Stash,
    schedule: EvictionSchedule,
    eo_counter: RootCounter,
    accesses_since_eo: u32,
    num_blocks: u64,
    slots_read: u64,
    reshuffles: u64,
    slot_stride: u64,
}

impl RingOram {
    /// Creates a Ring ORAM holding `num_blocks` blocks initialized by
    /// `init`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters or over-provisioning (the same
    /// ≤50 % bound as the other ORAMs).
    pub fn new<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        num_blocks: u64,
        block_bytes: usize,
        config: RingOramConfig,
        key: Key,
        mut init: F,
        rng: &mut R,
    ) -> Self {
        assert!(
            config.z > 0 && config.s > 0 && config.a > 0,
            "degenerate config"
        );
        let geometry = TreeGeometry::for_blocks(num_blocks, block_bytes, config.z);
        assert!(
            2 * num_blocks <= geometry.capacity_blocks(),
            "over-provisioned"
        );
        let slots_per_bucket = (config.z + config.s) as u64;
        // Slot ciphertext: id (8) + payload + tag.
        let slot_stride = (8 + block_bytes + TAG_LEN) as u64;
        let dram = SimDram::new(
            DramProfile::default(),
            geometry.num_nodes() * slots_per_bucket * slot_stride,
        );
        let position = PositionMap::random(num_blocks, geometry.num_leaves(), rng);

        let mut oram = RingOram {
            geometry,
            config,
            aead: ChaCha20Poly1305::new(&key),
            dram,
            meta: Vec::new(),
            position,
            stash: Stash::new(),
            schedule: EvictionSchedule::new(geometry.depth()),
            eo_counter: RootCounter::new(),
            accesses_since_eo: 0,
            num_blocks,
            slots_read: 0,
            reshuffles: 0,
            slot_stride,
        };

        // Bulk-load: greedy deepest placement, then write every bucket.
        let mut contents: Vec<Vec<Block>> =
            (0..oram.geometry.num_nodes()).map(|_| Vec::new()).collect();
        let mut pos = oram.position.clone();
        for id in 0..num_blocks {
            let leaf = pos.get(id);
            let payload = init(id);
            assert_eq!(payload.len(), block_bytes, "init payload size");
            let block = Block::new(id, leaf, payload);
            let mut placed = false;
            for &node in oram.geometry.path_nodes(leaf).iter().rev() {
                if contents[node as usize].len() < config.z {
                    contents[node as usize].push(block.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                oram.stash.push(block);
            }
        }
        for node in 0..oram.geometry.num_nodes() {
            let blocks = contents[node as usize].clone();
            let meta = oram.write_bucket(node, &blocks, 0, rng);
            oram.meta.push(meta);
        }
        oram.dram.reset_stats();
        oram
    }

    /// Tree geometry.
    pub fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    /// Total slots read (the online-bandwidth metric).
    pub fn slots_read(&self) -> u64 {
        self.slots_read
    }

    /// Early reshuffles performed.
    pub fn reshuffles(&self) -> u64 {
        self.reshuffles
    }

    /// DRAM statistics.
    pub fn device_stats(&self) -> DeviceStats {
        *self.dram.stats()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Stash high-water mark.
    pub fn stash_high_water(&self) -> usize {
        self.stash.high_water()
    }

    fn slot_offset(&self, node: u64, phys: usize) -> u64 {
        (node * (self.config.z + self.config.s) as u64 + phys as u64) * self.slot_stride
    }

    fn write_slot<R: Rng>(
        &mut self,
        node: u64,
        phys: usize,
        version: u64,
        id: u64,
        payload: &[u8],
        _rng: &mut R,
    ) {
        let mut plain = Vec::with_capacity(8 + payload.len());
        plain.extend_from_slice(&id.to_le_bytes());
        plain.extend_from_slice(payload);
        let nonce = Nonce::from_u64_pair(node as u32, version * 64 + phys as u64);
        let aad = [node.to_le_bytes(), (phys as u64).to_le_bytes()].concat();
        let ct = self.aead.encrypt(&nonce, &plain, &aad);
        #[allow(clippy::expect_used)] // DRAM sized for every slot at construction
        self.dram
            .write(self.slot_offset(node, phys), &ct)
            .expect("provisioned");
    }

    fn read_slot(
        &mut self,
        node: u64,
        phys: usize,
        version: u64,
    ) -> Result<(u64, Vec<u8>), OramError> {
        let mut ct = vec![0u8; self.slot_stride as usize];
        self.dram
            .read(self.slot_offset(node, phys), &mut ct)
            .map_err(|_| OramError::Device)?;
        let nonce = Nonce::from_u64_pair(node as u32, version * 64 + phys as u64);
        let aad = [node.to_le_bytes(), (phys as u64).to_le_bytes()].concat();
        let plain = self
            .aead
            .decrypt(&nonce, &ct, &aad)
            .map_err(|_| OramError::Integrity {
                kind: fedora_crypto::IntegrityError::Corruption,
                node,
            })?;
        let id = crate::convert::le_u64(&plain[..8]);
        Ok((id, plain[8..].to_vec()))
    }

    /// (Re)writes a bucket: fresh permutation, fresh dummies, version+1.
    fn write_bucket<R: Rng>(
        &mut self,
        node: u64,
        blocks: &[Block],
        version: u64,
        rng: &mut R,
    ) -> BucketMeta {
        let total = self.config.z + self.config.s;
        let mut perm: Vec<usize> = (0..total).collect();
        perm.shuffle(rng);
        let block_bytes = self.geometry.block_bytes();
        let mut ids = vec![None; self.config.z];
        for (i, b) in blocks.iter().enumerate().take(self.config.z) {
            ids[i] = Some(b.id);
        }
        // Write real homes, then dummies.
        let slot_plan: Vec<(usize, Option<&Block>)> = perm
            .iter()
            .enumerate()
            .map(|(logical, &phys)| {
                (
                    phys,
                    blocks.get(logical).filter(|_| logical < self.config.z),
                )
            })
            .collect();
        for (phys, block) in slot_plan {
            match block {
                Some(b) => {
                    let payload = b.payload.clone();
                    self.write_slot(node, phys, version, b.id, &payload, rng);
                }
                None => {
                    let zeros = vec![0u8; block_bytes];
                    self.write_slot(node, phys, version, u64::MAX, &zeros, rng);
                }
            }
        }
        BucketMeta {
            slot_of: perm,
            ids,
            consumed: vec![false; total],
            reads: 0,
            version,
        }
    }

    /// Reshuffles a bucket: reads its surviving real blocks and rewrites
    /// it fresh.
    fn reshuffle<R: Rng>(&mut self, node: u64, rng: &mut R) -> Result<(), OramError> {
        self.reshuffles += 1;
        let meta = self.meta[node as usize].clone();
        let mut survivors = Vec::new();
        for home in 0..self.config.z {
            if let Some(id) = meta.ids[home] {
                let phys = meta.slot_of[home];
                let (slot_id, payload) = self.read_slot(node, phys, meta.version)?;
                self.slots_read += 1;
                debug_assert_eq!(slot_id, id, "metadata/state divergence");
                // Leaf is tracked in the position map; stored leaf in the
                // Block is refreshed on the fly.
                let leaf = self.position.get(id);
                survivors.push(Block::new(id, leaf, payload));
            }
        }
        let new_meta = self.write_bucket(node, &survivors, meta.version + 1, rng);
        self.meta[node as usize] = new_meta;
        Ok(())
    }

    /// One Ring ORAM access: read one slot per bucket on the path, serve
    /// (and optionally overwrite) the block, remap it into the stash, and
    /// run the scheduled EO every `A` accesses.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] / [`OramError::BadPayloadLength`] on
    /// bad input; device errors propagate.
    #[allow(clippy::expect_used)] // permutation invariants: slot_of is a bijection
    pub fn access<R: Rng>(
        &mut self,
        id: u64,
        new_payload: Option<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<u8>, OramError> {
        if id >= self.num_blocks {
            return Err(OramError::BlockOutOfRange {
                id,
                capacity: self.num_blocks,
            });
        }
        if let Some(p) = &new_payload {
            if p.len() != self.geometry.block_bytes() {
                return Err(OramError::BadPayloadLength {
                    got: p.len(),
                    want: self.geometry.block_bytes(),
                });
            }
        }
        let new_leaf = rng.gen_range(0..self.geometry.num_leaves());
        let leaf = self.position.get_and_remap(id, new_leaf);

        let mut found: Option<Block> = self.stash.take(id);
        let nodes = self.geometry.path_nodes(leaf);
        for &node in &nodes {
            let meta = &self.meta[node as usize];
            // Locate the block's home in this bucket, if any and unread.
            let home = meta
                .ids
                .iter()
                .position(|slot| *slot == Some(id))
                .filter(|&h| !meta.consumed[meta.slot_of[h]] && found.is_none());
            let phys = match home {
                Some(h) => meta.slot_of[h],
                None => {
                    // Any unconsumed dummy (or unconsumed vacant home).
                    let total = self.config.z + self.config.s;
                    let candidates: Vec<usize> = (0..total)
                        .filter(|&p| !meta.consumed[p])
                        .filter(|&p| {
                            // Never burn a live block's slot as a dummy.
                            let logical = meta.slot_of.iter().position(|&x| x == p).expect("perm");
                            logical >= self.config.z || meta.ids[logical].is_none()
                        })
                        .collect();
                    match candidates.as_slice() {
                        [] => usize::MAX, // bucket exhausted: reshuffle below
                        c => *c.choose(rng).expect("non-empty"),
                    }
                }
            };
            if phys == usize::MAX {
                self.reshuffle(node, rng)?;
                // Retry the dummy read on the fresh bucket.
                let meta = &self.meta[node as usize];
                let total = self.config.z + self.config.s;
                let p = (0..total)
                    .find(|&p| {
                        let logical = meta.slot_of.iter().position(|&x| x == p).expect("perm");
                        logical >= self.config.z || meta.ids[logical].is_none()
                    })
                    .expect("fresh bucket has dummies");
                let version = self.meta[node as usize].version;
                let _ = self.read_slot(node, p, version)?;
                self.slots_read += 1;
                let m = &mut self.meta[node as usize];
                m.consumed[p] = true;
                m.reads += 1;
                continue;
            }
            let version = self.meta[node as usize].version;
            let (slot_id, payload) = self.read_slot(node, phys, version)?;
            self.slots_read += 1;
            let meta = &mut self.meta[node as usize];
            meta.consumed[phys] = true;
            meta.reads += 1;
            if let Some(h) = home {
                debug_assert_eq!(slot_id, id);
                meta.ids[h] = None;
                found = Some(Block::new(id, new_leaf, payload));
            }
            // Early reshuffle when the bucket runs out of read budget.
            if self.meta[node as usize].reads >= self.config.s as u32 {
                self.reshuffle(node, rng)?;
            }
        }

        let mut block = found.ok_or(OramError::MissingBlock { id })?;
        let old = block.payload.clone();
        if let Some(p) = new_payload {
            block.payload = p;
        }
        block.leaf = new_leaf;
        self.stash.push(block);

        self.accesses_since_eo += 1;
        if self.accesses_since_eo >= self.config.a {
            self.accesses_since_eo = 0;
            self.evict(rng)?;
        }
        Ok(old)
    }

    /// EO access: evict the stash along the next reverse-lexicographic
    /// path (full-bucket read + rewrite per level).
    fn evict<R: Rng>(&mut self, rng: &mut R) -> Result<(), OramError> {
        let leaf = self.schedule.leaf_for(self.eo_counter.advance());
        let nodes = self.geometry.path_nodes(leaf);
        // Pull every surviving block on the path into the stash.
        for &node in &nodes {
            let meta = self.meta[node as usize].clone();
            for home in 0..self.config.z {
                if let Some(id) = meta.ids[home] {
                    let (slot_id, payload) =
                        self.read_slot(node, meta.slot_of[home], meta.version)?;
                    self.slots_read += 1;
                    debug_assert_eq!(slot_id, id);
                    let blk_leaf = self.position.get(id);
                    self.stash.push(Block::new(id, blk_leaf, payload));
                }
            }
        }
        // Greedy refill, deepest first.
        for level in (0..=self.geometry.depth()).rev() {
            let node = nodes[level as usize];
            let version = self.meta[node as usize].version;
            let blocks =
                self.stash
                    .drain_for_bucket(leaf, level, self.geometry.depth(), self.config.z);
            let new_meta = self.write_bucket(node, &blocks, version + 1, rng);
            self.meta[node as usize] = new_meta;
        }
        Ok(())
    }
}

impl core::fmt::Debug for RingOram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingOram")
            .field("blocks", &self.num_blocks)
            .field("config", &self.config)
            .field("slots_read", &self.slots_read)
            .field("reshuffles", &self.reshuffles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(blocks: u64, seed: u64) -> (RingOram, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let oram = RingOram::new(
            blocks,
            16,
            RingOramConfig { z: 4, s: 6, a: 3 },
            Key::from_bytes([12; 32]),
            |id| vec![(id % 251) as u8; 16],
            &mut rng,
        );
        (oram, rng)
    }

    #[test]
    fn read_after_init() {
        let (mut o, mut rng) = ring(64, 1);
        for id in 0..64 {
            let got = o.access(id, None, &mut rng).unwrap();
            assert_eq!(got, vec![(id % 251) as u8; 16], "block {id}");
        }
    }

    #[test]
    fn write_then_read() {
        let (mut o, mut rng) = ring(64, 2);
        for id in (0..64).step_by(3) {
            o.access(id, Some(vec![0xAB; 16]), &mut rng).unwrap();
        }
        for id in (0..64).step_by(3) {
            assert_eq!(o.access(id, None, &mut rng).unwrap(), vec![0xAB; 16]);
        }
    }

    #[test]
    fn random_workload_consistent() {
        let (mut o, mut rng) = ring(128, 3);
        let mut model: Vec<Vec<u8>> = (0..128).map(|id| vec![(id % 251) as u8; 16]).collect();
        for step in 0..600u64 {
            let id = rng.gen_range(0..128u64);
            if step % 3 == 0 {
                let val = vec![(step % 251) as u8; 16];
                o.access(id, Some(val.clone()), &mut rng).unwrap();
                model[id as usize] = val;
            } else {
                assert_eq!(
                    o.access(id, None, &mut rng).unwrap(),
                    model[id as usize],
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn online_bandwidth_is_one_slot_per_level() {
        let (mut o, mut rng) = ring(256, 4);
        let levels = o.geometry().num_levels() as u64;
        let before = o.slots_read();
        // Average over accesses; reshuffles/evictions add amortized extra.
        let n = 50u64;
        for i in 0..n {
            o.access(i % 256, None, &mut rng).unwrap();
        }
        let per_access = (o.slots_read() - before) as f64 / n as f64;
        // Online cost is L+1 slots; amortized eviction/reshuffle roughly
        // doubles it — still far below the (L+1)·Z of full-bucket reads.
        let full_bucket = (levels * 4) as f64;
        assert!(
            per_access < full_bucket * 0.9,
            "per-access slots {per_access} not better than full buckets {full_bucket}"
        );
        assert!(
            per_access >= levels as f64,
            "cannot read fewer than L+1 slots"
        );
    }

    #[test]
    fn ssd_granularity_erases_the_advantage() {
        // The reason FEDORA's main ORAM is RAW, not Ring: on a 4-KiB page
        // device, one 88-byte slot read costs the same page as the whole
        // bucket.
        let geo = TreeGeometry::for_blocks(10_000_000, 64, 46);
        let pages_per_bucket = geo.pages_per_bucket(4096);
        assert_eq!(pages_per_bucket, 1, "whole bucket fits one page");
        // Ring's "one slot" read would still transfer pages_per_bucket
        // pages — zero savings at SSD granularity.
    }

    #[test]
    fn stash_bounded() {
        let (mut o, mut rng) = ring(128, 5);
        for i in 0..1000u64 {
            o.access(i % 128, None, &mut rng).unwrap();
        }
        assert!(o.stash_high_water() < 60, "stash {}", o.stash_high_water());
    }

    #[test]
    fn reshuffles_happen_under_pressure() {
        let (mut o, mut rng) = ring(64, 6);
        // Hammer one block: its path buckets burn dummies fast.
        for _ in 0..200 {
            o.access(7, None, &mut rng).unwrap();
        }
        assert!(o.reshuffles() > 0, "expected early reshuffles");
    }

    #[test]
    fn bad_inputs_rejected() {
        let (mut o, mut rng) = ring(16, 7);
        assert!(matches!(
            o.access(16, None, &mut rng),
            Err(OramError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            o.access(0, Some(vec![0u8; 3]), &mut rng),
            Err(OramError::BadPayloadLength { .. })
        ));
    }
}
