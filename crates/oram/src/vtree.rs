//! VTree: the DRAM-resident mirror of the main ORAM's valid flags
//! (paper §4.4, Optimization 2).
//!
//! An AO access in RAW ORAM must mark the fetched block's slot invalid, but
//! flipping the flag inside the SSD bucket would make AO accesses write to
//! the SSD. FEDORA extracts all valid flags into a small DRAM structure —
//! the VTree — whose entries mirror the main ORAM's (bucket, slot) grid.
//! VTree accesses always follow the main ORAM's own path accesses
//! one-for-one, so the VTree reveals nothing beyond what the main ORAM's
//! (already oblivious) trace reveals; its contents are encrypted in DRAM
//! like every other off-chip structure (modeled here by byte-level DRAM
//! traffic plus the size accounting of §4.4: one bit per data block plus
//! group-encryption metadata).

use fedora_storage::profile::DramProfile;
use fedora_storage::stats::DeviceStats;
use fedora_storage::{ByteReader, ByteWriter, CodecError, DeviceTelemetry, SimDram};
use fedora_telemetry::{Counter, Registry};

use crate::geometry::TreeGeometry;

/// Per-slot valid bits for an ORAM tree, stored in simulated DRAM.
#[derive(Clone, Debug)]
pub struct VTree {
    geometry: TreeGeometry,
    dram: SimDram,
    lookups: Counter,
    updates: Counter,
    registry: Registry,
}

impl VTree {
    /// Overhead factor for group-encryption metadata (counter + tag per
    /// 512-byte group ≈ 32/512), matching the paper's "2–112 MB" sizing.
    pub const ENCRYPTION_OVERHEAD: f64 = 32.0 / 512.0;

    /// Creates an all-invalid VTree for `geometry`, in DRAM.
    pub fn new(geometry: TreeGeometry, profile: DramProfile) -> Self {
        let bits = geometry.num_nodes() * geometry.z() as u64;
        let bytes = bits.div_ceil(8);
        VTree {
            geometry,
            dram: SimDram::new(profile, bytes),
            lookups: Counter::noop(),
            updates: Counter::noop(),
            registry: Registry::disabled(),
        }
    }

    /// Attaches telemetry: per-slot traversal counters
    /// (`oram.vtree.lookups` / `oram.vtree.updates`) plus the backing
    /// DRAM's traffic under the `dram.vtree` prefix.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.lookups = registry.counter("oram.vtree.lookups");
        self.updates = registry.counter("oram.vtree.updates");
        self.registry = registry.clone();
        self.dram
            .set_telemetry(DeviceTelemetry::attach(registry, "dram.vtree"));
    }

    /// Creates a VTree with the default DRAM profile.
    pub fn with_default_dram(geometry: TreeGeometry) -> Self {
        Self::new(geometry, DramProfile::default())
    }

    /// Raw bitmap size in bytes (1 bit per slot).
    pub fn bitmap_bytes(&self) -> u64 {
        self.dram.capacity_bytes()
    }

    /// Modeled total size including encryption metadata — the number the
    /// paper quotes as "around 2–112 MB".
    pub fn modeled_bytes(&self) -> u64 {
        (self.bitmap_bytes() as f64 * (1.0 + Self::ENCRYPTION_OVERHEAD)).ceil() as u64
    }

    /// DRAM traffic statistics.
    pub fn device_stats(&self) -> DeviceStats {
        *self.dram.stats()
    }

    fn bit_index(&self, node: u64, slot: usize) -> u64 {
        debug_assert!(node < self.geometry.num_nodes());
        debug_assert!(slot < self.geometry.z());
        node * self.geometry.z() as u64 + slot as u64
    }

    /// Reads the valid bit of `(node, slot)`.
    #[allow(clippy::expect_used)] // DRAM sized for every bit at construction
    pub fn get(&mut self, node: u64, slot: usize) -> bool {
        self.lookups.incr();
        let bit = self.bit_index(node, slot);
        let mut byte = [0u8; 1];
        self.dram
            .read(bit / 8, &mut byte)
            .expect("vtree sized for tree");
        (byte[0] >> (bit % 8)) & 1 == 1
    }

    /// Writes the valid bit of `(node, slot)`.
    #[allow(clippy::expect_used)] // DRAM sized for every bit at construction
    pub fn set(&mut self, node: u64, slot: usize, valid: bool) {
        self.updates.incr();
        let bit = self.bit_index(node, slot);
        let mut byte = [0u8; 1];
        self.dram
            .read(bit / 8, &mut byte)
            .expect("vtree sized for tree");
        if valid {
            byte[0] |= 1 << (bit % 8);
        } else {
            byte[0] &= !(1 << (bit % 8));
        }
        self.dram
            .write(bit / 8, &byte)
            .expect("vtree sized for tree");
    }

    /// Reads the whole bucket's valid bits at once (mirrors a path access).
    pub fn get_bucket(&mut self, node: u64) -> Vec<bool> {
        let _trace = self
            .registry
            .trace_span_with("oram.vtree.bucket", &[("op", "get".into())]);
        (0..self.geometry.z()).map(|s| self.get(node, s)).collect()
    }

    /// Writes the whole bucket's valid bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != Z`.
    pub fn set_bucket(&mut self, node: u64, bits: &[bool]) {
        assert_eq!(bits.len(), self.geometry.z(), "one bit per slot");
        let _trace = self
            .registry
            .trace_span_with("oram.vtree.bucket", &[("op", "set".into())]);
        for (s, &b) in bits.iter().enumerate() {
            self.set(node, s, b);
        }
    }

    /// Serializes the valid-bit image and its DRAM statistics into `w` for
    /// checkpointing (the raw bitmap, captured out-of-band so the snapshot
    /// itself generates no modeled DRAM traffic).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        let (bytes, stats) = self.dram.snapshot_state();
        w.put_bytes(&bytes);
        for v in [
            stats.pages_read,
            stats.pages_written,
            stats.bytes_read,
            stats.bytes_written,
            stats.busy_ns,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a VTree of the same geometry.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a bitmap-size mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let bytes = r.get_bytes()?;
        if bytes.len() as u64 != self.dram.capacity_bytes() {
            return Err(CodecError::Invalid("vtree bitmap size mismatch"));
        }
        let stats = DeviceStats {
            pages_read: r.get_u64()?,
            pages_written: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
            busy_ns: r.get_u64()?,
            ..DeviceStats::default()
        };
        self.dram.restore_state(bytes, stats);
        Ok(())
    }

    /// Number of valid slots in the whole tree (test/debug helper).
    pub fn count_valid(&mut self) -> u64 {
        let mut n = 0;
        for node in 0..self.geometry.num_nodes() {
            for slot in 0..self.geometry.z() {
                n += self.get(node, slot) as u64;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vtree() -> VTree {
        VTree::with_default_dram(TreeGeometry::new(3, 4, 64))
    }

    #[test]
    fn starts_all_invalid() {
        let mut v = vtree();
        assert_eq!(v.count_valid(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = vtree();
        v.set(5, 2, true);
        assert!(v.get(5, 2));
        assert!(!v.get(5, 1));
        assert!(!v.get(6, 2));
        v.set(5, 2, false);
        assert!(!v.get(5, 2));
    }

    #[test]
    fn bucket_ops() {
        let mut v = vtree();
        v.set_bucket(3, &[true, false, true, false]);
        assert_eq!(v.get_bucket(3), vec![true, false, true, false]);
        assert_eq!(v.count_valid(), 2);
    }

    #[test]
    fn sizing_one_bit_per_slot() {
        let v = vtree();
        // 15 nodes * 4 slots = 60 bits -> 8 bytes.
        assert_eq!(v.bitmap_bytes(), 8);
        assert!(v.modeled_bytes() >= v.bitmap_bytes());
    }

    #[test]
    fn large_table_sizing_matches_paper_range() {
        // Small table: 10M entries, 64B blocks, Z=4 → ~2^22 leaves.
        let geo = TreeGeometry::for_blocks(10_000_000, 64, 4);
        let bits = geo.num_nodes() * geo.z() as u64;
        let mb = (bits as f64 / 8.0) * (1.0 + VTree::ENCRYPTION_OVERHEAD) / 1e6;
        // Paper says "totaling around 2–112 MB" across its configs.
        assert!(mb > 1.0 && mb < 150.0, "VTree modeled at {mb} MB");
    }

    #[test]
    fn telemetry_counts_traversals() {
        let registry = Registry::new();
        let mut v = vtree();
        v.set_telemetry(&registry);
        v.set(0, 0, true);
        v.set(1, 2, true);
        assert!(v.get(0, 0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("oram.vtree.lookups"), Some(1));
        assert_eq!(snap.counter("oram.vtree.updates"), Some(2));
        assert!(snap.counter("dram.vtree.bytes_read").unwrap_or(0) > 0);
    }

    #[test]
    fn dram_traffic_counted() {
        let mut v = vtree();
        v.set(0, 0, true);
        v.get(0, 0);
        let s = v.device_stats();
        assert!(s.bytes_read >= 2); // read-modify-write + read
        assert!(s.bytes_written >= 1);
    }
}
