//! RAW ORAM (Fletcher et al., FCCM'15) with FEDORA's FL-friendly split.
//!
//! RAW ORAM separates **access-only (AO)** operations — read the whole path,
//! pull out the requested block, touch nothing else — from **eviction-only
//! (EO)** operations — read a path chosen in a predetermined
//! reverse-lexicographic order, merge it with the stash, and write it back.
//! One EO runs after every `A` AO accesses (`A` is the *eviction period*).
//!
//! FEDORA's optimizations on top (paper §4.4):
//!
//! * **Opt. 1 (FL-friendly phases):** during the round's *read phase*
//!   ([`RawOram::fetch`]) every fetched block immediately leaves for the
//!   buffer ORAM, so the stash stays empty and **no EO accesses are needed
//!   at all**; during the *write phase* ([`RawOram::insert`]) blocks arrive
//!   from the buffer ORAM directly into the stash, so **no AO accesses are
//!   needed**, only an EO after every `A` insertions.
//! * **Opt. 2 (VTree):** AO accesses must invalidate the fetched block's
//!   slot; the valid flags live in the DRAM [`VTree`], so AO accesses issue
//!   **zero SSD writes**.
//! * **Opt. 3 (large `A`):** the stash and path buffer live in DRAM, so `A`
//!   (and the bucket size) can be much larger than in on-chip designs,
//!   slashing EO frequency.
//!
//! The vanilla RAW ORAM access ([`RawOram::access`]) is also provided for
//! comparison: it interleaves EO accesses among AO accesses as the original
//! design requires.

use fedora_crypto::counter::{EvictionSchedule, RootCounter};
use fedora_storage::{ByteReader, ByteWriter, CodecError};
use fedora_telemetry::{Counter, Gauge, Histogram, Registry};
use rand::Rng;

use crate::block::Block;
use crate::bucket::Bucket;
use crate::position::PositionMap;
use crate::stash::Stash;
use crate::store::BucketStore;
use crate::vtree::VTree;
use crate::OramError;

/// Configuration of a RAW ORAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawOramConfig {
    /// The eviction period `A`: one EO access per `A` AO accesses (vanilla
    /// mode) or per `A` insertions (FEDORA write phase).
    pub eviction_period: u32,
}

impl RawOramConfig {
    /// The original RAW ORAM's small period (`A = 5`).
    pub fn original() -> Self {
        RawOramConfig { eviction_period: 5 }
    }

    /// FEDORA's tuned period for 4-KiB buckets (`A` up to 92; §4.4).
    pub fn fedora_tuned() -> Self {
        RawOramConfig {
            eviction_period: 92,
        }
    }
}

impl Default for RawOramConfig {
    fn default() -> Self {
        Self::fedora_tuned()
    }
}

/// Operation counters exposed for the latency/lifetime models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RawOramCounts {
    /// Real AO accesses (path reads that served a block).
    pub ao_accesses: u64,
    /// Dummy AO accesses (path reads for FDP padding).
    pub dummy_accesses: u64,
    /// EO accesses (path read + write).
    pub eo_accesses: u64,
    /// Blocks inserted during write phases.
    pub insertions: u64,
}

/// Telemetry handles for the RAW ORAM's own operations. Latencies are host
/// wall-clock nanoseconds of the whole operation (the simulated device time
/// stays in `DeviceStats`); the clock is never read when detached.
#[derive(Clone, Debug, Default)]
struct OramTelemetry {
    access_latency: Histogram,
    eviction_latency: Histogram,
    ao_accesses: Counter,
    dummy_accesses: Counter,
    eo_accesses: Counter,
    insertions: Counter,
    stash_len: Gauge,
    stash_high_water: Gauge,
    /// Eviction-tuning report: suggested eviction period `A` derived from
    /// the stash high-water mark and the access/eviction latency histograms.
    suggested_a: Gauge,
    /// Back-reference for causal trace spans (disabled handle when
    /// detached, so spans stay free).
    registry: Registry,
}

impl OramTelemetry {
    fn attach(registry: &Registry) -> Self {
        OramTelemetry {
            access_latency: registry.histogram("oram.access.latency"),
            eviction_latency: registry.histogram("oram.eviction.latency"),
            ao_accesses: registry.counter("oram.access.ao"),
            dummy_accesses: registry.counter("oram.access.dummy"),
            eo_accesses: registry.counter("oram.eviction.count"),
            insertions: registry.counter("oram.insertions"),
            stash_len: registry.gauge("oram.stash.len"),
            stash_high_water: registry.gauge("oram.stash.high_water"),
            suggested_a: registry.gauge("oram.eviction.suggested_a"),
            registry: registry.clone(),
        }
    }
}

/// A RAW ORAM over any [`BucketStore`], with VTree-backed valid flags.
#[derive(Clone, Debug)]
pub struct RawOram<S: BucketStore> {
    store: S,
    position: PositionMap,
    stash: Stash,
    vtree: VTree,
    schedule: EvictionSchedule,
    eo_counter: RootCounter,
    ao_since_eo: u32,
    inserts_since_eo: u32,
    config: RawOramConfig,
    num_blocks: u64,
    counts: RawOramCounts,
    ao_trace: Vec<u64>,
    eo_trace: Vec<u64>,
    telemetry: OramTelemetry,
    /// Reused eviction output-path buffer (cleared, not reallocated).
    scratch_path: Vec<Bucket>,
    /// Reused valid-bit buffer for VTree bucket updates.
    scratch_bits: Vec<bool>,
    /// When set, EO path writes are staged in the store and flushed at a
    /// caller-chosen boundary (see [`Self::flush_deferred_evictions`]).
    /// Execution-mode state, not protocol state — never persisted.
    defer_evictions: bool,
}

impl<S: BucketStore> RawOram<S> {
    /// Creates a RAW ORAM holding `num_blocks` blocks, bulk-loading the
    /// initial payloads produced by `init` (e.g. fresh embedding rows).
    /// Initialization traffic is excluded from device statistics.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` exceeds the leaf count (provisioning bound)
    /// or if `eviction_period` is zero.
    pub fn new<R: Rng, F: FnMut(u64) -> Vec<u8>>(
        mut store: S,
        num_blocks: u64,
        config: RawOramConfig,
        mut init: F,
        rng: &mut R,
    ) -> Self {
        assert!(
            config.eviction_period > 0,
            "eviction period must be positive"
        );
        let geo = store.geometry();
        assert!(
            2 * num_blocks <= geo.capacity_blocks(),
            "{num_blocks} blocks over capacity {} breaks the ≤50% provisioning bound",
            geo.capacity_blocks()
        );
        let position = PositionMap::random(num_blocks, geo.num_leaves(), rng);
        let mut vtree = VTree::with_default_dram(geo);

        // Bulk-load: place each block as deep as possible on its path.
        let mut buckets: Vec<Bucket> = (0..geo.num_nodes())
            .map(|_| Bucket::empty(geo.z(), geo.block_bytes()))
            .collect();
        let mut stash = Stash::new();
        let mut pos_snapshot = position.clone();
        for id in 0..num_blocks {
            let leaf = pos_snapshot.get(id);
            let payload = init(id);
            assert_eq!(payload.len(), geo.block_bytes(), "init payload size");
            let block = Block::new(id, leaf, payload);
            let mut placed = false;
            for &node in geo.path_nodes(leaf).iter().rev() {
                if buckets[node as usize].try_insert(block.clone()) {
                    placed = true;
                    break;
                }
            }
            if !placed {
                stash.push(block);
            }
        }
        for (node, bucket) in buckets.iter().enumerate() {
            #[allow(clippy::expect_used)] // pre-injector, tree sized exactly
            store
                .load_bucket(node as u64, bucket)
                .expect("bulk load within provisioned tree");
            let bits: Vec<bool> = bucket.slots().iter().map(|s| s.valid).collect();
            vtree.set_bucket(node as u64, &bits);
        }
        store.reset_device_stats();

        RawOram {
            store,
            position,
            stash,
            vtree,
            schedule: EvictionSchedule::new(geo.depth()),
            eo_counter: RootCounter::new(),
            ao_since_eo: 0,
            inserts_since_eo: 0,
            config,
            num_blocks,
            counts: RawOramCounts::default(),
            ao_trace: Vec::new(),
            eo_trace: Vec::new(),
            telemetry: OramTelemetry::default(),
            scratch_path: Vec::new(),
            scratch_bits: Vec::new(),
            defer_evictions: false,
        }
    }

    /// Sets the worker-thread count for the backing store's bulk crypto.
    /// Thread count never changes results — only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.store.set_threads(threads);
    }

    /// Enables (or disables) the backing store's decrypt window — the
    /// plaintext mirror that lets pipelined rounds skip re-decrypting
    /// already-authenticated, unchanged ciphertext. Device page traffic is
    /// identical either way; see
    /// [`BucketStore::set_decrypt_window`].
    pub fn set_decrypt_window(&mut self, enabled: bool) {
        self.store.set_decrypt_window(enabled);
    }

    /// Enables (or disables) eviction-write deferral: EO accesses still
    /// read their path, merge the stash, and update the VTree at trigger
    /// time — only the final [`BucketStore::write_path`] is staged, to be
    /// flushed in EO order by [`Self::flush_deferred_evictions`]. Stores
    /// without an active decrypt window ignore the stage and write
    /// immediately (a reader between stage and flush must never decrypt
    /// stale device bytes).
    pub fn set_eviction_deferral(&mut self, enabled: bool) {
        self.defer_evictions = enabled;
    }

    /// Flushes EO path writes staged under eviction deferral, in EO order,
    /// returning how many were flushed. Counters, device statistics, and
    /// the physical page trace match the undeferred schedule exactly.
    ///
    /// # Errors
    ///
    /// Store errors propagate.
    pub fn flush_deferred_evictions(&mut self) -> Result<u64, OramError> {
        self.store.flush_deferred_writes()
    }

    /// Attaches telemetry: ORAM access/eviction latency histograms and
    /// operation counters, stash occupancy gauges, VTree traversal
    /// counters, and the backing store's device/integrity/AEAD
    /// instrumentation all feed `registry`.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = OramTelemetry::attach(registry);
        self.store.set_telemetry(registry);
        self.vtree.set_telemetry(registry);
        // Until evictions produce data, the configured period is the best
        // suggestion — registering it eagerly keeps the gauge in every
        // snapshot (ROADMAP: eviction-tuning report).
        self.telemetry
            .suggested_a
            .set_u64(u64::from(self.config.eviction_period));
    }

    /// Recomputes `oram.eviction.suggested_a` from the stash high-water mark
    /// and the observed access/eviction latencies. Two pressures:
    ///
    /// * **Backlog**: a stash high-water mark running past `2A` says paths
    ///   fill faster than evictions drain them — shrink the period; a mark
    ///   well under `A` says evictions are wastefully frequent — stretch it
    ///   (bounded to 0.5–2× per report so the suggestion moves smoothly).
    /// * **Latency floor**: below `mean(eviction) / mean(access)` the
    ///   amortized per-insertion eviction cost would exceed one access, so
    ///   suggestions never drop under that ratio.
    fn update_suggested_a(&self) {
        if !self.telemetry.registry.is_enabled() {
            return;
        }
        let a = f64::from(self.config.eviction_period);
        let high_water = self.stash.high_water() as f64;
        let backlog = (2.0 * a / high_water.max(1.0)).clamp(0.5, 2.0);
        let mut suggested = (a * backlog).max(1.0);
        let access = self.telemetry.access_latency.summary();
        let eviction = self.telemetry.eviction_latency.summary();
        if access.count > 0 && eviction.count > 0 && access.mean() > 0.0 {
            suggested = suggested.max((eviction.mean() / access.mean()).max(1.0));
        }
        self.telemetry.suggested_a.set(suggested.round());
    }

    fn note_stash(&mut self) {
        self.telemetry.stash_len.set_u64(self.stash.len() as u64);
        self.telemetry
            .stash_high_water
            .set_u64(self.stash.high_water() as u64);
    }

    /// Number of logical blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the backing store (stats resets).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The VTree (for size/traffic queries).
    pub fn vtree(&self) -> &VTree {
        &self.vtree
    }

    /// Operation counters.
    pub fn counts(&self) -> RawOramCounts {
        self.counts
    }

    /// Total EO accesses so far (the root counter).
    pub fn eo_count(&self) -> u64 {
        self.eo_counter.get()
    }

    /// The eviction schedule (exposed so tests can check the Merkle-free
    /// counter property).
    pub fn schedule(&self) -> EvictionSchedule {
        self.schedule
    }

    /// Repairs an unrecoverable bucket: re-encrypts it *empty* at its
    /// current write counter and clears the VTree's valid bits for it, so
    /// the tree decrypts cleanly again. Blocks that resided in the bucket
    /// are lost — later fetches of those ids report
    /// [`OramError::MissingBlock`], which callers use to quarantine the
    /// affected entries (degraded mode) rather than abort.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs in the backing store.
    pub fn repair_bucket(&mut self, node: u64) -> Result<(), OramError> {
        self.store.repair_bucket(node)?;
        let z = self.store.geometry().z();
        self.vtree.set_bucket(node, &vec![false; z]);
        Ok(())
    }

    /// Verifies every bucket's MAC in the backing store (retrying
    /// recoverable faults) and reports unrecoverable buckets.
    pub fn scrub(&mut self) -> crate::store::ScrubReport {
        self.store.scrub()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Highest stash occupancy observed.
    pub fn stash_high_water(&self) -> usize {
        self.stash.high_water()
    }

    /// Takes the AO trace (leaves of AO path reads).
    pub fn take_ao_trace(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.ao_trace)
    }

    /// Takes the EO trace (leaves of EO path read/writes).
    pub fn take_eo_trace(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.eo_trace)
    }

    fn check_id(&self, id: u64) -> Result<(), OramError> {
        if id >= self.num_blocks {
            return Err(OramError::BlockOutOfRange {
                id,
                capacity: self.num_blocks,
            });
        }
        Ok(())
    }

    /// FEDORA read-phase fetch (step ③): an AO access that removes the
    /// block from the main ORAM entirely (it moves to the buffer ORAM).
    /// Issues **no SSD writes** — slot invalidation goes to the VTree.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for bad ids; [`OramError::
    /// MissingBlock`] if the invariant is broken (corruption).
    pub fn fetch<R: Rng>(&mut self, id: u64, _rng: &mut R) -> Result<Block, OramError> {
        self.check_id(id)?;
        let _trace = self
            .telemetry
            .registry
            .trace_span_with("oram.access", &[("kind", "ao".into())]);
        let _timer = self.telemetry.access_latency.start_timer();
        self.telemetry.ao_accesses.incr();
        let leaf = self.position.get(id);
        self.ao_trace.push(leaf);
        self.counts.ao_accesses += 1;

        // The path is always read, even when the block turns out to be in
        // the stash — the access pattern must not depend on that.
        let geo = self.store.geometry();
        let nodes = geo.path_nodes(leaf);
        let path = self.store.read_path(leaf)?;

        if let Some(block) = self.stash.take(id) {
            self.note_stash();
            return Ok(block);
        }
        for (bucket, &node) in path.iter().zip(&nodes) {
            for (slot_idx, slot) in bucket.slots().iter().enumerate() {
                if slot.valid && self.vtree.get(node, slot_idx) && slot.block.id == id {
                    self.vtree.set(node, slot_idx, false);
                    return Ok(slot.block.clone());
                }
            }
        }
        Err(OramError::MissingBlock { id })
    }

    /// A dummy AO access: reads a uniformly random path and discards it.
    /// Used for the FDP mechanism's padding accesses (`k > k_union`).
    pub fn dummy_fetch<R: Rng>(&mut self, rng: &mut R) -> Result<(), OramError> {
        let _trace = self
            .telemetry
            .registry
            .trace_span_with("oram.access", &[("kind", "dummy".into())]);
        let _timer = self.telemetry.access_latency.start_timer();
        self.telemetry.dummy_accesses.incr();
        let geo = self.store.geometry();
        let leaf = rng.gen_range(0..geo.num_leaves());
        self.ao_trace.push(leaf);
        self.counts.dummy_accesses += 1;
        let _ = self.store.read_path(leaf)?;
        Ok(())
    }

    /// FEDORA write-phase insert (step ⑦): the block returns from the
    /// buffer ORAM with fresh randomness; after every `A` insertions one EO
    /// access writes the stash back into the tree. No AO accesses occur.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] / [`OramError::BadPayloadLength`] on
    /// malformed input; store errors propagate from the EO.
    pub fn insert<R: Rng>(
        &mut self,
        id: u64,
        payload: Vec<u8>,
        rng: &mut R,
    ) -> Result<(), OramError> {
        self.check_id(id)?;
        let geo = self.store.geometry();
        if payload.len() != geo.block_bytes() {
            return Err(OramError::BadPayloadLength {
                got: payload.len(),
                want: geo.block_bytes(),
            });
        }
        let new_leaf = rng.gen_range(0..geo.num_leaves());
        self.position.set(id, new_leaf);
        self.stash.push(Block::new(id, new_leaf, payload));
        self.counts.insertions += 1;
        self.telemetry.insertions.incr();
        self.note_stash();
        self.inserts_since_eo += 1;
        if self.inserts_since_eo >= self.config.eviction_period {
            self.inserts_since_eo = 0;
            self.eo_access()?;
        }
        Ok(())
    }

    /// A dummy insertion for the write phase's FDP padding: advances the
    /// EO cadence exactly like a real insertion (the adversary cannot
    /// distinguish them — both are stash pushes with no immediate memory
    /// access) without adding a block.
    ///
    /// # Errors
    ///
    /// Store errors propagate from a triggered EO.
    pub fn insert_dummy(&mut self) -> Result<(), OramError> {
        self.counts.insertions += 1;
        self.telemetry.insertions.incr();
        self.inserts_since_eo += 1;
        if self.inserts_since_eo >= self.config.eviction_period {
            self.inserts_since_eo = 0;
            self.eo_access()?;
        }
        Ok(())
    }

    /// One EO access: read the next path in reverse-lexicographic order,
    /// merge its (VTree-valid) blocks with the stash, greedily refill the
    /// path, and write it back. This is the **only** operation that writes
    /// to the backing store.
    ///
    /// # Errors
    ///
    /// Store errors propagate.
    pub fn eo_access(&mut self) -> Result<(), OramError> {
        let _trace = self.telemetry.registry.trace_span("oram.eviction");
        let timer = self.telemetry.eviction_latency.start_timer();
        self.telemetry.eo_accesses.incr();
        let geo = self.store.geometry();
        let e = self.eo_counter.advance();
        let leaf = self.schedule.leaf_for(e);
        self.eo_trace.push(leaf);
        self.counts.eo_accesses += 1;

        let nodes = geo.path_nodes(leaf);
        let path = self.store.read_path(leaf)?;
        for (bucket, &node) in path.iter().zip(&nodes) {
            for (slot_idx, slot) in bucket.slots().iter().enumerate() {
                if slot.valid && self.vtree.get(node, slot_idx) {
                    self.stash.push(slot.block.clone());
                }
                // The slot is being rebuilt either way.
                self.vtree.set(node, slot_idx, false);
            }
        }

        // Rebuild the output path in the reused scratch buffer: clearing
        // zeroes the slots in place, so the written bytes are identical to
        // freshly allocated empty buckets without the per-eviction
        // allocation of `levels · z` blocks.
        if self.scratch_path.len() != nodes.len() {
            self.scratch_path = vec![Bucket::empty(geo.z(), geo.block_bytes()); nodes.len()];
        } else {
            for bucket in &mut self.scratch_path {
                bucket.clear();
            }
        }
        for level in (0..=geo.depth()).rev() {
            for block in self
                .stash
                .drain_for_bucket(leaf, level, geo.depth(), geo.z())
            {
                let inserted = self.scratch_path[level as usize].try_insert(block);
                debug_assert!(inserted, "drain_for_bucket respects capacity");
            }
        }
        for (bucket, &node) in self.scratch_path.iter().zip(&nodes) {
            self.scratch_bits.clear();
            self.scratch_bits
                .extend(bucket.slots().iter().map(|s| s.valid));
            self.vtree.set_bucket(node, &self.scratch_bits);
        }
        self.note_stash();
        let result = if self.defer_evictions {
            self.store.defer_write_path(leaf, &self.scratch_path)
        } else {
            self.store.write_path(leaf, &self.scratch_path)
        };
        timer.stop(); // record this eviction before deriving the suggestion
        self.update_suggested_a();
        result
    }

    /// Serializes the controller state — position map, stash, VTree image,
    /// root EO counter, eviction cadence, operation counters, and pending
    /// traces — into `w`. The backing store is encoded separately by the
    /// caller (it owns the device image and bucket write counters).
    pub fn encode_controller_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.num_blocks);
        self.position.encode_state(w);
        self.stash.encode_state(w);
        self.vtree.encode_state(w);
        w.put_u64(self.eo_counter.get());
        w.put_u32(self.ao_since_eo);
        w.put_u32(self.inserts_since_eo);
        for v in [
            self.counts.ao_accesses,
            self.counts.dummy_accesses,
            self.counts.eo_accesses,
            self.counts.insertions,
        ] {
            w.put_u64(v);
        }
        w.put_u64s(&self.ao_trace);
        w.put_u64s(&self.eo_trace);
    }

    /// Restores controller state captured by
    /// [`encode_controller_state`](Self::encode_controller_state) onto an
    /// ORAM of the same shape. The root EO counter is restored verbatim; a
    /// stale value would replay bucket nonces, which the AEAD layer then
    /// rejects — this is the Merkle-free scheme's built-in rollback
    /// detection.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a shape mismatch.
    pub fn decode_controller_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.get_u64()? != self.num_blocks {
            return Err(CodecError::Invalid("raw-oram block-count mismatch"));
        }
        self.position.decode_state(r)?;
        self.stash.decode_state(r)?;
        self.vtree.decode_state(r)?;
        self.eo_counter = RootCounter::from_count(r.get_u64()?);
        self.ao_since_eo = r.get_u32()?;
        self.inserts_since_eo = r.get_u32()?;
        self.counts = RawOramCounts {
            ao_accesses: r.get_u64()?,
            dummy_accesses: r.get_u64()?,
            eo_accesses: r.get_u64()?,
            insertions: r.get_u64()?,
        };
        self.ao_trace = r.get_u64s()?;
        self.eo_trace = r.get_u64s()?;
        Ok(())
    }

    /// Vanilla RAW ORAM access (read, or write when `new_payload` is
    /// given): AO-fetches the block, keeps it inside the ORAM (stash, with
    /// a fresh leaf), and interleaves an EO access after every `A` AOs.
    /// This is the mode the original design runs in, used by benches for
    /// comparison.
    ///
    /// # Errors
    ///
    /// As for [`fetch`](Self::fetch) and [`insert`](Self::insert).
    pub fn access<R: Rng>(
        &mut self,
        id: u64,
        new_payload: Option<Vec<u8>>,
        rng: &mut R,
    ) -> Result<Vec<u8>, OramError> {
        let mut block = self.fetch(id, rng)?;
        let old = block.payload.clone();
        if let Some(p) = new_payload {
            let want = self.store.geometry().block_bytes();
            if p.len() != want {
                // Re-stash the block before surfacing the error so the
                // ORAM invariant survives.
                self.stash.push(block);
                return Err(OramError::BadPayloadLength { got: p.len(), want });
            }
            block.payload = p;
        }
        let new_leaf = rng.gen_range(0..self.store.geometry().num_leaves());
        self.position.set(id, new_leaf);
        block.leaf = new_leaf;
        self.stash.push(block);
        self.note_stash();

        self.ao_since_eo += 1;
        if self.ao_since_eo >= self.config.eviction_period {
            self.ao_since_eo = 0;
            self.eo_access()?;
        }
        Ok(old)
    }

    /// Drains the stash by running EO accesses until it is empty or
    /// `max_eos` have run. Returns the number of EOs performed.
    ///
    /// # Errors
    ///
    /// Store errors propagate.
    pub fn flush(&mut self, max_eos: u64) -> Result<u64, OramError> {
        let mut n = 0;
        while !self.stash.is_empty() && n < max_eos {
            self.eo_access()?;
            n += 1;
        }
        Ok(n)
    }

    /// Verifies the Merkle-free counter property: every bucket's write
    /// count in the store equals the closed form derived from the root EO
    /// counter alone. Test/debug helper (O(num_nodes)).
    pub fn counters_match_schedule(&self) -> bool {
        let geo = self.store.geometry();
        for node in 0..geo.num_nodes() {
            let (level, index) = geo.coords_of(node);
            if self.store.write_count(node)
                != self
                    .schedule
                    .writes_to_bucket(level, index, self.eo_counter.get())
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TreeGeometry;
    use crate::store::DramBucketStore;
    use fedora_crypto::aead::Key;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oram(blocks: u64, a: u32, seed: u64) -> (RawOram<DramBucketStore>, StdRng) {
        let geo = TreeGeometry::for_blocks(blocks, 16, 8);
        let store = DramBucketStore::with_default_dram(geo, Key::from_bytes([2; 32]));
        let mut rng = StdRng::seed_from_u64(seed);
        let o = RawOram::new(
            store,
            blocks,
            RawOramConfig { eviction_period: a },
            |id| vec![id as u8; 16],
            &mut rng,
        );
        (o, rng)
    }

    #[test]
    fn bulk_load_then_fetch_every_block() {
        let (mut o, mut rng) = oram(32, 4, 1);
        for id in 0..32u64 {
            let b = o.fetch(id, &mut rng).unwrap();
            assert_eq!(b.payload, vec![id as u8; 16], "block {id}");
            // Put it back so later fetches still find their blocks.
            o.insert(id, b.payload, &mut rng).unwrap();
        }
    }

    #[test]
    fn fetch_removes_block() {
        let (mut o, mut rng) = oram(16, 4, 2);
        let b = o.fetch(3, &mut rng).unwrap();
        assert_eq!(b.id, 3);
        // A second fetch of the same id must fail: the block left the ORAM.
        assert_eq!(o.fetch(3, &mut rng), Err(OramError::MissingBlock { id: 3 }));
    }

    #[test]
    fn read_phase_issues_no_writes() {
        let (mut o, mut rng) = oram(32, 4, 3);
        o.store_mut().reset_device_stats();
        for id in 0..16u64 {
            o.fetch(id, &mut rng).unwrap();
        }
        for _ in 0..8 {
            o.dummy_fetch(&mut rng).unwrap();
        }
        let stats = o.store().device_stats();
        assert_eq!(stats.bytes_written, 0, "AO accesses must be write-free");
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn write_phase_eo_every_a_inserts() {
        let (mut o, mut rng) = oram(32, 4, 4);
        // Fetch 12 blocks out, then insert them back.
        let blocks: Vec<Block> = (0..12).map(|id| o.fetch(id, &mut rng).unwrap()).collect();
        let eo_before = o.eo_count();
        for b in blocks {
            o.insert(b.id, b.payload, &mut rng).unwrap();
        }
        assert_eq!(o.eo_count() - eo_before, 3, "12 inserts / A=4 = 3 EOs");
    }

    #[test]
    fn roundtrip_through_phases_preserves_data() {
        let (mut o, mut rng) = oram(64, 8, 5);
        // Simulate 5 FEDORA rounds over random working sets.
        for round in 0..5 {
            let ids: Vec<u64> = (0..20).map(|i| (i * 3 + round) % 64).collect();
            let mut unique = ids.clone();
            unique.sort_unstable();
            unique.dedup();
            let fetched: Vec<Block> = unique
                .iter()
                .map(|&id| o.fetch(id, &mut rng).unwrap())
                .collect();
            for mut b in fetched {
                b.payload[0] = b.payload[0].wrapping_add(1);
                o.insert(b.id, b.payload, &mut rng).unwrap();
            }
        }
        // All blocks still present with coherent data.
        for id in 0..64u64 {
            let b = o.fetch(id, &mut rng).unwrap();
            assert_eq!(b.id, id);
            o.insert(id, b.payload, &mut rng).unwrap();
        }
    }

    #[test]
    fn counters_match_schedule_always() {
        let (mut o, mut rng) = oram(64, 4, 6);
        assert!(o.counters_match_schedule(), "after init");
        for id in 0..32u64 {
            let b = o.fetch(id, &mut rng).unwrap();
            o.insert(id, b.payload, &mut rng).unwrap();
        }
        assert!(o.counters_match_schedule(), "after a round");
        o.flush(1000).unwrap();
        assert!(o.counters_match_schedule(), "after flush");
    }

    #[test]
    fn vanilla_access_mode() {
        let (mut o, mut rng) = oram(32, 4, 7);
        let old = o.access(5, Some(vec![0xEE; 16]), &mut rng).unwrap();
        assert_eq!(old, vec![5u8; 16]);
        let now = o.access(5, None, &mut rng).unwrap();
        assert_eq!(now, vec![0xEE; 16]);
        // EO interleaving: 2 AOs with A=4 → no EO yet.
        assert_eq!(o.eo_count(), 0);
        for i in 0..8u64 {
            o.access(i % 32, None, &mut rng).unwrap();
        }
        assert!(o.eo_count() >= 2);
    }

    #[test]
    fn stash_drains_via_flush() {
        let (mut o, mut rng) = oram(32, 1000, 8); // huge A: no automatic EO
        let blocks: Vec<Block> = (0..16).map(|id| o.fetch(id, &mut rng).unwrap()).collect();
        for b in blocks {
            o.insert(b.id, b.payload, &mut rng).unwrap();
        }
        assert_eq!(o.stash_len(), 16);
        let eos = o.flush(1000).unwrap();
        assert!(eos > 0);
        assert_eq!(o.stash_len(), 0);
    }

    #[test]
    fn eo_trace_is_deterministic_schedule() {
        let (mut o, mut rng) = oram(32, 1, 9);
        let blocks: Vec<Block> = (0..8).map(|id| o.fetch(id, &mut rng).unwrap()).collect();
        for b in blocks {
            o.insert(b.id, b.payload, &mut rng).unwrap();
        }
        let trace = o.take_eo_trace();
        let sched = o.schedule();
        let expected: Vec<u64> = (0..trace.len() as u64).map(|e| sched.leaf_for(e)).collect();
        assert_eq!(trace, expected, "EO leaves follow the public schedule");
    }

    #[test]
    fn telemetry_mirrors_operation_counts() {
        let registry = Registry::new();
        let (mut o, mut rng) = oram(32, 4, 12);
        o.set_telemetry(&registry);
        let blocks: Vec<Block> = (0..8).map(|id| o.fetch(id, &mut rng).unwrap()).collect();
        o.dummy_fetch(&mut rng).unwrap();
        for b in blocks {
            o.insert(b.id, b.payload, &mut rng).unwrap();
        }
        let snap = registry.snapshot();
        let counts = o.counts();
        assert_eq!(snap.counter("oram.access.ao"), Some(counts.ao_accesses));
        assert_eq!(
            snap.counter("oram.access.dummy"),
            Some(counts.dummy_accesses)
        );
        assert_eq!(
            snap.counter("oram.eviction.count"),
            Some(counts.eo_accesses)
        );
        assert_eq!(snap.counter("oram.insertions"), Some(counts.insertions));
        // One latency sample per AO/dummy access, one per EO.
        let access = snap.histogram("oram.access.latency").expect("histogram");
        assert_eq!(access.count, counts.ao_accesses + counts.dummy_accesses);
        assert!(access.min <= access.p50 && access.p50 <= access.max);
        let evict = snap.histogram("oram.eviction.latency").expect("histogram");
        assert_eq!(evict.count, counts.eo_accesses);
        // Stash gauges track occupancy; VTree and device traffic mirrored.
        assert_eq!(
            snap.gauge("oram.stash.high_water"),
            Some(o.stash_high_water() as f64)
        );
        assert!(snap.counter("oram.vtree.lookups").unwrap_or(0) > 0);
        assert!(snap.counter("dram.store.pages_read").unwrap_or(0) > 0);
    }

    #[test]
    fn suggested_eviction_period_reported_in_every_snapshot() {
        let registry = Registry::new();
        let (mut o, mut rng) = oram(32, 4, 12);
        o.set_telemetry(&registry);
        // Present (at the configured A) before any eviction has run.
        assert_eq!(
            registry.snapshot().gauge("oram.eviction.suggested_a"),
            Some(4.0)
        );
        for id in 0..16u64 {
            let b = o.fetch(id, &mut rng).unwrap();
            o.insert(b.id, b.payload, &mut rng).unwrap();
        }
        let suggested = registry
            .snapshot()
            .gauge("oram.eviction.suggested_a")
            .expect("gauge present after evictions");
        // The heuristic is bounded: 0.5–2x the configured period, or the
        // eviction/access latency ratio floor — never zero or negative.
        assert!(suggested >= 1.0, "suggested A {suggested} below 1");
    }

    #[test]
    fn traced_round_emits_oram_spans() {
        let registry = Registry::new();
        registry.set_tracing(true);
        let (mut o, mut rng) = oram(32, 4, 12);
        o.set_telemetry(&registry);
        let b = o.fetch(3, &mut rng).unwrap();
        for _ in 0..4 {
            o.dummy_fetch(&mut rng).unwrap();
        }
        o.insert(b.id, b.payload, &mut rng).unwrap();
        o.flush(8).unwrap();
        let events = registry.snapshot().events;
        let begins: Vec<String> = events
            .iter()
            .filter(|e| e.name == "trace.begin")
            .filter_map(|e| match e.field("name") {
                Some(fedora_telemetry::Value::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(begins.iter().any(|n| n == "oram.access"));
        assert!(begins.iter().any(|n| n == "oram.eviction"));
        // Device I/O records attribute under the spans.
        assert!(events.iter().any(|e| e.name == "trace.io"));
    }

    #[test]
    fn detached_telemetry_changes_nothing() {
        let (mut o, mut rng) = oram(32, 4, 13);
        let (mut o2, mut rng2) = oram(32, 4, 13);
        o2.set_telemetry(&Registry::disabled());
        for id in 0..8u64 {
            let a = o.fetch(id, &mut rng).unwrap();
            let b = o2.fetch(id, &mut rng2).unwrap();
            assert_eq!(a, b);
            o.insert(id, a.payload.clone(), &mut rng).unwrap();
            o2.insert(id, b.payload, &mut rng2).unwrap();
        }
        assert_eq!(o.counts(), o2.counts());
        assert_eq!(o.store().device_stats(), o2.store().device_stats());
    }

    #[test]
    fn bad_inputs_rejected() {
        let (mut o, mut rng) = oram(8, 4, 10);
        assert_eq!(
            o.fetch(8, &mut rng),
            Err(OramError::BlockOutOfRange { id: 8, capacity: 8 })
        );
        assert_eq!(
            o.insert(0, vec![0u8; 3], &mut rng),
            Err(OramError::BadPayloadLength { got: 3, want: 16 })
        );
    }

    #[test]
    fn dummy_fetch_indistinguishable_in_counts() {
        let (mut o, mut rng) = oram(32, 4, 11);
        o.store_mut().reset_device_stats();
        o.fetch(0, &mut rng).unwrap();
        let real = o.store().device_stats();
        o.store_mut().reset_device_stats();
        o.dummy_fetch(&mut rng).unwrap();
        let dummy = o.store().device_stats();
        assert_eq!(real.pages_read, dummy.pages_read);
        assert_eq!(real.bytes_written, dummy.bytes_written);
    }
}
