//! The stash: the overflow buffer blocks live in while off the tree.
//!
//! Path ORAM's invariant is that every block is either on its assigned path
//! or in the stash. FEDORA places the stash in off-chip DRAM (§4.4 Opt. 3),
//! allowing it to be much larger than an on-chip design; we still track the
//! high-water mark because stash occupancy is the quantity the ORAM
//! security proofs bound.

use crate::block::Block;
use fedora_storage::{ByteReader, ByteWriter, CodecError};

/// A stash with occupancy tracking.
#[derive(Clone, Debug, Default)]
pub struct Stash {
    blocks: Vec<Block>,
    high_water: usize,
}

impl Stash {
    /// Creates an empty stash.
    pub fn new() -> Self {
        Stash::default()
    }

    /// Current number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Adds a block.
    pub fn push(&mut self, block: Block) {
        self.blocks.push(block);
        self.high_water = self.high_water.max(self.blocks.len());
    }

    /// Removes and returns the block with `id`, if present.
    pub fn take(&mut self, id: u64) -> Option<Block> {
        let idx = self.blocks.iter().position(|b| b.id == id)?;
        Some(self.blocks.swap_remove(idx))
    }

    /// Returns a mutable reference to the block with `id`, if present.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Block> {
        self.blocks.iter_mut().find(|b| b.id == id)
    }

    /// Whether a block with `id` is present.
    pub fn contains(&self, id: u64) -> bool {
        self.blocks.iter().any(|b| b.id == id)
    }

    /// Drains every block whose assigned leaf shares at least `level`
    /// levels with `leaf` — the candidates for eviction into the bucket at
    /// that level — up to `max` of them (bucket capacity).
    pub fn drain_for_bucket(
        &mut self,
        leaf: u64,
        level: u32,
        depth: u32,
        max: usize,
    ) -> Vec<Block> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.blocks.len() && out.len() < max {
            let b_leaf = self.blocks[i].leaf;
            if (b_leaf >> (depth - level)) == (leaf >> (depth - level)) {
                out.push(self.blocks.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Iterates over the stashed blocks.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Removes every block, returning them.
    pub fn drain_all(&mut self) -> Vec<Block> {
        std::mem::take(&mut self.blocks)
    }

    /// Serializes the stash (blocks in their current order, plus the
    /// high-water mark) into `w` for checkpointing. Order is preserved so a
    /// restored stash drains identically to the original.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.blocks.len() as u64);
        for b in &self.blocks {
            w.put_u64(b.id);
            w.put_u64(b.leaf);
            w.put_bytes(&b.payload);
        }
        w.put_u64(self.high_water as u64);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state),
    /// replacing this stash's contents.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let count = r.get_u64()? as usize;
        if count > r.remaining() {
            return Err(CodecError::Invalid("stash block count implausible"));
        }
        let mut blocks = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.get_u64()?;
            let leaf = r.get_u64()?;
            let payload = r.get_bytes()?;
            blocks.push(Block::new(id, leaf, payload));
        }
        self.blocks = blocks;
        self.high_water = r.get_u64()? as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(id: u64, leaf: u64) -> Block {
        Block::new(id, leaf, vec![0u8; 4])
    }

    #[test]
    fn push_take() {
        let mut s = Stash::new();
        s.push(blk(1, 0));
        s.push(blk(2, 1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(1));
        let b = s.take(1).unwrap();
        assert_eq!(b.id, 1);
        assert!(!s.contains(1));
        assert!(s.take(1).is_none());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut s = Stash::new();
        for i in 0..5 {
            s.push(blk(i, 0));
        }
        for i in 0..5 {
            s.take(i);
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.high_water(), 5);
    }

    #[test]
    fn drain_for_bucket_filters_by_prefix() {
        let mut s = Stash::new();
        // depth 3, leaf target 0b101
        s.push(blk(1, 0b101)); // shares all 3 levels
        s.push(blk(2, 0b100)); // shares 2 levels
        s.push(blk(3, 0b001)); // shares 0 levels
        let full_match = s.drain_for_bucket(0b101, 3, 3, 4);
        assert_eq!(full_match.len(), 1);
        assert_eq!(full_match[0].id, 1);
        // Now level 2: block 2 (prefix 10) qualifies.
        let lvl2 = s.drain_for_bucket(0b101, 2, 3, 4);
        assert_eq!(lvl2.len(), 1);
        assert_eq!(lvl2[0].id, 2);
        // Level 0: everything qualifies.
        let lvl0 = s.drain_for_bucket(0b101, 0, 3, 4);
        assert_eq!(lvl0.len(), 1);
        assert_eq!(lvl0[0].id, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_respects_max() {
        let mut s = Stash::new();
        for i in 0..10 {
            s.push(blk(i, 0));
        }
        let got = s.drain_for_bucket(0, 0, 3, 4);
        assert_eq!(got.len(), 4);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn get_mut_modifies_in_place() {
        let mut s = Stash::new();
        s.push(blk(7, 1));
        s.get_mut(7).unwrap().payload[0] = 0xFF;
        assert_eq!(s.take(7).unwrap().payload[0], 0xFF);
    }
}
