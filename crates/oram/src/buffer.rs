//! The buffer ORAM (paper §4.3, Figure 5).
//!
//! Each round, the `k` entries read from the main ORAM move into this
//! smaller DRAM-resident ORAM. Its blocks are **twice** the main-ORAM block
//! size: the first half holds the entry value served to users, the second
//! half accumulates the (pre-processed) gradients, and an extra slot
//! accumulates the FedAvg sample count `n_t = Σ n_t^c`. At round end the
//! accumulated state streams back out for the post-aggregation function and
//! the main-ORAM update.
//!
//! The buffer ORAM is sized for the worst-case working set (max clients per
//! round × max features per client — both public protocol parameters), so
//! it can never overflow; its capacity is reconfigurable between rounds.

use fedora_crypto::aead::Key;
use fedora_storage::profile::DramProfile;
use fedora_storage::stats::DeviceStats;
use fedora_storage::{ByteReader, ByteWriter, CodecError};
use fedora_telemetry::{Counter, Registry};
use rand::Rng;

use crate::geometry::TreeGeometry;
use crate::path_oram::PathOram;
use crate::store::{BucketStore, DramBucketStore};
use crate::OramError;

/// Bytes of aggregation metadata per buffer block (the `n` accumulator).
pub const AGG_META_BYTES: usize = 8;

/// Errors specific to buffer ORAM round management.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferError {
    /// More entries were loaded than the configured capacity.
    CapacityExceeded {
        /// Configured capacity.
        capacity: usize,
    },
    /// An entry id not loaded this round was requested.
    NotLoaded {
        /// The offending entry id.
        id: u64,
    },
    /// Underlying ORAM failure.
    Oram(OramError),
}

impl From<OramError> for BufferError {
    fn from(e: OramError) -> Self {
        BufferError::Oram(e)
    }
}

impl core::fmt::Display for BufferError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BufferError::CapacityExceeded { capacity } => {
                write!(f, "buffer ORAM capacity {capacity} exceeded")
            }
            BufferError::NotLoaded { id } => write!(f, "entry {id} not loaded this round"),
            BufferError::Oram(e) => write!(f, "buffer ORAM backend: {e}"),
        }
    }
}

impl std::error::Error for BufferError {}

/// An entry drained from the buffer ORAM at round end.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregatedEntry {
    /// The embedding row id.
    pub id: u64,
    /// The entry value as served to users (f32 vector bytes).
    pub entry: Vec<u8>,
    /// The accumulated gradient Σ Pre(Δθᶜ), as f32s.
    pub gradient: Vec<f32>,
    /// The accumulated weight `n_t` (e.g. Σ sample counts).
    pub weight: f64,
}

/// Telemetry handles for the buffer ORAM's per-round protocol steps.
#[derive(Clone, Debug, Default)]
struct BufferTelemetry {
    registry: Registry,
    loads: Counter,
    serves: Counter,
    aggregates: Counter,
}

impl BufferTelemetry {
    fn attach(registry: &Registry) -> Self {
        BufferTelemetry {
            registry: registry.clone(),
            loads: registry.counter("oram.buffer.loads"),
            serves: registry.counter("oram.buffer.serves"),
            aggregates: registry.counter("oram.buffer.aggregates"),
        }
    }
}

/// The buffer ORAM.
#[derive(Clone)]
pub struct BufferOram {
    oram: PathOram<DramBucketStore>,
    key: Key,
    entry_bytes: usize,
    capacity: usize,
    /// id → slot mapping for the current round (`None` marks a dummy
    /// entry from an FDP padding access). Lives inside the secure
    /// controller (its DRAM footprint is the position map the latency model
    /// charges for).
    loaded: Vec<(Option<u64>, u64)>,
    telemetry: BufferTelemetry,
}

/// Everything drained from the buffer ORAM at round end.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrainedRound {
    /// The real entries with their accumulated gradients.
    pub entries: Vec<AggregatedEntry>,
    /// How many dummy entries were drained (they flow back to the main
    /// ORAM as dummy insertions, step ⑦).
    pub dummy_count: usize,
}

impl BufferOram {
    /// Creates a buffer ORAM able to hold `capacity` entries of
    /// `entry_bytes` each per round.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `entry_bytes` is not a multiple of 4
    /// (entries are f32 vectors).
    pub fn new<R: Rng>(capacity: usize, entry_bytes: usize, key: Key, rng: &mut R) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert_eq!(entry_bytes % 4, 0, "entries are f32 vectors");
        // Buffer blocks are 2× entry size + aggregation metadata (§4.3).
        let block_bytes = 2 * entry_bytes + AGG_META_BYTES;
        let geo = TreeGeometry::for_blocks(capacity as u64, block_bytes, 4);
        let store = DramBucketStore::new(geo, key.clone(), DramProfile::default());
        BufferOram {
            oram: PathOram::new(store, capacity as u64, rng),
            key,
            entry_bytes,
            capacity,
            loaded: Vec::new(),
            telemetry: BufferTelemetry::default(),
        }
    }

    /// Attaches telemetry: load/serve/aggregate counters under the
    /// `oram.buffer` prefix plus the backing DRAM store's traffic. Survives
    /// [`reconfigure`](Self::reconfigure).
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = BufferTelemetry::attach(registry);
        self.oram.store_mut().set_telemetry(registry);
    }

    /// Re-provisions the buffer ORAM for a new per-round capacity — the
    /// §4.3 software reconfiguration used when the protocol's maximum
    /// clients-per-round or features-per-client change. Only legal between
    /// rounds (the working set must be empty).
    ///
    /// # Errors
    ///
    /// [`BufferError::CapacityExceeded`] if entries are still loaded (the
    /// round must be drained first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn reconfigure<R: Rng>(&mut self, capacity: usize, rng: &mut R) -> Result<(), BufferError> {
        assert!(capacity > 0, "capacity must be positive");
        if !self.loaded.is_empty() {
            return Err(BufferError::CapacityExceeded {
                capacity: self.capacity,
            });
        }
        let block_bytes = 2 * self.entry_bytes + AGG_META_BYTES;
        let geo = TreeGeometry::for_blocks(capacity as u64, block_bytes, 4);
        let window = self.oram.store().decrypt_window_active();
        let store = DramBucketStore::new(geo, self.key.clone(), DramProfile::default());
        self.oram = PathOram::new(store, capacity as u64, rng);
        self.oram
            .store_mut()
            .set_telemetry(&self.telemetry.registry);
        self.oram.store_mut().set_decrypt_window(window);
        self.capacity = capacity;
        Ok(())
    }

    /// Enables (or disables) the backing DRAM store's decrypt window — a
    /// plaintext mirror of already-authenticated buckets that skips the
    /// AEAD on re-reads without changing a single DRAM access. Survives
    /// [`reconfigure`](Self::reconfigure) (the mirror restarts empty).
    pub fn set_decrypt_window(&mut self, enabled: bool) {
        self.oram.store_mut().set_decrypt_window(enabled);
    }

    /// The per-round capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entry payload size in bytes.
    pub fn entry_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// DRAM statistics of the backing store.
    pub fn device_stats(&self) -> DeviceStats {
        self.oram.store().device_stats()
    }

    /// DRAM capacity the buffer ORAM occupies.
    pub fn dram_bytes(&self) -> u64 {
        self.oram.store().dram().capacity_bytes()
    }

    /// Number of entries loaded this round.
    pub fn loaded_len(&self) -> usize {
        self.loaded.len()
    }

    /// Whether `id` is loaded this round.
    pub fn is_loaded(&self, id: u64) -> bool {
        self.loaded.iter().any(|(eid, _)| *eid == Some(id))
    }

    fn slot_of(&self, id: u64) -> Result<u64, BufferError> {
        self.loaded
            .iter()
            .find(|(eid, _)| *eid == Some(id))
            .map(|(_, slot)| *slot)
            .ok_or(BufferError::NotLoaded { id })
    }

    fn encode(entry: &[u8], gradient: &[f32], weight: f64) -> Vec<u8> {
        let mut block = Vec::with_capacity(entry.len() * 2 + AGG_META_BYTES);
        block.extend_from_slice(entry);
        for g in gradient {
            block.extend_from_slice(&g.to_le_bytes());
        }
        block.extend_from_slice(&(weight as f32).to_le_bytes());
        block.extend_from_slice(&[0u8; 4]);
        block
    }

    fn decode(&self, id: u64, block: &[u8]) -> AggregatedEntry {
        let entry = block[..self.entry_bytes].to_vec();
        let gradient: Vec<f32> = block[self.entry_bytes..2 * self.entry_bytes]
            .chunks_exact(4)
            .map(crate::convert::le_f32)
            .collect();
        let weight =
            crate::convert::le_f32(&block[2 * self.entry_bytes..2 * self.entry_bytes + 4]) as f64;
        AggregatedEntry {
            id,
            entry,
            gradient,
            weight,
        }
    }

    /// Loads one entry fetched from the main ORAM (step ③): places it in
    /// the first free buffer slot with a zeroed aggregation half.
    ///
    /// # Errors
    ///
    /// [`BufferError::CapacityExceeded`] when the round's working set is
    /// larger than the provisioned capacity.
    ///
    /// # Panics
    ///
    /// Panics if `entry.len()` disagrees with the configured entry size.
    pub fn load_entry<R: Rng>(
        &mut self,
        id: u64,
        entry: &[u8],
        rng: &mut R,
    ) -> Result<(), BufferError> {
        assert_eq!(entry.len(), self.entry_bytes, "entry size mismatch");
        if self.loaded.len() >= self.capacity {
            return Err(BufferError::CapacityExceeded {
                capacity: self.capacity,
            });
        }
        let _trace = self
            .telemetry
            .registry
            .trace_span_with("buffer.load", &[("kind", "entry".into())]);
        let slot = self.loaded.len() as u64;
        let zeros = vec![0f32; self.entry_bytes / 4];
        let block = Self::encode(entry, &zeros, 0.0);
        self.oram.write(slot, block, rng)?;
        self.loaded.push((Some(id), slot));
        self.telemetry.loads.incr();
        Ok(())
    }

    /// Loads a dummy entry — the `X` of Figure 4, produced when the FDP
    /// mechanism padded the round (`k > k_union`). The buffer ORAM access
    /// is real (same observable cost as a genuine entry); the slot is
    /// drained back to the main ORAM as a dummy insertion at round end.
    ///
    /// # Errors
    ///
    /// [`BufferError::CapacityExceeded`] when the round overflows.
    pub fn load_dummy<R: Rng>(&mut self, rng: &mut R) -> Result<(), BufferError> {
        if self.loaded.len() >= self.capacity {
            return Err(BufferError::CapacityExceeded {
                capacity: self.capacity,
            });
        }
        let _trace = self
            .telemetry
            .registry
            .trace_span_with("buffer.load", &[("kind", "dummy".into())]);
        let slot = self.loaded.len() as u64;
        let zeros = vec![0f32; self.entry_bytes / 4];
        let entry = vec![0u8; self.entry_bytes];
        let block = Self::encode(&entry, &zeros, 0.0);
        self.oram.write(slot, block, rng)?;
        self.loaded.push((None, slot));
        self.telemetry.loads.incr();
        Ok(())
    }

    /// Serves one user download request (step ④): an ORAM read returning
    /// the entry value. One access per *request* (K per round), so serving
    /// leaks nothing about duplicate structure.
    ///
    /// # Errors
    ///
    /// [`BufferError::NotLoaded`] if the entry was dropped by the FDP
    /// mechanism this round (callers then apply their lost-entry strategy).
    pub fn serve<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<Vec<u8>, BufferError> {
        let slot = self.slot_of(id)?;
        let _trace = self.telemetry.registry.trace_span("buffer.serve");
        let block = self.oram.read(slot, rng)?;
        self.telemetry.serves.incr();
        Ok(block[..self.entry_bytes].to_vec())
    }

    /// Accumulates one user's (already pre-processed) gradient into the
    /// entry's aggregation half and adds `weight` to its `n` accumulator
    /// (step ⑥). One ORAM access per uploaded gradient.
    ///
    /// # Errors
    ///
    /// [`BufferError::NotLoaded`] for entries not in this round's set.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length disagrees with the entry size.
    pub fn aggregate<R: Rng>(
        &mut self,
        id: u64,
        gradient: &[f32],
        weight: f64,
        rng: &mut R,
    ) -> Result<(), BufferError> {
        assert_eq!(
            gradient.len() * 4,
            self.entry_bytes,
            "gradient size mismatch"
        );
        let slot = self.slot_of(id)?;
        let _trace = self.telemetry.registry.trace_span("buffer.aggregate");
        let block = self.oram.read(slot, rng)?;
        let mut agg = self.decode(id, &block);
        for (a, g) in agg.gradient.iter_mut().zip(gradient) {
            *a += *g;
        }
        agg.weight += weight;
        let new_block = Self::encode(&agg.entry, &agg.gradient, agg.weight);
        self.oram.write(slot, new_block, rng)?;
        self.telemetry.aggregates.incr();
        Ok(())
    }

    /// Serializes the buffer ORAM's full state — round working set,
    /// controller, and encrypted DRAM store image — into `w` for
    /// checkpointing. The AEAD key is *not* serialized (it is
    /// config-derived; checkpoints must not leak key material).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.entry_bytes as u64);
        w.put_u64(self.loaded.len() as u64);
        for (id, slot) in &self.loaded {
            match id {
                Some(v) => {
                    w.put_bool(true);
                    w.put_u64(*v);
                }
                None => {
                    w.put_bool(false);
                    w.put_u64(0);
                }
            }
            w.put_u64(*slot);
        }
        self.oram.encode_controller_state(w);
        self.oram.store().encode_state(w);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a buffer ORAM constructed with the same capacity, entry size, and
    /// key.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a shape mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        if r.get_u64()? != self.capacity as u64 {
            return Err(CodecError::Invalid("buffer-oram capacity mismatch"));
        }
        if r.get_u64()? != self.entry_bytes as u64 {
            return Err(CodecError::Invalid("buffer-oram entry size mismatch"));
        }
        let count = r.get_u64()? as usize;
        if count > self.capacity {
            return Err(CodecError::Invalid("buffer-oram working set over capacity"));
        }
        let mut loaded = Vec::with_capacity(count);
        for _ in 0..count {
            let is_real = r.get_bool()?;
            let id = r.get_u64()?;
            let slot = r.get_u64()?;
            loaded.push((is_real.then_some(id), slot));
        }
        self.loaded = loaded;
        self.oram.decode_controller_state(r)?;
        self.oram.store_mut().decode_state(r)?;
        Ok(())
    }

    /// Drains every loaded entry with its accumulated gradient (step ⑦
    /// input), clearing the round's working set. Dummy slots are read too
    /// (same observable cost) and reported as a count.
    ///
    /// # Errors
    ///
    /// Backend ORAM errors propagate.
    pub fn drain_round<R: Rng>(&mut self, rng: &mut R) -> Result<DrainedRound, BufferError> {
        let _trace = self
            .telemetry
            .registry
            .trace_span_with("buffer.drain", &[("slots", self.loaded.len().into())]);
        let loaded = std::mem::take(&mut self.loaded);
        let mut out = DrainedRound::default();
        for (id, slot) in loaded {
            let block = self.oram.read(slot, rng)?;
            match id {
                Some(id) => out.entries.push(self.decode(id, &block)),
                None => out.dummy_count += 1,
            }
        }
        Ok(out)
    }
}

impl core::fmt::Debug for BufferOram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BufferOram")
            .field("capacity", &self.capacity)
            .field("entry_bytes", &self.entry_bytes)
            .field("loaded", &self.loaded.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn buffer(capacity: usize) -> (BufferOram, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let b = BufferOram::new(capacity, 16, Key::from_bytes([4; 32]), &mut rng);
        (b, rng)
    }

    fn f32s(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn entry(vals: [f32; 4]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn load_and_serve() {
        let (mut b, mut rng) = buffer(8);
        b.load_entry(42, &entry([1.0, 2.0, 3.0, 4.0]), &mut rng)
            .unwrap();
        let got = b.serve(42, &mut rng).unwrap();
        assert_eq!(f32s(&got), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn serve_unloaded_fails() {
        let (mut b, mut rng) = buffer(8);
        assert_eq!(b.serve(9, &mut rng), Err(BufferError::NotLoaded { id: 9 }));
    }

    #[test]
    fn capacity_enforced() {
        let (mut b, mut rng) = buffer(2);
        b.load_entry(0, &entry([0.0; 4]), &mut rng).unwrap();
        b.load_entry(1, &entry([0.0; 4]), &mut rng).unwrap();
        assert_eq!(
            b.load_entry(2, &entry([0.0; 4]), &mut rng),
            Err(BufferError::CapacityExceeded { capacity: 2 })
        );
    }

    #[test]
    fn aggregation_accumulates() {
        let (mut b, mut rng) = buffer(4);
        b.load_entry(7, &entry([1.0, 1.0, 1.0, 1.0]), &mut rng)
            .unwrap();
        b.aggregate(7, &[0.5, 0.0, -0.5, 1.0], 2.0, &mut rng)
            .unwrap();
        b.aggregate(7, &[0.5, 1.0, 0.5, -1.0], 3.0, &mut rng)
            .unwrap();
        let drained = b.drain_round(&mut rng).unwrap();
        assert_eq!(drained.entries.len(), 1);
        assert_eq!(drained.dummy_count, 0);
        let e = &drained.entries[0];
        assert_eq!(e.id, 7);
        assert_eq!(f32s(&e.entry), vec![1.0; 4]);
        assert_eq!(e.gradient, vec![1.0, 1.0, 0.0, 0.0]);
        assert!((e.weight - 5.0).abs() < 1e-6);
    }

    #[test]
    fn drain_clears_round() {
        let (mut b, mut rng) = buffer(4);
        b.load_entry(1, &entry([0.0; 4]), &mut rng).unwrap();
        let first = b.drain_round(&mut rng).unwrap();
        assert_eq!(first.entries.len(), 1);
        assert_eq!(b.loaded_len(), 0);
        assert!(b.drain_round(&mut rng).unwrap().entries.is_empty());
        // Slots are reusable next round.
        b.load_entry(2, &entry([9.0, 0.0, 0.0, 0.0]), &mut rng)
            .unwrap();
        assert_eq!(f32s(&b.serve(2, &mut rng).unwrap())[0], 9.0);
    }

    #[test]
    fn duplicate_serves_allowed() {
        // K requests > k_union entries: duplicates hit the same slot.
        let (mut b, mut rng) = buffer(4);
        b.load_entry(5, &entry([2.0, 0.0, 0.0, 0.0]), &mut rng)
            .unwrap();
        for _ in 0..10 {
            assert_eq!(f32s(&b.serve(5, &mut rng).unwrap())[0], 2.0);
        }
    }

    #[test]
    fn reconfigure_between_rounds() {
        let (mut b, mut rng) = buffer(4);
        b.load_entry(1, &entry([1.0, 0.0, 0.0, 0.0]), &mut rng)
            .unwrap();
        // Mid-round reconfiguration is refused.
        assert!(b.reconfigure(16, &mut rng).is_err());
        b.drain_round(&mut rng).unwrap();
        b.reconfigure(16, &mut rng).unwrap();
        assert_eq!(b.capacity(), 16);
        // The bigger buffer works.
        for id in 0..16u64 {
            b.load_entry(id, &entry([0.0; 4]), &mut rng).unwrap();
        }
        assert_eq!(b.loaded_len(), 16);
    }

    #[test]
    fn dummies_tracked_and_drained() {
        let (mut b, mut rng) = buffer(4);
        b.load_entry(1, &entry([1.0, 0.0, 0.0, 0.0]), &mut rng)
            .unwrap();
        b.load_dummy(&mut rng).unwrap();
        b.load_dummy(&mut rng).unwrap();
        assert_eq!(b.loaded_len(), 3);
        assert!(b.is_loaded(1));
        let d = b.drain_round(&mut rng).unwrap();
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.dummy_count, 2);
    }

    #[test]
    fn dummies_count_against_capacity() {
        let (mut b, mut rng) = buffer(2);
        b.load_dummy(&mut rng).unwrap();
        b.load_dummy(&mut rng).unwrap();
        assert_eq!(
            b.load_dummy(&mut rng),
            Err(BufferError::CapacityExceeded { capacity: 2 })
        );
    }

    #[test]
    fn blocks_are_double_size_plus_meta() {
        let (b, _) = buffer(4);
        let geo = b.oram.store().geometry();
        assert_eq!(geo.block_bytes(), 2 * 16 + AGG_META_BYTES);
    }

    #[test]
    fn telemetry_counts_round_steps_and_survives_reconfigure() {
        let registry = Registry::new();
        let (mut b, mut rng) = buffer(4);
        b.set_telemetry(&registry);
        b.load_entry(1, &entry([1.0, 0.0, 0.0, 0.0]), &mut rng)
            .unwrap();
        b.load_dummy(&mut rng).unwrap();
        b.serve(1, &mut rng).unwrap();
        b.aggregate(1, &[1.0, 0.0, 0.0, 0.0], 1.0, &mut rng)
            .unwrap();
        b.drain_round(&mut rng).unwrap();
        b.reconfigure(8, &mut rng).unwrap();
        b.load_entry(2, &entry([0.0; 4]), &mut rng).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("oram.buffer.loads"), Some(3));
        assert_eq!(snap.counter("oram.buffer.serves"), Some(1));
        assert_eq!(snap.counter("oram.buffer.aggregates"), Some(1));
        // The reconfigured store keeps feeding device telemetry.
        assert!(snap.counter("dram.store.bytes_written").unwrap_or(0) > 0);
    }

    #[test]
    fn weight_supports_dropout_semantics() {
        // A user "drops out": their gradient is simply never aggregated;
        // n_t reflects only survivors (dynamic adjustment of Eq. 1).
        let (mut b, mut rng) = buffer(4);
        b.load_entry(3, &entry([0.0; 4]), &mut rng).unwrap();
        b.aggregate(3, &[1.0, 0.0, 0.0, 0.0], 1.0, &mut rng)
            .unwrap();
        // Second user drops out: no call.
        let e = &b.drain_round(&mut rng).unwrap().entries[0];
        assert!((e.weight - 1.0).abs() < 1e-6);
    }
}
