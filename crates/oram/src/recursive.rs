//! Recursive position map (Stefanov et al. §4; paper §2.3).
//!
//! A position map for `N` blocks needs `8N` bytes. When that does not fit
//! the trusted area, Path ORAM stores the map itself in a smaller ORAM,
//! recursively: each level's position map packs many child positions per
//! block, shrinking by the packing factor until the top map is small
//! enough to hold directly (in FEDORA's case, in DRAM next to the
//! controller, or ultimately in the scratchpad).
//!
//! FEDORA's prototype keeps the position map flat in DRAM; this module
//! provides the recursive construction for deployments where even the map
//! must be oblivious, and for apples-to-apples comparisons with
//! hardware-style ORAM stacks.

use fedora_crypto::aead::Key;
use fedora_storage::profile::DramProfile;
use fedora_storage::stats::DeviceStats;
use rand::Rng;

use crate::geometry::TreeGeometry;
use crate::path_oram::PathOram;
use crate::store::{BucketStore, DramBucketStore};
use crate::OramError;

/// Positions (u64 leaves) packed per recursion block.
pub const POSITIONS_PER_BLOCK: usize = 8;

/// Below this many entries the map is held directly (the "on-chip" base
/// case).
pub const DIRECT_THRESHOLD: u64 = 64;

/// A position map stored in a stack of recursive Path ORAMs.
///
/// `get`/`set` walk the stack from the base map down: level `i`'s ORAM
/// holds the positions of level `i+1`'s blocks. Every lookup costs one
/// ORAM access per level — the classic O(log²N) recursion cost that
/// FEDORA avoids by keeping its map flat in DRAM (and that this type makes
/// measurable).
pub struct RecursivePositionMap {
    /// Recursion levels, outermost (largest) last. Each holds packed
    /// positions of the level after it; the *last* level holds the real
    /// block positions.
    levels: Vec<PathOram<DramBucketStore>>,
    /// The base map, small enough to hold directly.
    base: Vec<u64>,
    num_positions: u64,
    num_leaves: u64,
    accesses: u64,
}

impl RecursivePositionMap {
    /// Builds a recursive map for `num_positions` blocks over
    /// `num_leaves` leaves, initialized uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `num_positions == 0` or `num_leaves == 0`.
    pub fn new<R: Rng>(num_positions: u64, num_leaves: u64, key: Key, rng: &mut R) -> Self {
        assert!(num_positions > 0, "need at least one position");
        assert!(num_leaves > 0, "need at least one leaf");

        // Plan the level sizes, outermost first.
        let mut sizes = Vec::new();
        let mut n = num_positions;
        while n > DIRECT_THRESHOLD {
            sizes.push(n);
            n = n.div_ceil(POSITIONS_PER_BLOCK as u64);
        }
        let base_len = n;

        // The real positions.
        let positions: Vec<u64> = (0..num_positions)
            .map(|_| rng.gen_range(0..num_leaves))
            .collect();

        // Build levels from the innermost (base) outward. Level `i` data
        // is consumed by level `i-1`'s ORAM; the outermost level's data is
        // the real position vector.
        let mut levels: Vec<PathOram<DramBucketStore>> = Vec::with_capacity(sizes.len());
        // Values stored at each level, outermost first.
        let mut level_values: Vec<Vec<u64>> = Vec::with_capacity(sizes.len());
        if !sizes.is_empty() {
            level_values.push(positions.clone());
            for w in sizes.windows(2) {
                // Positions of level-(i) blocks live in level (i+1); they
                // are the *ORAM leaves* of those blocks, generated when we
                // build each ORAM below. Placeholder for now.
                level_values.push(vec![0u64; w[1] as usize * POSITIONS_PER_BLOCK]);
            }
        }

        let mut base = Vec::new();
        if sizes.is_empty() {
            base = positions;
        } else {
            // Construct outermost-to-innermost, recording each ORAM's own
            // position assignments into the next level's value array.
            for (i, &size) in sizes.iter().enumerate() {
                let num_blocks = size.div_ceil(POSITIONS_PER_BLOCK as u64);
                let block_bytes = POSITIONS_PER_BLOCK * 8;
                let geo = TreeGeometry::for_blocks(num_blocks.max(1), block_bytes, 4);
                let store = DramBucketStore::new(
                    geo,
                    key.derive_subkey(&format!("posmap-level-{i}")),
                    DramProfile::default(),
                );
                let mut oram = PathOram::new(store, num_blocks, rng);
                // Write the level's values into the ORAM, packed.
                let values = &level_values[i];
                for b in 0..num_blocks {
                    let mut payload = vec![0u8; block_bytes];
                    for s in 0..POSITIONS_PER_BLOCK {
                        let idx = b as usize * POSITIONS_PER_BLOCK + s;
                        let v = values.get(idx).copied().unwrap_or(0);
                        payload[s * 8..(s + 1) * 8].copy_from_slice(&v.to_le_bytes());
                    }
                    #[allow(clippy::expect_used)] // construction: sized for num_blocks
                    oram.write(b, payload, rng).expect("provisioned");
                }
                // Record where each block of THIS oram now lives, for the
                // next (smaller) level.
                if i + 1 < sizes.len() {
                    let next = &mut level_values[i + 1];
                    for b in 0..num_blocks {
                        next[b as usize] = oram.position_of(b);
                    }
                } else {
                    base = (0..num_blocks).map(|b| oram.position_of(b)).collect();
                    base.resize(base_len.max(num_blocks) as usize, 0);
                }
                levels.push(oram);
            }
        }

        RecursivePositionMap {
            levels,
            base,
            num_positions,
            num_leaves,
            accesses: 0,
        }
    }

    /// Number of positions tracked.
    pub fn len(&self) -> u64 {
        self.num_positions
    }

    /// Whether the map is empty (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.num_positions == 0
    }

    /// Number of recursion levels (0 = direct map).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total ORAM accesses performed across all levels.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Aggregate DRAM statistics over all recursion levels.
    pub fn device_stats(&self) -> DeviceStats {
        self.levels
            .iter()
            .map(|l| l.store().device_stats())
            .fold(DeviceStats::new(), |acc, s| acc.merged(&s))
    }

    fn read_packed<R: Rng>(
        &mut self,
        level: usize,
        block: u64,
        slot: usize,
        rng: &mut R,
    ) -> Result<u64, OramError> {
        self.accesses += 1;
        let payload = self.levels[level].read(block, rng)?;
        Ok(crate::convert::le_u64(&payload[slot * 8..(slot + 1) * 8]))
    }

    fn write_packed<R: Rng>(
        &mut self,
        level: usize,
        block: u64,
        slot: usize,
        value: u64,
        rng: &mut R,
    ) -> Result<(), OramError> {
        self.accesses += 1;
        let mut payload = self.levels[level].read(block, rng)?;
        payload[slot * 8..(slot + 1) * 8].copy_from_slice(&value.to_le_bytes());
        // The read displaced the block; write must target the *new*
        // position, which PathOram handles internally by id.
        self.levels[level].write(block, payload, rng)?;
        Ok(())
    }

    /// Walks the recursion to `id`'s leaf. Each level lookup also
    /// *remaps* that level's block (the ORAM access does it), and the
    /// parent level is updated with the new position — the standard
    /// recursive-ORAM maintenance.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for bad ids; backend errors
    /// propagate.
    pub fn get<R: Rng>(&mut self, id: u64, rng: &mut R) -> Result<u64, OramError> {
        if id >= self.num_positions {
            return Err(OramError::BlockOutOfRange {
                id,
                capacity: self.num_positions,
            });
        }
        if self.levels.is_empty() {
            return Ok(self.base[id as usize]);
        }
        // Maintain level block positions top-down: each level's ORAM
        // tracks its own positions internally (PathOram has its own flat
        // map); the stack here demonstrates the *data* recursion. We walk
        // outermost level 0 directly by block index.
        let block = id / POSITIONS_PER_BLOCK as u64;
        let slot = (id % POSITIONS_PER_BLOCK as u64) as usize;
        // Touch every inner level to model the recursion cost (each holds
        // the outer level's positions in packed blocks).
        for level in (1..self.levels.len()).rev() {
            let inner_block = block / POSITIONS_PER_BLOCK as u64;
            let inner_slot = (block % POSITIONS_PER_BLOCK as u64) as usize;
            let capped_block = inner_block.min(self.levels[level].num_blocks() - 1);
            let _ = self.read_packed(level, capped_block, inner_slot, rng)?;
        }
        self.read_packed(0, block, slot, rng)
    }

    /// Updates `id`'s leaf.
    ///
    /// # Errors
    ///
    /// As for [`get`](Self::get); additionally validates the leaf range.
    pub fn set<R: Rng>(&mut self, id: u64, leaf: u64, rng: &mut R) -> Result<(), OramError> {
        if id >= self.num_positions {
            return Err(OramError::BlockOutOfRange {
                id,
                capacity: self.num_positions,
            });
        }
        assert!(leaf < self.num_leaves, "leaf {leaf} out of range");
        if self.levels.is_empty() {
            self.base[id as usize] = leaf;
            return Ok(());
        }
        let block = id / POSITIONS_PER_BLOCK as u64;
        let slot = (id % POSITIONS_PER_BLOCK as u64) as usize;
        for level in (1..self.levels.len()).rev() {
            let inner_block = block / POSITIONS_PER_BLOCK as u64;
            let inner_slot = (block % POSITIONS_PER_BLOCK as u64) as usize;
            let capped_block = inner_block.min(self.levels[level].num_blocks() - 1);
            let _ = self.read_packed(level, capped_block, inner_slot, rng)?;
        }
        self.write_packed(0, block, slot, leaf, rng)
    }
}

impl core::fmt::Debug for RecursivePositionMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RecursivePositionMap")
            .field("positions", &self.num_positions)
            .field("levels", &self.levels.len())
            .field("base_len", &self.base.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn map(n: u64, leaves: u64, seed: u64) -> (RecursivePositionMap, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = RecursivePositionMap::new(n, leaves, Key::from_bytes([8; 32]), &mut rng);
        (m, rng)
    }

    #[test]
    fn small_map_is_direct() {
        let (mut m, mut rng) = map(32, 16, 1);
        assert_eq!(m.num_levels(), 0);
        m.set(5, 7, &mut rng).unwrap();
        assert_eq!(m.get(5, &mut rng).unwrap(), 7);
    }

    #[test]
    fn large_map_recurses() {
        let (m, _) = map(4096, 1024, 2);
        assert!(m.num_levels() >= 2, "4096/8 = 512 > 64 still needs a level");
    }

    #[test]
    fn set_get_roundtrip_across_recursion() {
        let (mut m, mut rng) = map(1024, 256, 3);
        for id in (0..1024).step_by(37) {
            m.set(id, id % 256, &mut rng).unwrap();
        }
        for id in (0..1024).step_by(37) {
            assert_eq!(m.get(id, &mut rng).unwrap(), id % 256, "id {id}");
        }
    }

    #[test]
    fn initial_positions_in_range() {
        let (mut m, mut rng) = map(512, 64, 4);
        for id in 0..512 {
            assert!(m.get(id, &mut rng).unwrap() < 64);
        }
    }

    #[test]
    fn accesses_scale_with_levels() {
        let (mut m1, mut rng1) = map(512, 64, 5); // 1+ levels
        let (mut m0, mut rng0) = map(32, 64, 6); // direct
        let a1_before = m1.accesses();
        m1.get(0, &mut rng1).unwrap();
        let cost_recursive = m1.accesses() - a1_before;
        let a0_before = m0.accesses();
        m0.get(0, &mut rng0).unwrap();
        let cost_direct = m0.accesses() - a0_before;
        assert!(cost_recursive >= 1);
        assert_eq!(cost_direct, 0, "direct map costs no ORAM accesses");
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut m, mut rng) = map(128, 32, 7);
        assert!(matches!(
            m.get(128, &mut rng),
            Err(OramError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            m.set(200, 0, &mut rng),
            Err(OramError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn dram_traffic_accounted() {
        let (mut m, mut rng) = map(1024, 128, 8);
        let before = m.device_stats();
        for id in 0..32 {
            m.get(id, &mut rng).unwrap();
        }
        let after = m.device_stats();
        assert!(after.bytes_read > before.bytes_read);
    }
}
