//! Data blocks: one embedding-table entry plus its ORAM bookkeeping.

/// A data block: the unit the ORAM moves around. In FEDORA one block is one
/// embedding-table entry (64–256 bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The logical block id (embedding row index).
    pub id: u64,
    /// The leaf this block is currently assigned to.
    pub leaf: u64,
    /// The payload (embedding vector bytes).
    pub payload: Vec<u8>,
}

impl Block {
    /// Creates a block.
    pub fn new(id: u64, leaf: u64, payload: Vec<u8>) -> Self {
        Block { id, leaf, payload }
    }

    /// Creates a zero-filled block.
    pub fn zeroed(id: u64, leaf: u64, block_bytes: usize) -> Self {
        Block {
            id,
            leaf,
            payload: vec![0u8; block_bytes],
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let b = Block::new(3, 7, vec![1, 2, 3]);
        assert_eq!(b.id, 3);
        assert_eq!(b.leaf, 7);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn zeroed_is_zero() {
        let b = Block::zeroed(1, 0, 16);
        assert_eq!(b.payload, vec![0u8; 16]);
    }
}
