//! Buckets: fixed-arity containers of block slots with (de)serialization.
//!
//! Each slot carries metadata — a valid flag, the block id, and the block's
//! assigned leaf — followed by the payload. The whole bucket serializes to a
//! fixed-size byte array that is encrypted as one unit and mapped onto whole
//! SSD pages.

use crate::block::Block;

/// Serialized bytes of one slot's metadata: id (8) + leaf (8) + valid (1) +
/// padding (7) = 24.
pub const SLOT_META_BYTES: usize = 24;

/// One slot of a bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Whether this slot currently holds a live block.
    pub valid: bool,
    /// The block occupying the slot (contents are garbage when `!valid`,
    /// mirroring the real layout where invalid slots hold stale bytes).
    pub block: Block,
}

impl Slot {
    /// An invalid (empty) slot of the right payload size.
    pub fn empty(block_bytes: usize) -> Self {
        Slot {
            valid: false,
            block: Block::zeroed(0, 0, block_bytes),
        }
    }
}

/// A bucket: exactly `Z` slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bucket {
    slots: Vec<Slot>,
    block_bytes: usize,
}

impl Bucket {
    /// Creates an empty bucket with `z` slots of `block_bytes` payloads.
    pub fn empty(z: usize, block_bytes: usize) -> Self {
        Bucket {
            slots: vec![Slot::empty(block_bytes); z],
            block_bytes,
        }
    }

    /// Number of slots.
    pub fn z(&self) -> usize {
        self.slots.len()
    }

    /// Immutable slot access.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Mutable slot access.
    pub fn slots_mut(&mut self) -> &mut [Slot] {
        &mut self.slots
    }

    /// Iterates over the valid blocks.
    pub fn valid_blocks(&self) -> impl Iterator<Item = &Block> {
        self.slots.iter().filter(|s| s.valid).map(|s| &s.block)
    }

    /// Number of valid blocks.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Inserts `block` into the first free slot. Returns `false` (leaving
    /// the bucket unchanged) when full.
    ///
    /// # Panics
    ///
    /// Panics if the payload size disagrees with the bucket's block size.
    pub fn try_insert(&mut self, block: Block) -> bool {
        assert_eq!(
            block.payload.len(),
            self.block_bytes,
            "payload size mismatch"
        );
        for slot in &mut self.slots {
            if !slot.valid {
                *slot = Slot { valid: true, block };
                return true;
            }
        }
        false
    }

    /// Resets every slot to the empty state (`valid = false`, zeroed id,
    /// leaf, and payload) without reallocating — byte-identical to a fresh
    /// [`Bucket::empty`] of the same shape, so scratch buckets can be
    /// reused across evictions.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
            slot.block.id = 0;
            slot.block.leaf = 0;
            slot.block.payload.fill(0);
        }
    }

    /// Removes and returns the block with `id`, if present.
    pub fn take(&mut self, id: u64) -> Option<Block> {
        for slot in &mut self.slots {
            if slot.valid && slot.block.id == id {
                slot.valid = false;
                return Some(slot.block.clone());
            }
        }
        None
    }

    /// Drains every valid block, leaving the bucket empty.
    pub fn drain_valid(&mut self) -> Vec<Block> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if slot.valid {
                out.push(slot.block.clone());
                slot.valid = false;
            }
        }
        out
    }

    /// Serializes to the fixed `z · (SLOT_META_BYTES + block_bytes)` layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.z() * (SLOT_META_BYTES + self.block_bytes));
        for slot in &self.slots {
            out.extend_from_slice(&slot.block.id.to_le_bytes());
            out.extend_from_slice(&slot.block.leaf.to_le_bytes());
            out.push(slot.valid as u8);
            out.extend_from_slice(&[0u8; 7]);
            out.extend_from_slice(&slot.block.payload);
        }
        out
    }

    /// Deserializes from the layout written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` disagrees with `z`/`block_bytes` — the store
    /// guarantees shape, so a mismatch is a bug, not input error.
    pub fn from_bytes(bytes: &[u8], z: usize, block_bytes: usize) -> Self {
        let slot_len = SLOT_META_BYTES + block_bytes;
        assert_eq!(bytes.len(), z * slot_len, "bucket byte size mismatch");
        let mut slots = Vec::with_capacity(z);
        for chunk in bytes.chunks_exact(slot_len) {
            let id = crate::convert::le_u64(&chunk[0..8]);
            let leaf = crate::convert::le_u64(&chunk[8..16]);
            let valid = chunk[16] != 0;
            let payload = chunk[SLOT_META_BYTES..].to_vec();
            slots.push(Slot {
                valid,
                block: Block { id, leaf, payload },
            });
        }
        Bucket { slots, block_bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut b = Bucket::empty(4, 8);
        assert!(b.try_insert(Block::new(1, 0, vec![1u8; 8])));
        assert!(b.try_insert(Block::new(2, 1, vec![2u8; 8])));
        assert_eq!(b.occupancy(), 2);
        let got = b.take(1).unwrap();
        assert_eq!(got.payload, vec![1u8; 8]);
        assert_eq!(b.occupancy(), 1);
        assert!(b.take(1).is_none());
    }

    #[test]
    fn insert_full_bucket_fails() {
        let mut b = Bucket::empty(2, 4);
        assert!(b.try_insert(Block::new(1, 0, vec![0u8; 4])));
        assert!(b.try_insert(Block::new(2, 0, vec![0u8; 4])));
        assert!(!b.try_insert(Block::new(3, 0, vec![0u8; 4])));
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = Bucket::empty(3, 16);
        b.try_insert(Block::new(42, 5, vec![0xAA; 16]));
        b.try_insert(Block::new(7, 2, vec![0xBB; 16]));
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), 3 * (SLOT_META_BYTES + 16));
        let back = Bucket::from_bytes(&bytes, 3, 16);
        assert_eq!(back, b);
    }

    #[test]
    fn drain_valid_empties() {
        let mut b = Bucket::empty(4, 4);
        b.try_insert(Block::new(1, 0, vec![0u8; 4]));
        b.try_insert(Block::new(2, 0, vec![0u8; 4]));
        let drained = b.drain_valid();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn empty_bucket_serializes_deterministically() {
        let a = Bucket::empty(2, 8).to_bytes();
        let b = Bucket::empty(2, 8).to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn wrong_payload_size_panics() {
        Bucket::empty(2, 8).try_insert(Block::new(1, 0, vec![0u8; 4]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn serialization_roundtrips(
            blocks in proptest::collection::vec((any::<u64>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 8..=8)), 0..4),
        ) {
            let mut b = Bucket::empty(4, 8);
            for (id, leaf, payload) in blocks {
                b.try_insert(Block::new(id, leaf, payload));
            }
            let bytes = b.to_bytes();
            prop_assert_eq!(Bucket::from_bytes(&bytes, 4, 8), b);
        }

        #[test]
        fn occupancy_tracks_inserts(n in 0usize..6) {
            let mut b = Bucket::empty(4, 4);
            let mut expected = 0;
            for i in 0..n {
                if b.try_insert(Block::new(i as u64, 0, vec![0u8; 4])) {
                    expected += 1;
                }
            }
            prop_assert_eq!(b.occupancy(), expected.min(4));
        }
    }
}
