//! Encrypted bucket stores over simulated devices.
//!
//! A [`BucketStore`] owns the untrusted memory holding an ORAM tree's
//! buckets, encrypted with ChaCha20-Poly1305 under per-bucket write-counter
//! nonces. Two backends exist:
//!
//! * [`SsdBucketStore`] — buckets padded onto whole 4-KiB pages of a
//!   [`SimSsd`]; path reads/writes use batched page I/O (the device's
//!   internal parallelism). This backs FEDORA's main ORAM.
//! * [`DramBucketStore`] — buckets as byte ranges of a [`SimDram`]. This
//!   backs the buffer ORAM and the VTree.
//!
//! For the main ORAM the per-bucket write counters need not be stored: RAW
//! ORAM writes buckets only during EO accesses in a predetermined order, so
//! the counters are recomputable from the root EO counter
//! ([`fedora_crypto::counter::EvictionSchedule`]). The store keeps a counter
//! array as the *runtime representation* either way; an integration test
//! asserts the array always matches the schedule's closed form for the RAW
//! ORAM, which is what makes the paper's Merkle-free scheme sound.

use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce, TAG_LEN};
use fedora_storage::profile::{DramProfile, SsdProfile};
use fedora_storage::stats::DeviceStats;
use fedora_storage::{SimDram, SimSsd};

use crate::bucket::Bucket;
use crate::geometry::TreeGeometry;
use crate::OramError;

/// Abstract encrypted bucket storage.
pub trait BucketStore {
    /// The tree geometry this store was provisioned for.
    fn geometry(&self) -> TreeGeometry;

    /// Reads and decrypts one bucket.
    ///
    /// # Errors
    ///
    /// [`OramError::Integrity`] when authentication fails,
    /// [`OramError::Device`] on sizing bugs.
    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError>;

    /// Encrypts and writes one bucket, bumping its write counter.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs.
    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError>;

    /// Reads the whole path to `leaf` (root first). Backends may batch.
    ///
    /// # Errors
    ///
    /// As for [`read_bucket`](Self::read_bucket).
    fn read_path(&mut self, leaf: u64) -> Result<Vec<Bucket>, OramError> {
        let nodes = self.geometry().path_nodes(leaf);
        nodes.into_iter().map(|n| self.read_bucket(n)).collect()
    }

    /// Writes the whole path to `leaf` (root first). Backends may batch.
    ///
    /// # Errors
    ///
    /// As for [`write_bucket`](Self::write_bucket).
    ///
    /// # Panics
    ///
    /// Panics if `buckets.len() != depth + 1`.
    fn write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        let nodes = self.geometry().path_nodes(leaf);
        assert_eq!(buckets.len(), nodes.len(), "one bucket per path level");
        for (node, bucket) in nodes.into_iter().zip(buckets) {
            self.write_bucket(node, bucket)?;
        }
        Ok(())
    }

    /// Writes a bucket **without** bumping its write counter — used only
    /// for bulk initialization (re-encrypts at the current counter). Unlike
    /// [`write_bucket`](Self::write_bucket) this is not part of the runtime
    /// protocol, so callers typically reset device statistics afterwards.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs.
    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError>;

    /// The number of times `node` has been written (its encryption counter).
    fn write_count(&self, node: u64) -> u64;

    /// Device statistics of the backing store.
    fn device_stats(&self) -> DeviceStats;

    /// Resets the backing device statistics.
    fn reset_device_stats(&mut self);
}

fn bucket_nonce(node: u64, count: u64) -> Nonce {
    Nonce::from_u64_pair(node as u32, count)
}

fn bucket_aad(node: u64) -> [u8; 8] {
    node.to_le_bytes()
}

/// Bucket store over the simulated SSD (page-granular, batched I/O).
#[derive(Clone, Debug)]
pub struct SsdBucketStore {
    geometry: TreeGeometry,
    aead: ChaCha20Poly1305,
    ssd: SimSsd,
    write_counts: Vec<u64>,
    pages_per_bucket: u64,
}

impl SsdBucketStore {
    /// Provisions an SSD exactly large enough for the tree and encrypts an
    /// empty tree into it. Initialization I/O is excluded from statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tree has ≥ 2³² nodes (nonce-domain limit of this
    /// in-memory simulator; the paper-scale configs are driven analytically).
    pub fn new(geometry: TreeGeometry, key: Key, profile: SsdProfile) -> Self {
        assert!(geometry.num_nodes() < u32::MAX as u64, "tree too large for simulation");
        let pages_per_bucket = geometry.pages_per_bucket(profile.page_bytes);
        let ssd = SimSsd::new(profile, geometry.num_nodes() * pages_per_bucket);
        let mut store = SsdBucketStore {
            geometry,
            aead: ChaCha20Poly1305::new(&key),
            ssd,
            write_counts: vec![0; geometry.num_nodes() as usize],
            pages_per_bucket,
        };
        store.initialize_empty();
        store.ssd.reset_stats();
        store
    }

    fn initialize_empty(&mut self) {
        let empty = Bucket::empty(self.geometry.z(), self.geometry.block_bytes());
        for node in 0..self.geometry.num_nodes() {
            self.put(node, &empty, 0);
        }
    }

    /// The backing SSD (for wear/lifetime queries).
    pub fn ssd(&self) -> &SimSsd {
        &self.ssd
    }

    /// Mutable access to the backing SSD — the fault/attack-injection
    /// surface used by integrity tests (bit flips, rollbacks).
    pub fn ssd_mut(&mut self) -> &mut SimSsd {
        &mut self.ssd
    }

    fn page_base(&self, node: u64) -> u64 {
        node * self.pages_per_bucket
    }

    fn put(&mut self, node: u64, bucket: &Bucket, count: u64) {
        let plain = bucket.to_bytes();
        let mut ct = self
            .aead
            .encrypt(&bucket_nonce(node, count), &plain, &bucket_aad(node));
        let page_bytes = self.ssd.profile().page_bytes;
        ct.resize(self.pages_per_bucket as usize * page_bytes, 0);
        let base = self.page_base(node);
        let writes: Vec<(u64, Vec<u8>)> = ct
            .chunks_exact(page_bytes)
            .enumerate()
            .map(|(i, chunk)| (base + i as u64, chunk.to_vec()))
            .collect();
        self.ssd.write_pages(&writes).expect("store sized for the tree");
    }

    fn decrypt(&self, node: u64, raw: &[u8]) -> Result<Bucket, OramError> {
        let ct_len = self.geometry.bucket_plain_bytes() + TAG_LEN;
        let count = self.write_counts[node as usize];
        let plain = self
            .aead
            .decrypt(&bucket_nonce(node, count), &raw[..ct_len], &bucket_aad(node))
            .map_err(|_| OramError::Integrity)?;
        Ok(Bucket::from_bytes(&plain, self.geometry.z(), self.geometry.block_bytes()))
    }
}

impl BucketStore for SsdBucketStore {
    fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError> {
        let base = self.page_base(node);
        let pages: Vec<u64> = (0..self.pages_per_bucket).map(|i| base + i).collect();
        let raw: Vec<u8> = self
            .ssd
            .read_pages(&pages)
            .map_err(|_| OramError::Device)?
            .concat();
        self.decrypt(node, &raw)
    }

    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize] + 1;
        self.write_counts[node as usize] = count;
        self.put(node, bucket, count);
        Ok(())
    }

    fn read_path(&mut self, leaf: u64) -> Result<Vec<Bucket>, OramError> {
        // One batched page read for the whole path: this is what lets the
        // SSD's internal parallelism hide per-page latency.
        let nodes = self.geometry.path_nodes(leaf);
        let mut pages = Vec::with_capacity(nodes.len() * self.pages_per_bucket as usize);
        for &node in &nodes {
            let base = self.page_base(node);
            pages.extend((0..self.pages_per_bucket).map(|i| base + i));
        }
        let raw_pages = self.ssd.read_pages(&pages).map_err(|_| OramError::Device)?;
        let per = self.pages_per_bucket as usize;
        nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                let raw: Vec<u8> = raw_pages[i * per..(i + 1) * per].concat();
                self.decrypt(node, &raw)
            })
            .collect()
    }

    fn write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        let nodes = self.geometry.path_nodes(leaf);
        assert_eq!(buckets.len(), nodes.len(), "one bucket per path level");
        let page_bytes = self.ssd.profile().page_bytes;
        let mut writes = Vec::with_capacity(nodes.len() * self.pages_per_bucket as usize);
        for (&node, bucket) in nodes.iter().zip(buckets) {
            let count = self.write_counts[node as usize] + 1;
            self.write_counts[node as usize] = count;
            let plain = bucket.to_bytes();
            let mut ct = self
                .aead
                .encrypt(&bucket_nonce(node, count), &plain, &bucket_aad(node));
            ct.resize(self.pages_per_bucket as usize * page_bytes, 0);
            let base = self.page_base(node);
            for (i, chunk) in ct.chunks_exact(page_bytes).enumerate() {
                writes.push((base + i as u64, chunk.to_vec()));
            }
        }
        self.ssd.write_pages(&writes).map_err(|_| OramError::Device)
    }

    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize];
        self.put(node, bucket, count);
        Ok(())
    }

    fn write_count(&self, node: u64) -> u64 {
        self.write_counts[node as usize]
    }

    fn device_stats(&self) -> DeviceStats {
        *self.ssd.stats()
    }

    fn reset_device_stats(&mut self) {
        self.ssd.reset_stats();
    }
}

/// Bucket store over simulated DRAM (byte-granular).
#[derive(Clone, Debug)]
pub struct DramBucketStore {
    geometry: TreeGeometry,
    aead: ChaCha20Poly1305,
    dram: SimDram,
    write_counts: Vec<u64>,
    stride: u64,
}

impl DramBucketStore {
    /// Provisions DRAM for the tree and encrypts an empty tree into it.
    /// Initialization traffic is excluded from statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tree has ≥ 2³² nodes.
    pub fn new(geometry: TreeGeometry, key: Key, profile: DramProfile) -> Self {
        assert!(geometry.num_nodes() < u32::MAX as u64, "tree too large for simulation");
        let stride = geometry.bucket_stored_bytes() as u64;
        let dram = SimDram::new(profile, geometry.num_nodes() * stride);
        let mut store = DramBucketStore {
            geometry,
            aead: ChaCha20Poly1305::new(&key),
            dram,
            write_counts: vec![0; geometry.num_nodes() as usize],
            stride,
        };
        let empty = Bucket::empty(geometry.z(), geometry.block_bytes());
        for node in 0..geometry.num_nodes() {
            store.put(node, &empty, 0);
        }
        store.dram.reset_stats();
        store
    }

    /// Convenience constructor using the default DDR5-like profile.
    pub fn with_default_dram(geometry: TreeGeometry, key: Key) -> Self {
        Self::new(geometry, key, DramProfile::default())
    }

    /// The backing DRAM (for capacity/power queries).
    pub fn dram(&self) -> &SimDram {
        &self.dram
    }

    fn put(&mut self, node: u64, bucket: &Bucket, count: u64) {
        let plain = bucket.to_bytes();
        let ct = self
            .aead
            .encrypt(&bucket_nonce(node, count), &plain, &bucket_aad(node));
        self.dram
            .write(node * self.stride, &ct)
            .expect("store sized for the tree");
    }
}

impl BucketStore for DramBucketStore {
    fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError> {
        let mut raw = vec![0u8; self.stride as usize];
        self.dram
            .read(node * self.stride, &mut raw)
            .map_err(|_| OramError::Device)?;
        let count = self.write_counts[node as usize];
        let plain = self
            .aead
            .decrypt(&bucket_nonce(node, count), &raw, &bucket_aad(node))
            .map_err(|_| OramError::Integrity)?;
        Ok(Bucket::from_bytes(&plain, self.geometry.z(), self.geometry.block_bytes()))
    }

    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize] + 1;
        self.write_counts[node as usize] = count;
        self.put(node, bucket, count);
        Ok(())
    }

    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize];
        self.put(node, bucket, count);
        Ok(())
    }

    fn write_count(&self, node: u64) -> u64 {
        self.write_counts[node as usize]
    }

    fn device_stats(&self) -> DeviceStats {
        *self.dram.stats()
    }

    fn reset_device_stats(&mut self) {
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn geo() -> TreeGeometry {
        TreeGeometry::new(3, 4, 32)
    }

    fn key() -> Key {
        Key::from_bytes([7u8; 32])
    }

    #[test]
    fn ssd_bucket_roundtrip() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(11, 3, vec![0xCD; 32]));
        s.write_bucket(5, &b).unwrap();
        let got = s.read_bucket(5).unwrap();
        assert_eq!(got, b);
        // Other buckets still decrypt as empty.
        assert_eq!(s.read_bucket(0).unwrap().occupancy(), 0);
    }

    #[test]
    fn ssd_path_roundtrip_batched() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let leaf = 5;
        let mut path = s.read_path(leaf).unwrap();
        assert_eq!(path.len(), 4);
        path[2].try_insert(Block::new(9, leaf, vec![1u8; 32]));
        s.write_path(leaf, &path).unwrap();
        let again = s.read_path(leaf).unwrap();
        assert_eq!(again[2].occupancy(), 1);
        // Stats: two path reads + one path write of 4 pages each.
        let stats = s.device_stats();
        assert_eq!(stats.pages_read, 8);
        assert_eq!(stats.pages_written, 4);
    }

    #[test]
    fn ssd_init_excluded_from_stats() {
        let s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        assert_eq!(s.device_stats().pages_written, 0);
    }

    #[test]
    fn write_counts_advance() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        assert_eq!(s.write_count(0), 0);
        let b = Bucket::empty(4, 32);
        s.write_bucket(0, &b).unwrap();
        s.write_bucket(0, &b).unwrap();
        assert_eq!(s.write_count(0), 2);
        assert!(s.read_bucket(0).is_ok());
    }

    #[test]
    fn dram_bucket_roundtrip() {
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(2, 1, vec![0xEE; 32]));
        s.write_bucket(3, &b).unwrap();
        assert_eq!(s.read_bucket(3).unwrap(), b);
    }

    #[test]
    fn dram_default_path_ops() {
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let path = s.read_path(2).unwrap();
        assert_eq!(path.len(), 4);
        s.write_path(2, &path).unwrap();
        assert!(s.device_stats().bytes_written > 0);
    }

    #[test]
    fn buckets_bound_to_position() {
        // Ciphertext written at node 1 cannot be replayed at node 2 even at
        // the same counter value: decryption must fail.
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(1, 1, vec![1u8; 32]));
        s.write_bucket(1, &b).unwrap();
        // Forge: copy node 1's ciphertext into node 2's slot (bypassing API).
        let stride = s.geometry().bucket_stored_bytes() as u64;
        let mut raw = vec![0u8; stride as usize];
        s.dram.read(stride, &mut raw).unwrap();
        s.dram.write(2 * stride, &raw).unwrap();
        s.write_counts[2] = 1; // even matching the counter…
        assert_eq!(s.read_bucket(2), Err(OramError::Integrity));
    }

    #[test]
    fn stale_bucket_rejected() {
        // Reading a bucket with an advanced counter (as after a lost write)
        // fails authentication — freshness.
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let b = Bucket::empty(4, 32);
        s.write_bucket(4, &b).unwrap();
        s.write_counts[4] = 5; // simulate counter mismatch
        assert_eq!(s.read_bucket(4), Err(OramError::Integrity));
    }
}
