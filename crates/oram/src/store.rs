//! Encrypted bucket stores over simulated devices.
//!
//! A [`BucketStore`] owns the untrusted memory holding an ORAM tree's
//! buckets, encrypted with ChaCha20-Poly1305 under per-bucket write-counter
//! nonces. Two backends exist:
//!
//! * [`SsdBucketStore`] — buckets padded onto whole 4-KiB pages of a
//!   [`SimSsd`]; path reads/writes use batched page I/O (the device's
//!   internal parallelism). This backs FEDORA's main ORAM.
//! * [`DramBucketStore`] — buckets as byte ranges of a [`SimDram`]. This
//!   backs the buffer ORAM and the VTree.
//!
//! For the main ORAM the per-bucket write counters need not be stored: RAW
//! ORAM writes buckets only during EO accesses in a predetermined order, so
//! the counters are recomputable from the root EO counter
//! ([`fedora_crypto::counter::EvictionSchedule`]). The store keeps a counter
//! array as the *runtime representation* either way; an integration test
//! asserts the array always matches the schedule's closed form for the RAW
//! ORAM, which is what makes the paper's Merkle-free scheme sound.

use std::collections::{BTreeSet, HashMap};

use fedora_crypto::aead::{ChaCha20Poly1305, Key, Nonce, TAG_LEN};
use fedora_crypto::IntegrityError;
use fedora_par::WorkerPool;
use fedora_storage::fault::{FaultConfig, FaultStats};
use fedora_storage::profile::{DramProfile, SsdProfile};
use fedora_storage::ssd::SsdError;
use fedora_storage::stats::DeviceStats;
use fedora_storage::{
    AccessTraceRecorder, ByteReader, ByteWriter, CodecError, DeviceTelemetry, SimDram, SimSsd,
};
use fedora_telemetry::{Counter, Registry};

use crate::bucket::Bucket;
use crate::geometry::TreeGeometry;
use crate::OramError;

/// How many decrypt attempts a resilient read makes beyond the first.
pub const DEFAULT_RETRY_LIMIT: u32 = 4;

/// How many older counters to probe when classifying a tag mismatch as a
/// rollback (stale replay) versus corruption.
pub const DEFAULT_ROLLBACK_WINDOW: u64 = 8;

/// Counters of integrity events observed by a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Tag mismatches classified as corruption (one per failed attempt).
    pub detected_corruption: u64,
    /// Tag mismatches classified as rollback replays.
    pub detected_rollback: u64,
    /// Transient device failures that were retried.
    pub transient_retries: u64,
    /// Reads that ultimately succeeded after at least one failed attempt.
    pub recovered: u64,
    /// Buckets quarantined after retries were exhausted.
    pub quarantined: u64,
}

impl IntegrityStats {
    /// Total faults detected (corruption + rollback + transient).
    pub fn detected_total(&self) -> u64 {
        self.detected_corruption + self.detected_rollback + self.transient_retries
    }

    /// Element-wise difference (`self - earlier`), for measuring one phase.
    pub fn since(&self, earlier: &IntegrityStats) -> IntegrityStats {
        IntegrityStats {
            detected_corruption: self.detected_corruption - earlier.detected_corruption,
            detected_rollback: self.detected_rollback - earlier.detected_rollback,
            transient_retries: self.transient_retries - earlier.transient_retries,
            recovered: self.recovered - earlier.recovered,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

/// Outcome of a full-tree MAC verification pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Buckets examined.
    pub checked: u64,
    /// Buckets whose MAC verified (possibly after retries).
    pub healthy: u64,
    /// Buckets that failed unrecoverably, with the classified kind.
    pub failed: Vec<(u64, IntegrityError)>,
}

impl ScrubReport {
    /// True when every bucket verified.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Abstract encrypted bucket storage.
pub trait BucketStore {
    /// The tree geometry this store was provisioned for.
    fn geometry(&self) -> TreeGeometry;

    /// Reads and decrypts one bucket.
    ///
    /// # Errors
    ///
    /// [`OramError::Integrity`] when authentication fails,
    /// [`OramError::Device`] on sizing bugs.
    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError>;

    /// Encrypts and writes one bucket, bumping its write counter.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs.
    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError>;

    /// Reads the whole path to `leaf` (root first). Backends may batch.
    ///
    /// # Errors
    ///
    /// As for [`read_bucket`](Self::read_bucket).
    fn read_path(&mut self, leaf: u64) -> Result<Vec<Bucket>, OramError> {
        let nodes = self.geometry().path_nodes(leaf);
        nodes.into_iter().map(|n| self.read_bucket(n)).collect()
    }

    /// Writes the whole path to `leaf` (root first). Backends may batch.
    ///
    /// # Errors
    ///
    /// As for [`write_bucket`](Self::write_bucket).
    ///
    /// # Panics
    ///
    /// Panics if `buckets.len() != depth + 1`.
    fn write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        let nodes = self.geometry().path_nodes(leaf);
        assert_eq!(buckets.len(), nodes.len(), "one bucket per path level");
        for (node, bucket) in nodes.into_iter().zip(buckets) {
            self.write_bucket(node, bucket)?;
        }
        Ok(())
    }

    /// Writes a bucket **without** bumping its write counter — used only
    /// for bulk initialization (re-encrypts at the current counter). Unlike
    /// [`write_bucket`](Self::write_bucket) this is not part of the runtime
    /// protocol, so callers typically reset device statistics afterwards.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs.
    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError>;

    /// The number of times `node` has been written (its encryption counter).
    fn write_count(&self, node: u64) -> u64;

    /// Device statistics of the backing store.
    fn device_stats(&self) -> DeviceStats;

    /// Resets the backing device statistics.
    fn reset_device_stats(&mut self);

    /// Attaches telemetry so the store mirrors its device traffic, AEAD
    /// activity, and integrity events into `registry`. The default is a
    /// no-op for backends without instrumentation.
    fn set_telemetry(&mut self, _registry: &Registry) {}

    /// Sets the worker-thread count for the store's bulk crypto (path
    /// encrypt/decrypt). Thread count never changes results or the device
    /// access sequence — only host wall-clock time. The default is a no-op
    /// for backends without parallel crypto.
    fn set_threads(&mut self, _threads: usize) {}

    /// Counters of integrity events (detections, retries, quarantines).
    fn integrity_stats(&self) -> IntegrityStats {
        IntegrityStats::default()
    }

    /// Nodes quarantined after unrecoverable integrity failures, ascending.
    fn quarantined_nodes(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Re-encrypts `node` as an *empty* bucket at its current counter and
    /// clears any quarantine flag. Blocks previously resident in the bucket
    /// are lost; callers must invalidate their mirrors (VTree) and expect
    /// [`OramError::MissingBlock`] for the affected ids.
    ///
    /// # Errors
    ///
    /// [`OramError::Device`] on sizing bugs.
    fn repair_bucket(&mut self, node: u64) -> Result<(), OramError> {
        let geo = self.geometry();
        let empty = Bucket::empty(geo.z(), geo.block_bytes());
        self.load_bucket(node, &empty)
    }

    /// Enables (or disables) the **decrypt window**: a plaintext mirror of
    /// buckets whose MACs this store has already verified. With the window
    /// on, batched path reads still issue the *identical* device page
    /// traffic — same pages, same batch sizes, same statistics and access
    /// trace — but skip re-decrypting ciphertext that has not changed since
    /// it last authenticated. Single-bucket reads
    /// ([`read_bucket`](Self::read_bucket)) and [`scrub`](Self::scrub)
    /// never consult the window, so integrity probes always verify real
    /// device bytes. The default is a no-op for backends without a window.
    fn set_decrypt_window(&mut self, _enabled: bool) {}

    /// True when a decrypt window is currently active (it may be
    /// suspended, e.g. while a fault injector is armed).
    fn decrypt_window_active(&self) -> bool {
        false
    }

    /// Stages a path write for ordered flush at a caller-chosen boundary
    /// (see [`flush_deferred_writes`](Self::flush_deferred_writes)).
    /// Backends without deferral — and backends whose decrypt window is
    /// inactive — write immediately, so callers may use this
    /// unconditionally.
    ///
    /// # Errors
    ///
    /// As for [`write_path`](Self::write_path).
    fn defer_write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        self.write_path(leaf, buckets)
    }

    /// Flushes writes staged by [`defer_write_path`](Self::defer_write_path)
    /// in stage order, returning how many paths were flushed. Each staged
    /// path is written with its own [`write_path`](Self::write_path) call,
    /// so counters, device statistics, and the physical access trace are
    /// identical to the undeferred schedule — only *when* the writes hit
    /// the device moves.
    ///
    /// # Errors
    ///
    /// As for [`write_path`](Self::write_path).
    fn flush_deferred_writes(&mut self) -> Result<u64, OramError> {
        Ok(0)
    }

    /// Walks every bucket verifying its MAC (retrying recoverable faults)
    /// and reports the ones that fail unrecoverably.
    fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for node in 0..self.geometry().num_nodes() {
            report.checked += 1;
            match self.read_bucket(node) {
                Ok(_) => report.healthy += 1,
                Err(OramError::Integrity { kind, node: bad }) => report.failed.push((bad, kind)),
                Err(_) => report.failed.push((node, IntegrityError::Corruption)),
            }
        }
        report
    }
}

/// Telemetry handles mirroring [`IntegrityStats`] into a registry.
///
/// Unlike [`IntegrityStats`] — which transactional rounds snapshot and
/// roll back — these counters are monotonic: they keep the full fault
/// history across round aborts.
#[derive(Clone, Debug, Default)]
struct IntegrityTelemetry {
    registry: Registry,
    retries: Counter,
    detected_corruption: Counter,
    detected_rollback: Counter,
    recovered: Counter,
    quarantined: Counter,
}

impl IntegrityTelemetry {
    fn attach(registry: &Registry) -> Self {
        IntegrityTelemetry {
            registry: registry.clone(),
            retries: registry.counter("integrity.retries"),
            detected_corruption: registry.counter("integrity.detected_corruption"),
            detected_rollback: registry.counter("integrity.detected_rollback"),
            recovered: registry.counter("integrity.recovered"),
            quarantined: registry.counter("integrity.quarantined"),
        }
    }
}

fn bucket_nonce(node: u64, count: u64) -> Nonce {
    Nonce::from_u64_pair(node as u32, count)
}

fn bucket_aad(node: u64) -> [u8; 8] {
    node.to_le_bytes()
}

/// Decrypts `raw` as `node`'s bucket at an explicit counter. Free-standing
/// (no `&self`) so batched path decrypts can fan out across workers while
/// borrowing only the AEAD and geometry.
fn decrypt_bucket(
    aead: &ChaCha20Poly1305,
    geometry: &TreeGeometry,
    node: u64,
    raw: &[u8],
    count: u64,
) -> Option<Bucket> {
    let ct_len = geometry.bucket_plain_bytes() + TAG_LEN;
    let plain = aead
        .decrypt(
            &bucket_nonce(node, count),
            &raw[..ct_len],
            &bucket_aad(node),
        )
        .ok()?;
    Some(Bucket::from_bytes(
        &plain,
        geometry.z(),
        geometry.block_bytes(),
    ))
}

/// Bucket store over the simulated SSD (page-granular, batched I/O).
#[derive(Clone, Debug)]
pub struct SsdBucketStore {
    geometry: TreeGeometry,
    aead: ChaCha20Poly1305,
    ssd: SimSsd,
    write_counts: Vec<u64>,
    pages_per_bucket: u64,
    retry_limit: u32,
    rollback_window: u64,
    integrity: IntegrityStats,
    quarantined: BTreeSet<u64>,
    telemetry: IntegrityTelemetry,
    pool: WorkerPool,
    /// Reused page-id scratch for path reads (no per-access allocation).
    scratch_pages: Vec<u64>,
    /// Plaintext mirror of already-authenticated buckets (the decrypt
    /// window). `None` while off or suspended by an armed fault injector;
    /// every successful write refreshes it, so a hit is always the exact
    /// plaintext a fresh decrypt would produce.
    window: Option<HashMap<u64, Bucket>>,
    /// Caller intent for the window, so disarming faults can restore it.
    window_enabled: bool,
    /// Whether the fault injector is armed (suspends the window).
    faults_armed: bool,
    /// Path writes staged by `defer_write_path`, flushed in stage order.
    deferred: Vec<(u64, Vec<Bucket>)>,
}

impl SsdBucketStore {
    /// Provisions an SSD exactly large enough for the tree and encrypts an
    /// empty tree into it. Initialization I/O is excluded from statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tree has ≥ 2³² nodes (nonce-domain limit of this
    /// in-memory simulator; the paper-scale configs are driven analytically).
    pub fn new(geometry: TreeGeometry, key: Key, profile: SsdProfile) -> Self {
        assert!(
            geometry.num_nodes() < u32::MAX as u64,
            "tree too large for simulation"
        );
        let pages_per_bucket = geometry.pages_per_bucket(profile.page_bytes);
        let ssd = SimSsd::new(profile, geometry.num_nodes() * pages_per_bucket);
        let mut store = SsdBucketStore {
            geometry,
            aead: ChaCha20Poly1305::new(&key),
            ssd,
            write_counts: vec![0; geometry.num_nodes() as usize],
            pages_per_bucket,
            retry_limit: DEFAULT_RETRY_LIMIT,
            rollback_window: DEFAULT_ROLLBACK_WINDOW,
            integrity: IntegrityStats::default(),
            quarantined: BTreeSet::new(),
            telemetry: IntegrityTelemetry::default(),
            pool: WorkerPool::serial(),
            scratch_pages: Vec::new(),
            window: None,
            window_enabled: false,
            faults_armed: false,
            deferred: Vec::new(),
        };
        store.initialize_empty();
        store.ssd.reset_stats();
        store
    }

    #[allow(clippy::expect_used)] // pre-injector, device sized exactly for the tree
    fn initialize_empty(&mut self) {
        let empty = Bucket::empty(self.geometry.z(), self.geometry.block_bytes());
        for node in 0..self.geometry.num_nodes() {
            self.put(node, &empty, 0).expect("store sized for the tree");
        }
    }

    /// Attaches telemetry: the backing SSD mirrors page traffic under the
    /// `storage` prefix, the AEAD counts its operations, and integrity
    /// events (retries, detections, recoveries, quarantines) feed monotonic
    /// counters plus journal entries.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = IntegrityTelemetry::attach(registry);
        self.ssd
            .set_telemetry(DeviceTelemetry::attach(registry, "storage"));
        self.aead.set_telemetry(registry);
    }

    /// Attaches a shadow-mode access recorder to the backing SSD so the
    /// physical page-access sequence can be audited for obliviousness
    /// (see [`AccessTraceRecorder`]).
    pub fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        self.ssd.set_access_recorder(recorder);
    }

    /// Pages per bucket in this store's layout — the divisor that maps a
    /// physical page number back to its tree node for trace analysis.
    pub fn pages_per_bucket(&self) -> u64 {
        self.pages_per_bucket
    }

    /// Sets how many times a failed bucket read is retried before the
    /// bucket is quarantined (0 = fail on the first violation).
    pub fn set_retry_limit(&mut self, retries: u32) {
        self.retry_limit = retries;
    }

    /// Sets the worker-thread count for path encrypt/decrypt. The device
    /// I/O stays a single batched call either way, so the physical access
    /// trace — and every result — is identical for any thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads);
    }

    /// Sets how many older counters are probed when classifying a tag
    /// mismatch as rollback versus corruption.
    pub fn set_rollback_window(&mut self, window: u64) {
        self.rollback_window = window;
    }

    /// Arms the backing SSD's fault injector, fixing the rollback group
    /// size to this store's bucket↔page layout so injected replays are
    /// bucket-consistent.
    pub fn arm_faults(&mut self, mut config: FaultConfig) {
        config.pages_per_group = self.pages_per_bucket;
        // An armed injector means device bytes can lie; suspend the
        // decrypt window so every read verifies its MAC for real.
        debug_assert!(self.deferred.is_empty(), "arming faults with staged writes");
        self.faults_armed = true;
        self.window = None;
        self.ssd.arm_faults(config);
    }

    /// Disarms the backing SSD's fault injector. A suspended decrypt
    /// window resumes *empty* — nothing read while faults were possible is
    /// ever trusted without a fresh MAC verification.
    pub fn disarm_faults(&mut self) {
        self.faults_armed = false;
        if self.window_enabled {
            self.window = Some(HashMap::new());
        }
        self.ssd.disarm_faults();
    }

    /// Counters from the backing SSD's injector (zeros when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.ssd.fault_stats()
    }

    /// The backing SSD (for wear/lifetime queries).
    pub fn ssd(&self) -> &SimSsd {
        &self.ssd
    }

    /// Mutable access to the backing SSD — the fault/attack-injection
    /// surface used by integrity tests (bit flips, rollbacks).
    pub fn ssd_mut(&mut self) -> &mut SimSsd {
        // Raw device access can rewrite bytes underneath the decrypt
        // window; drop every cached plaintext so nothing stale survives.
        if let Some(window) = &mut self.window {
            window.clear();
        }
        &mut self.ssd
    }

    fn page_base(&self, node: u64) -> u64 {
        node * self.pages_per_bucket
    }

    /// Serializes the store's durable state — per-bucket write counters,
    /// cumulative integrity statistics, the quarantine set, resilience
    /// knobs, and the full SSD image — into `w` for checkpointing. The AEAD
    /// key, telemetry handles, worker pool, and armed fault injector are not
    /// persisted (recovery re-derives or re-arms them).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64s(&self.write_counts);
        let s = &self.integrity;
        for v in [
            s.detected_corruption,
            s.detected_rollback,
            s.transient_retries,
            s.recovered,
            s.quarantined,
        ] {
            w.put_u64(v);
        }
        let quarantined: Vec<u64> = self.quarantined.iter().copied().collect();
        w.put_u64s(&quarantined);
        w.put_u32(self.retry_limit);
        w.put_u64(self.rollback_window);
        self.ssd.encode_state(w);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a freshly constructed store of the same geometry. Recovered
    /// quarantined nodes stay excluded exactly as before the restart.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a geometry mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let write_counts = r.get_u64s()?;
        if write_counts.len() != self.write_counts.len() {
            return Err(CodecError::Invalid("bucket-store node-count mismatch"));
        }
        self.write_counts = write_counts;
        self.integrity = IntegrityStats {
            detected_corruption: r.get_u64()?,
            detected_rollback: r.get_u64()?,
            transient_retries: r.get_u64()?,
            recovered: r.get_u64()?,
            quarantined: r.get_u64()?,
        };
        let quarantined = r.get_u64s()?;
        if quarantined.iter().any(|&n| n >= self.geometry.num_nodes()) {
            return Err(CodecError::Invalid("quarantined node out of range"));
        }
        self.quarantined = quarantined.into_iter().collect();
        self.retry_limit = r.get_u32()?;
        self.rollback_window = r.get_u64()?;
        self.ssd.decode_state(r)?;
        // The restored image supersedes anything cached or staged.
        if let Some(window) = &mut self.window {
            window.clear();
        }
        self.deferred.clear();
        Ok(())
    }

    fn put(&mut self, node: u64, bucket: &Bucket, count: u64) -> Result<(), OramError> {
        let plain = bucket.to_bytes();
        let mut ct = self
            .aead
            .encrypt(&bucket_nonce(node, count), &plain, &bucket_aad(node));
        let page_bytes = self.ssd.profile().page_bytes;
        ct.resize(self.pages_per_bucket as usize * page_bytes, 0);
        let base = self.page_base(node);
        let writes: Vec<(u64, Vec<u8>)> = ct
            .chunks_exact(page_bytes)
            .enumerate()
            .map(|(i, chunk)| (base + i as u64, chunk.to_vec()))
            .collect();
        self.write_pages_resilient(&writes, node)?;
        // We hold the plaintext that now backs the device bytes — refresh
        // the decrypt window so the next path read skips the re-decrypt.
        if let Some(window) = &mut self.window {
            window.insert(node, bucket.clone());
        }
        Ok(())
    }

    /// Batched write with bounded retry on transient device failures.
    /// Retrying is idempotent: the ciphertext is already fixed, so a
    /// repeated attempt writes the same bytes.
    fn write_pages_resilient(
        &mut self,
        writes: &[(u64, Vec<u8>)],
        blame_node: u64,
    ) -> Result<(), OramError> {
        let mut failures = 0u32;
        loop {
            match self.ssd.write_pages(writes) {
                Ok(()) => return Ok(()),
                Err(SsdError::Transient { .. }) => {
                    self.integrity.transient_retries += 1;
                    self.telemetry.retries.incr();
                    failures += 1;
                    if failures > self.retry_limit {
                        return Err(OramError::Integrity {
                            kind: IntegrityError::Transient,
                            node: blame_node,
                        });
                    }
                }
                Err(_) => return Err(OramError::Device),
            }
        }
    }

    /// Decrypts `raw` as `node`'s bucket at an explicit counter.
    fn decrypt_at(&self, node: u64, raw: &[u8], count: u64) -> Option<Bucket> {
        decrypt_bucket(&self.aead, &self.geometry, node, raw, count)
    }

    /// Classifies a tag mismatch: if the bytes authenticate at a *recent
    /// older* counter, a stale version was replayed (rollback); otherwise
    /// the bytes are corrupt.
    fn classify(&self, node: u64, raw: &[u8]) -> IntegrityError {
        let count = self.write_counts[node as usize];
        let lo = count.saturating_sub(self.rollback_window);
        for c in (lo..count).rev() {
            if self.decrypt_at(node, raw, c).is_some() {
                return IntegrityError::Rollback;
            }
        }
        IntegrityError::Corruption
    }

    /// Records a detection for one failed decrypt attempt and returns the
    /// classified kind.
    fn note_violation(&mut self, node: u64, raw: &[u8]) -> IntegrityError {
        let kind = self.classify(node, raw);
        match kind {
            IntegrityError::Rollback => {
                self.integrity.detected_rollback += 1;
                self.telemetry.detected_rollback.incr();
            }
            _ => {
                self.integrity.detected_corruption += 1;
                self.telemetry.detected_corruption.incr();
            }
        }
        // Every detected violation triggers exactly one re-read attempt.
        self.telemetry.retries.incr();
        kind
    }

    /// Reads and decrypts `node`, retrying transient failures and
    /// re-reading on tag mismatches (in-flight faults heal on re-read).
    /// `failures` carries violations already observed by the caller (the
    /// batched path read) so the retry budget is shared.
    fn read_bucket_resilient(
        &mut self,
        node: u64,
        mut failures: u32,
        mut last_kind: IntegrityError,
    ) -> Result<Bucket, OramError> {
        let base = self.page_base(node);
        self.scratch_pages.clear();
        self.scratch_pages
            .extend((0..self.pages_per_bucket).map(|i| base + i));
        while failures <= self.retry_limit {
            match self.ssd.read_pages(&self.scratch_pages) {
                Ok(raw_pages) => {
                    let raw: Vec<u8> = raw_pages.concat();
                    let count = self.write_counts[node as usize];
                    if let Some(bucket) = self.decrypt_at(node, &raw, count) {
                        if failures > 0 {
                            self.integrity.recovered += 1;
                            self.telemetry.recovered.incr();
                        }
                        return Ok(bucket);
                    }
                    last_kind = self.note_violation(node, &raw);
                    failures += 1;
                }
                Err(SsdError::Transient { .. }) => {
                    self.integrity.transient_retries += 1;
                    self.telemetry.retries.incr();
                    last_kind = IntegrityError::Transient;
                    failures += 1;
                }
                Err(_) => return Err(OramError::Device),
            }
        }
        self.integrity.quarantined += 1;
        self.quarantined.insert(node);
        self.telemetry.quarantined.incr();
        self.telemetry.registry.event(
            "integrity.quarantine",
            &[
                ("node", node.into()),
                ("kind", format!("{last_kind:?}").into()),
            ],
        );
        Err(OramError::Integrity {
            kind: last_kind,
            node,
        })
    }
}

impl BucketStore for SsdBucketStore {
    fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError> {
        self.read_bucket_resilient(node, 0, IntegrityError::Corruption)
    }

    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize] + 1;
        self.write_counts[node as usize] = count;
        self.put(node, bucket, count)
    }

    fn read_path(&mut self, leaf: u64) -> Result<Vec<Bucket>, OramError> {
        // One batched page read for the whole path: this is what lets the
        // SSD's internal parallelism hide per-page latency. Buckets that
        // fail the batch decrypt are re-read individually (in-flight
        // faults heal on re-read); a transient failure of the whole batch
        // falls back to per-bucket resilient reads.
        let nodes = self.geometry.path_nodes(leaf);
        self.scratch_pages.clear();
        for &node in &nodes {
            let base = self.page_base(node);
            self.scratch_pages
                .extend((0..self.pages_per_bucket).map(|i| base + i));
        }
        let raw_pages = match self.ssd.read_pages(&self.scratch_pages) {
            Ok(raw) => raw,
            Err(SsdError::Transient { .. }) => {
                self.integrity.transient_retries += 1;
                self.telemetry.retries.incr();
                return nodes
                    .iter()
                    .map(|&node| self.read_bucket_resilient(node, 1, IntegrityError::Transient))
                    .collect();
            }
            Err(_) => return Err(OramError::Device),
        };
        let per = self.pages_per_bucket as usize;
        // The device traffic above is a single batched call; the host-side
        // cost of a path read is the per-bucket AEAD below, so fan it out.
        // Buckets already resident in the decrypt window — whose ciphertext
        // has not changed since it last authenticated — skip the AEAD
        // entirely; re-verifying immutable, already-verified bytes proves
        // nothing. Workers only verify/decrypt — failures are handled
        // serially afterwards in node order, identical to the serial code.
        let resident_window = self
            .window
            .as_ref()
            .filter(|w| nodes.iter().all(|node| w.contains_key(node)));
        let decrypted: Vec<Option<Bucket>> = if let Some(window) = resident_window {
            // Every bucket is a window hit: nothing to decrypt, so the
            // pool fan-out would be pure spawn overhead. Clone inline.
            nodes.iter().map(|node| window.get(node).cloned()).collect()
        } else {
            let pool = self.pool;
            let aead = &self.aead;
            let geometry = &self.geometry;
            let counts = &self.write_counts;
            let window = self.window.as_ref();
            pool.map_indices(nodes.len(), |i| {
                let node = nodes[i];
                if let Some(bucket) = window.and_then(|w| w.get(&node)) {
                    return Some(bucket.clone());
                }
                let count = counts[node as usize];
                if per == 1 {
                    decrypt_bucket(aead, geometry, node, &raw_pages[i], count)
                } else {
                    let raw = raw_pages[i * per..(i + 1) * per].concat();
                    decrypt_bucket(aead, geometry, node, &raw, count)
                }
            })
        };
        let mut out = Vec::with_capacity(nodes.len());
        for (i, (&node, maybe)) in nodes.iter().zip(decrypted).enumerate() {
            match maybe {
                Some(bucket) => out.push(bucket),
                None => {
                    let raw: Vec<u8> = raw_pages[i * per..(i + 1) * per].concat();
                    let kind = self.note_violation(node, &raw);
                    out.push(self.read_bucket_resilient(node, 1, kind)?);
                }
            }
        }
        // Freshly verified plaintext populates the window for next time.
        if let Some(window) = &mut self.window {
            for (&node, bucket) in nodes.iter().zip(&out) {
                window.insert(node, bucket.clone());
            }
        }
        Ok(out)
    }

    fn write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        let nodes = self.geometry.path_nodes(leaf);
        assert_eq!(buckets.len(), nodes.len(), "one bucket per path level");
        let page_bytes = self.ssd.profile().page_bytes;
        let per = self.pages_per_bucket as usize;
        // Counters are protocol state: bump them serially in node order.
        // Each bucket's ciphertext then depends only on its own (node,
        // counter) pair, so the AEAD work fans out over the pool while the
        // device write below stays one batched call in node order.
        let counts: Vec<u64> = nodes
            .iter()
            .map(|&node| {
                let count = self.write_counts[node as usize] + 1;
                self.write_counts[node as usize] = count;
                count
            })
            .collect();
        let ciphertexts: Vec<Vec<u8>> = {
            let pool = self.pool;
            let aead = &self.aead;
            pool.map_indices(nodes.len(), |i| {
                let plain = buckets[i].to_bytes();
                let mut ct = aead.encrypt(
                    &bucket_nonce(nodes[i], counts[i]),
                    &plain,
                    &bucket_aad(nodes[i]),
                );
                ct.resize(per * page_bytes, 0);
                ct
            })
        };
        let mut writes = Vec::with_capacity(nodes.len() * per);
        for (&node, ct) in nodes.iter().zip(&ciphertexts) {
            let base = self.page_base(node);
            for (i, chunk) in ct.chunks_exact(page_bytes).enumerate() {
                writes.push((base + i as u64, chunk.to_vec()));
            }
        }
        self.write_pages_resilient(&writes, nodes[0])?;
        if let Some(window) = &mut self.window {
            for (&node, bucket) in nodes.iter().zip(buckets) {
                window.insert(node, bucket.clone());
            }
        }
        Ok(())
    }

    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize];
        self.put(node, bucket, count)
    }

    fn write_count(&self, node: u64) -> u64 {
        self.write_counts[node as usize]
    }

    fn device_stats(&self) -> DeviceStats {
        *self.ssd.stats()
    }

    fn reset_device_stats(&mut self) {
        self.ssd.reset_stats();
    }

    fn set_telemetry(&mut self, registry: &Registry) {
        SsdBucketStore::set_telemetry(self, registry);
    }

    fn set_threads(&mut self, threads: usize) {
        SsdBucketStore::set_threads(self, threads);
    }

    fn integrity_stats(&self) -> IntegrityStats {
        self.integrity
    }

    fn quarantined_nodes(&self) -> Vec<u64> {
        self.quarantined.iter().copied().collect()
    }

    fn repair_bucket(&mut self, node: u64) -> Result<(), OramError> {
        let empty = Bucket::empty(self.geometry.z(), self.geometry.block_bytes());
        self.load_bucket(node, &empty)?;
        self.quarantined.remove(&node);
        Ok(())
    }

    fn set_decrypt_window(&mut self, enabled: bool) {
        self.window_enabled = enabled;
        self.window = if enabled && !self.faults_armed {
            Some(HashMap::new())
        } else {
            None
        };
    }

    fn decrypt_window_active(&self) -> bool {
        self.window.is_some()
    }

    fn defer_write_path(&mut self, leaf: u64, buckets: &[Bucket]) -> Result<(), OramError> {
        if self.window.is_none() {
            // Without the window a reader between stage and flush would
            // decrypt stale device bytes; fall back to writing now.
            return self.write_path(leaf, buckets);
        }
        let nodes = self.geometry.path_nodes(leaf);
        assert_eq!(buckets.len(), nodes.len(), "one bucket per path level");
        // Readers between stage and flush must see the post-eviction
        // plaintext even though the device still holds the old bytes —
        // the window carries the truth until the flush catches up.
        if let Some(window) = &mut self.window {
            for (&node, bucket) in nodes.iter().zip(buckets) {
                window.insert(node, bucket.clone());
            }
        }
        self.deferred.push((leaf, buckets.to_vec()));
        Ok(())
    }

    fn flush_deferred_writes(&mut self) -> Result<u64, OramError> {
        let staged = std::mem::take(&mut self.deferred);
        let flushed = staged.len() as u64;
        for (leaf, buckets) in &staged {
            // One write_path per staged eviction, in stage order: counters,
            // device statistics, and the page trace match the schedule the
            // undeferred code would have produced.
            self.write_path(*leaf, buckets)?;
        }
        Ok(flushed)
    }
}

/// Bucket store over simulated DRAM (byte-granular).
#[derive(Clone, Debug)]
pub struct DramBucketStore {
    geometry: TreeGeometry,
    aead: ChaCha20Poly1305,
    dram: SimDram,
    write_counts: Vec<u64>,
    stride: u64,
    /// Decrypt window (plaintext mirror of buckets this store wrote or
    /// already authenticated — see [`BucketStore::set_decrypt_window`]).
    /// Nothing mutates the backing DRAM besides this store, so a resident
    /// plaintext is coherent for as long as the window lives; it is
    /// dropped on [`decode_state`](Self::decode_state), which replaces
    /// the ciphertext image wholesale.
    window: Option<HashMap<u64, Bucket>>,
}

impl DramBucketStore {
    /// Provisions DRAM for the tree and encrypts an empty tree into it.
    /// Initialization traffic is excluded from statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tree has ≥ 2³² nodes.
    pub fn new(geometry: TreeGeometry, key: Key, profile: DramProfile) -> Self {
        assert!(
            geometry.num_nodes() < u32::MAX as u64,
            "tree too large for simulation"
        );
        let stride = geometry.bucket_stored_bytes() as u64;
        let dram = SimDram::new(profile, geometry.num_nodes() * stride);
        let mut store = DramBucketStore {
            geometry,
            aead: ChaCha20Poly1305::new(&key),
            dram,
            write_counts: vec![0; geometry.num_nodes() as usize],
            stride,
            window: None,
        };
        let empty = Bucket::empty(geometry.z(), geometry.block_bytes());
        for node in 0..geometry.num_nodes() {
            store.put(node, &empty, 0);
        }
        store.dram.reset_stats();
        store
    }

    /// Convenience constructor using the default DDR5-like profile.
    pub fn with_default_dram(geometry: TreeGeometry, key: Key) -> Self {
        Self::new(geometry, key, DramProfile::default())
    }

    /// The backing DRAM (for capacity/power queries).
    pub fn dram(&self) -> &SimDram {
        &self.dram
    }

    /// Serializes the store's state — write counters plus the encrypted
    /// DRAM image and its statistics — into `w` for checkpointing. The AEAD
    /// key is not persisted.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64s(&self.write_counts);
        let (bytes, stats) = self.dram.snapshot_state();
        w.put_bytes(&bytes);
        for v in [
            stats.pages_read,
            stats.pages_written,
            stats.bytes_read,
            stats.bytes_written,
            stats.busy_ns,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a store of the same geometry.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a geometry mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let write_counts = r.get_u64s()?;
        if write_counts.len() != self.write_counts.len() {
            return Err(CodecError::Invalid("bucket-store node-count mismatch"));
        }
        self.write_counts = write_counts;
        let bytes = r.get_bytes()?;
        if bytes.len() as u64 != self.dram.capacity_bytes() {
            return Err(CodecError::Invalid("dram image length mismatch"));
        }
        let stats = DeviceStats {
            pages_read: r.get_u64()?,
            pages_written: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
            busy_ns: r.get_u64()?,
            ..DeviceStats::default()
        };
        self.dram.restore_state(bytes, stats);
        // The restored ciphertext image supersedes anything mirrored from
        // the pre-restore state; the window refills from verified reads.
        if let Some(window) = &mut self.window {
            window.clear();
        }
        Ok(())
    }

    #[allow(clippy::expect_used)] // DRAM sized for the tree at construction
    fn put(&mut self, node: u64, bucket: &Bucket, count: u64) {
        let plain = bucket.to_bytes();
        let ct = self
            .aead
            .encrypt(&bucket_nonce(node, count), &plain, &bucket_aad(node));
        self.dram
            .write(node * self.stride, &ct)
            .expect("store sized for the tree");
        // This store is the ciphertext's only writer, so the plaintext
        // just encrypted is authoritative until the next put.
        if let Some(window) = &mut self.window {
            window.insert(node, bucket.clone());
        }
    }
}

impl BucketStore for DramBucketStore {
    fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    fn read_bucket(&mut self, node: u64) -> Result<Bucket, OramError> {
        let mut raw = vec![0u8; self.stride as usize];
        self.dram
            .read(node * self.stride, &mut raw)
            .map_err(|_| OramError::Device)?;
        // A window-resident bucket skips the AEAD: its ciphertext has not
        // changed since this store last wrote or authenticated it. The
        // DRAM read above still issued, so device stats are unchanged.
        if let Some(bucket) = self.window.as_ref().and_then(|w| w.get(&node)) {
            return Ok(bucket.clone());
        }
        let count = self.write_counts[node as usize];
        match self
            .aead
            .decrypt(&bucket_nonce(node, count), &raw, &bucket_aad(node))
        {
            Ok(plain) => {
                let bucket =
                    Bucket::from_bytes(&plain, self.geometry.z(), self.geometry.block_bytes());
                if let Some(window) = &mut self.window {
                    window.insert(node, bucket.clone());
                }
                Ok(bucket)
            }
            Err(_) => {
                // Classify: bytes that authenticate at a recent older
                // counter are a stale replay, not corruption.
                let lo = count.saturating_sub(DEFAULT_ROLLBACK_WINDOW);
                let stale = (lo..count).rev().any(|c| {
                    self.aead
                        .decrypt(&bucket_nonce(node, c), &raw, &bucket_aad(node))
                        .is_ok()
                });
                let kind = if stale {
                    IntegrityError::Rollback
                } else {
                    IntegrityError::Corruption
                };
                Err(OramError::Integrity { kind, node })
            }
        }
    }

    fn write_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize] + 1;
        self.write_counts[node as usize] = count;
        self.put(node, bucket, count);
        Ok(())
    }

    fn load_bucket(&mut self, node: u64, bucket: &Bucket) -> Result<(), OramError> {
        let count = self.write_counts[node as usize];
        self.put(node, bucket, count);
        Ok(())
    }

    fn write_count(&self, node: u64) -> u64 {
        self.write_counts[node as usize]
    }

    fn set_decrypt_window(&mut self, enabled: bool) {
        // No fault injector ever touches the simulated DRAM, so unlike
        // the SSD store there is no armed-faults suspension to manage.
        self.window = enabled.then(HashMap::new);
    }

    fn decrypt_window_active(&self) -> bool {
        self.window.is_some()
    }

    fn device_stats(&self) -> DeviceStats {
        *self.dram.stats()
    }

    fn reset_device_stats(&mut self) {
        self.dram.reset_stats();
    }

    fn set_telemetry(&mut self, registry: &Registry) {
        self.dram
            .set_telemetry(DeviceTelemetry::attach(registry, "dram.store"));
        self.aead.set_telemetry(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn geo() -> TreeGeometry {
        TreeGeometry::new(3, 4, 32)
    }

    fn key() -> Key {
        Key::from_bytes([7u8; 32])
    }

    #[test]
    fn ssd_bucket_roundtrip() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(11, 3, vec![0xCD; 32]));
        s.write_bucket(5, &b).unwrap();
        let got = s.read_bucket(5).unwrap();
        assert_eq!(got, b);
        // Other buckets still decrypt as empty.
        assert_eq!(s.read_bucket(0).unwrap().occupancy(), 0);
    }

    #[test]
    fn ssd_path_roundtrip_batched() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let leaf = 5;
        let mut path = s.read_path(leaf).unwrap();
        assert_eq!(path.len(), 4);
        path[2].try_insert(Block::new(9, leaf, vec![1u8; 32]));
        s.write_path(leaf, &path).unwrap();
        let again = s.read_path(leaf).unwrap();
        assert_eq!(again[2].occupancy(), 1);
        // Stats: two path reads + one path write of 4 pages each.
        let stats = s.device_stats();
        assert_eq!(stats.pages_read, 8);
        assert_eq!(stats.pages_written, 4);
    }

    #[test]
    fn ssd_init_excluded_from_stats() {
        let s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        assert_eq!(s.device_stats().pages_written, 0);
    }

    #[test]
    fn write_counts_advance() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        assert_eq!(s.write_count(0), 0);
        let b = Bucket::empty(4, 32);
        s.write_bucket(0, &b).unwrap();
        s.write_bucket(0, &b).unwrap();
        assert_eq!(s.write_count(0), 2);
        assert!(s.read_bucket(0).is_ok());
    }

    #[test]
    fn dram_bucket_roundtrip() {
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(2, 1, vec![0xEE; 32]));
        s.write_bucket(3, &b).unwrap();
        assert_eq!(s.read_bucket(3).unwrap(), b);
    }

    #[test]
    fn dram_default_path_ops() {
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let path = s.read_path(2).unwrap();
        assert_eq!(path.len(), 4);
        s.write_path(2, &path).unwrap();
        assert!(s.device_stats().bytes_written > 0);
    }

    #[test]
    fn dram_decrypt_window_preserves_results_and_stats() {
        // Twin stores, same writes and reads; the windowed one must see
        // identical buckets AND identical device stats (reads still issue
        // on window hits — only the AEAD is skipped).
        let mut plain = DramBucketStore::with_default_dram(geo(), key());
        let mut windowed = DramBucketStore::with_default_dram(geo(), key());
        windowed.set_decrypt_window(true);
        assert!(windowed.decrypt_window_active());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(5, 2, vec![0xAB; 32]));
        for s in [&mut plain, &mut windowed] {
            s.write_bucket(3, &b).unwrap();
        }
        for _ in 0..3 {
            assert_eq!(
                plain.read_bucket(3).unwrap(),
                windowed.read_bucket(3).unwrap()
            );
            assert_eq!(plain.read_path(2).unwrap(), windowed.read_path(2).unwrap());
        }
        assert_eq!(plain.device_stats(), windowed.device_stats());
    }

    #[test]
    fn dram_decrypt_window_cleared_on_decode_state() {
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        s.set_decrypt_window(true);
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(7, 1, vec![0x5A; 32]));
        s.write_bucket(2, &b).unwrap();
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();
        // Mutate after the snapshot, then restore: the window must not
        // serve the post-snapshot plaintext.
        s.write_bucket(2, &Bucket::empty(4, 32)).unwrap();
        let mut r = ByteReader::new(&bytes);
        s.decode_state(&mut r).unwrap();
        assert!(s.decrypt_window_active());
        assert_eq!(s.read_bucket(2).unwrap(), b);
    }

    #[test]
    fn buckets_bound_to_position() {
        // Ciphertext written at node 1 cannot be replayed at node 2 even at
        // the same counter value: decryption must fail.
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(1, 1, vec![1u8; 32]));
        s.write_bucket(1, &b).unwrap();
        // Forge: copy node 1's ciphertext into node 2's slot (bypassing API).
        let stride = s.geometry().bucket_stored_bytes() as u64;
        let mut raw = vec![0u8; stride as usize];
        s.dram.read(stride, &mut raw).unwrap();
        s.dram.write(2 * stride, &raw).unwrap();
        s.write_counts[2] = 1; // even matching the counter…
        assert_eq!(
            s.read_bucket(2),
            Err(OramError::Integrity {
                kind: IntegrityError::Corruption,
                node: 2
            })
        );
    }

    #[test]
    fn stale_bucket_rejected() {
        // Reading a bucket with an advanced counter (as after a lost write)
        // fails authentication — freshness.
        let mut s = DramBucketStore::with_default_dram(geo(), key());
        let b = Bucket::empty(4, 32);
        s.write_bucket(4, &b).unwrap();
        s.write_counts[4] = 5; // simulate counter mismatch
                               // The old ciphertext authenticates at its true (older) counter, so
                               // the classifier reports a rollback, not corruption.
        assert_eq!(
            s.read_bucket(4),
            Err(OramError::Integrity {
                kind: IntegrityError::Rollback,
                node: 4
            })
        );
    }

    #[test]
    fn ssd_inflight_bitflip_detected_and_recovered() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(1, 1, vec![0x5A; 32]));
        s.write_bucket(3, &b).unwrap();
        s.arm_faults(FaultConfig {
            bitflip_per_read: 1.0,
            ..FaultConfig::default()
        });
        // Every read attempt is corrupted in flight, so with retries the
        // read keeps detecting violations; with the injector disarmed the
        // device bytes are intact and the read succeeds.
        let before = s.integrity_stats();
        let err = s.read_bucket(3).unwrap_err();
        assert!(matches!(
            err,
            OramError::Integrity {
                kind: IntegrityError::Corruption,
                node: 3
            }
        ));
        let detected = s.integrity_stats().since(&before);
        assert_eq!(
            detected.detected_corruption,
            u64::from(DEFAULT_RETRY_LIMIT) + 1
        );
        assert_eq!(s.quarantined_nodes(), vec![3]);
        s.disarm_faults();
        assert_eq!(s.read_bucket(3).unwrap(), b);
        s.repair_bucket(3).unwrap();
        assert!(s.quarantined_nodes().is_empty());
    }

    #[test]
    fn ssd_transient_read_retried_transparently() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(7, 2, vec![0x11; 32]));
        s.write_bucket(6, &b).unwrap();
        s.arm_faults(FaultConfig {
            transient_per_read: 1.0,
            ..FaultConfig::default()
        });
        // The injector's one-shot cooldown means the in-loop retry
        // succeeds: the caller never sees the fault.
        assert_eq!(s.read_bucket(6).unwrap(), b);
        let stats = s.integrity_stats();
        assert_eq!(stats.transient_retries, 1);
        assert_eq!(stats.recovered, 1);
        assert!(s.quarantined_nodes().is_empty());
    }

    #[test]
    fn ssd_persistent_rollback_classified() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let b = Bucket::empty(4, 32);
        // Write twice so a pre-image at counter 1 exists, then replay it.
        s.write_bucket(2, &b).unwrap();
        let stale = s.ssd.snapshot_page(s.page_base(2)).unwrap();
        s.write_bucket(2, &b).unwrap();
        s.ssd.inject_rollback(s.page_base(2), &stale).unwrap();
        let err = s.read_bucket(2).unwrap_err();
        assert!(matches!(
            err,
            OramError::Integrity {
                kind: IntegrityError::Rollback,
                node: 2
            }
        ));
        assert!(s.integrity_stats().detected_rollback > 0);
        assert_eq!(s.quarantined_nodes(), vec![2]);
    }

    #[test]
    fn telemetry_mirrors_integrity_events() {
        let registry = Registry::new();
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        s.set_telemetry(&registry);
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(7, 2, vec![0x11; 32]));
        s.write_bucket(6, &b).unwrap();
        s.arm_faults(FaultConfig {
            transient_per_read: 1.0,
            ..FaultConfig::default()
        });
        assert_eq!(s.read_bucket(6).unwrap(), b);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("integrity.retries"), Some(1));
        assert_eq!(snap.counter("integrity.recovered"), Some(1));
        assert_eq!(snap.counter("integrity.quarantined"), Some(0));
        // Device traffic mirrored under the `storage` prefix, AEAD counted.
        assert!(snap.counter("storage.pages_read").unwrap_or(0) > 0);
        assert!(snap.counter("crypto.aead.decrypt_ops").unwrap_or(0) > 0);
    }

    #[test]
    fn telemetry_journals_quarantine() {
        let registry = Registry::new();
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        s.set_telemetry(&registry);
        s.set_retry_limit(1);
        s.ssd.inject_bitflip(s.page_base(5), 3).unwrap();
        assert!(s.read_bucket(5).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("integrity.quarantined"), Some(1));
        assert!(snap.counter("integrity.retries").unwrap_or(0) >= 1);
        let quarantine = snap
            .events
            .iter()
            .find(|e| e.name == "integrity.quarantine")
            .expect("quarantine journaled");
        assert_eq!(
            quarantine.field("node"),
            Some(&fedora_telemetry::Value::U64(5))
        );
    }

    #[test]
    fn decrypt_window_reads_match_plain_store() {
        let mut plain = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut windowed = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        windowed.set_decrypt_window(true);
        assert!(windowed.decrypt_window_active());
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(3, 6, vec![0x42; 32]));
        for s in [&mut plain, &mut windowed] {
            let mut path = s.read_path(6).unwrap();
            path[1] = b.clone();
            s.write_path(6, &path).unwrap();
        }
        // Second read hits the window on one store, decrypts on the other:
        // identical buckets, identical device traffic either way.
        assert_eq!(plain.read_path(6).unwrap(), windowed.read_path(6).unwrap());
        assert_eq!(plain.read_path(2).unwrap(), windowed.read_path(2).unwrap());
        assert_eq!(plain.device_stats(), windowed.device_stats());
        for node in 0..plain.geometry().num_nodes() {
            assert_eq!(plain.write_count(node), windowed.write_count(node));
        }
    }

    #[test]
    fn decrypt_window_suspended_while_faults_armed() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        s.set_decrypt_window(true);
        s.read_path(4).unwrap();
        s.arm_faults(FaultConfig::default());
        assert!(!s.decrypt_window_active());
        s.disarm_faults();
        assert!(s.decrypt_window_active());
    }

    #[test]
    fn raw_device_tampering_not_masked_by_window() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        s.set_decrypt_window(true);
        s.set_retry_limit(1);
        // Populate the window for leaf 5's path (including the root)…
        s.read_path(5).unwrap();
        // …then corrupt the root bucket's device bytes underneath it. Raw
        // device access drops the window, so the next read must verify —
        // and fail.
        s.ssd_mut().inject_bitflip(0, 3).unwrap();
        assert!(matches!(
            s.read_path(5),
            Err(OramError::Integrity {
                kind: IntegrityError::Corruption,
                node: 0
            })
        ));
    }

    #[test]
    fn deferred_writes_match_immediate_schedule() {
        let mut now = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let mut later = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        later.set_decrypt_window(true);
        let mut b = Bucket::empty(4, 32);
        b.try_insert(Block::new(9, 1, vec![0x77; 32]));
        let path: Vec<Bucket> = {
            let mut p = now.read_path(1).unwrap();
            p[2] = b.clone();
            p
        };
        now.write_path(1, &path).unwrap();
        later.defer_write_path(1, &path).unwrap();
        // Before the flush the device holds old bytes but the window serves
        // the staged plaintext — logically the write already happened.
        assert_eq!(later.read_path(1).unwrap()[2], b);
        assert_eq!(later.flush_deferred_writes().unwrap(), 1);
        assert_eq!(later.flush_deferred_writes().unwrap(), 0);
        // Post-flush the two stores agree on counters and device writes.
        for node in 0..now.geometry().num_nodes() {
            assert_eq!(now.write_count(node), later.write_count(node));
        }
        assert_eq!(
            now.device_stats().pages_written,
            later.device_stats().pages_written
        );
        // And the bytes are durable: a windowless re-read authenticates.
        later.set_decrypt_window(false);
        assert_eq!(later.read_path(1).unwrap()[2], b);
    }

    #[test]
    fn defer_without_window_writes_immediately() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        let path = s.read_path(3).unwrap();
        let before = s.device_stats().pages_written;
        s.defer_write_path(3, &path).unwrap();
        assert!(s.device_stats().pages_written > before);
        assert_eq!(s.flush_deferred_writes().unwrap(), 0);
    }

    #[test]
    fn scrub_reports_persistent_corruption() {
        let mut s = SsdBucketStore::new(geo(), key(), SsdProfile::default());
        s.set_retry_limit(1);
        // Flip a stored bit of bucket 5 on the device itself (persistent).
        s.ssd.inject_bitflip(s.page_base(5), 3).unwrap();
        let report = s.scrub();
        assert_eq!(report.checked, s.geometry().num_nodes());
        assert_eq!(report.healthy, report.checked - 1);
        assert_eq!(report.failed, vec![(5, IntegrityError::Corruption)]);
        assert!(!report.is_clean());
        // Repair re-encrypts an empty bucket: the tree scrubs clean again.
        s.repair_bucket(5).unwrap();
        let report = s.scrub();
        assert!(report.is_clean());
        assert_eq!(s.read_bucket(5).unwrap().occupancy(), 0);
    }
}
