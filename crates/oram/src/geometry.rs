//! Tree geometry: node indexing, path computation, and bucket/page layout.

use fedora_crypto::aead::TAG_LEN;

use crate::bucket::SLOT_META_BYTES;

/// Shape of an ORAM tree: depth, bucket arity `Z`, and block payload size.
///
/// Levels are numbered from the root (level 0) to the leaves (level
/// [`depth`](TreeGeometry::depth)); nodes use the usual heap numbering
/// (`node(l, i) = 2^l − 1 + i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeGeometry {
    depth: u32,
    z: usize,
    block_bytes: usize,
}

impl TreeGeometry {
    /// Creates a geometry with an explicit depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 40`, `z == 0`, or `block_bytes == 0`.
    pub fn new(depth: u32, z: usize, block_bytes: usize) -> Self {
        assert!(depth <= 40, "depth {depth} unreasonably deep");
        assert!(z > 0, "bucket must hold at least one block");
        assert!(block_bytes > 0, "blocks must be non-empty");
        TreeGeometry {
            depth,
            z,
            block_bytes,
        }
    }

    /// Creates the smallest geometry that holds `num_blocks` blocks at
    /// ≤ 50 % slot utilization — the provisioning rule that keeps stash
    /// occupancy bounded for both small-`Z` Path ORAM (`Z = 4` gives the
    /// classic one-block-per-leaf shape) and the large-`Z` page-filling
    /// buckets FEDORA uses on the SSD (§3.2's 1.5–8× memory amplification).
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0` or the arguments are degenerate.
    pub fn for_blocks(num_blocks: u64, block_bytes: usize, z: usize) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        let leaves = (2 * num_blocks)
            .div_ceil(z as u64)
            .next_power_of_two()
            .max(2);
        let depth = leaves.trailing_zeros();
        Self::new(depth, z, block_bytes)
    }

    /// Tree depth (leaves live at this level; root is level 0).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of leaves, `2^depth`.
    pub fn num_leaves(&self) -> u64 {
        1u64 << self.depth
    }

    /// Number of buckets in the tree, `2^(depth+1) − 1`.
    pub fn num_nodes(&self) -> u64 {
        (1u64 << (self.depth + 1)) - 1
    }

    /// Number of levels, `depth + 1`.
    pub fn num_levels(&self) -> u32 {
        self.depth + 1
    }

    /// Blocks per bucket.
    pub fn z(&self) -> usize {
        self.z
    }

    /// Block payload size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Total block capacity of the tree (`Z · num_nodes`).
    pub fn capacity_blocks(&self) -> u64 {
        self.z as u64 * self.num_nodes()
    }

    /// Plaintext bucket size: `Z` slots of metadata + payload.
    pub fn bucket_plain_bytes(&self) -> usize {
        self.z * (SLOT_META_BYTES + self.block_bytes)
    }

    /// Stored (encrypted) bucket size: plaintext + AEAD tag.
    pub fn bucket_stored_bytes(&self) -> usize {
        self.bucket_plain_bytes() + TAG_LEN
    }

    /// Number of device pages one bucket occupies.
    pub fn pages_per_bucket(&self, page_bytes: usize) -> u64 {
        (self.bucket_stored_bytes() as u64).div_ceil(page_bytes as u64)
    }

    /// Total stored tree size in bytes (page-aligned per bucket).
    pub fn tree_bytes(&self, page_bytes: usize) -> u64 {
        self.num_nodes() * self.pages_per_bucket(page_bytes) * page_bytes as u64
    }

    /// Heap index of the node at `(level, index)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the tree.
    pub fn node_at(&self, level: u32, index: u64) -> u64 {
        assert!(
            level <= self.depth,
            "level {level} beyond depth {}",
            self.depth
        );
        assert!(
            index < (1u64 << level),
            "index {index} out of range at level {level}"
        );
        (1u64 << level) - 1 + index
    }

    /// `(level, index)` coordinates of a heap node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the tree.
    pub fn coords_of(&self, node: u64) -> (u32, u64) {
        assert!(node < self.num_nodes(), "node {node} outside tree");
        let level = 63 - (node + 1).leading_zeros();
        (level, node + 1 - (1u64 << level))
    }

    /// Heap indices of the buckets along the path from root to `leaf`,
    /// root first. Length is `depth + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf >= num_leaves()`.
    pub fn path_nodes(&self, leaf: u64) -> Vec<u64> {
        assert!(leaf < self.num_leaves(), "leaf {leaf} out of range");
        (0..=self.depth)
            .map(|level| self.node_at(level, leaf >> (self.depth - level)))
            .collect()
    }

    /// Whether the bucket at heap index `node` lies on the path to `leaf`.
    pub fn on_path(&self, node: u64, leaf: u64) -> bool {
        let (level, index) = self.coords_of(node);
        leaf >> (self.depth - level) == index
    }

    /// The deepest level at which the paths to `leaf_a` and `leaf_b` still
    /// share a bucket — the criterion for greedy Path ORAM eviction.
    pub fn common_depth(&self, leaf_a: u64, leaf_b: u64) -> u32 {
        let differing = leaf_a ^ leaf_b;
        if differing == 0 {
            self.depth
        } else {
            // The highest set bit of the XOR marks the first divergence;
            // for leaves < 2^depth it is at most depth − 1.
            let msb = 63 - differing.leading_zeros(); // 0-based from LSB
            self.depth - (msb + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_blocks_sizes_tree() {
        // Z=4: 2·100/4 = 50 → 64 leaves.
        let g = TreeGeometry::for_blocks(100, 64, 4);
        assert_eq!(g.num_leaves(), 64);
        assert_eq!(g.depth(), 6);
        assert!(g.capacity_blocks() >= 2 * 100, "≤50% utilization");
        // Large Z packs more blocks per bucket into a shallower tree.
        let big = TreeGeometry::for_blocks(100, 64, 46);
        assert!(big.depth() < g.depth());
        assert!(big.capacity_blocks() >= 2 * 100);
    }

    #[test]
    fn node_indexing_roundtrip() {
        let g = TreeGeometry::new(4, 4, 64);
        for node in 0..g.num_nodes() {
            let (l, i) = g.coords_of(node);
            assert_eq!(g.node_at(l, i), node);
        }
    }

    #[test]
    fn path_structure() {
        let g = TreeGeometry::new(3, 4, 64);
        let path = g.path_nodes(5); // leaf bits 101
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], 0); // root
                                // leaf node index = 2^3 - 1 + 5 = 12
        assert_eq!(*path.last().unwrap(), 12);
        // Consecutive parent/child relation.
        for w in path.windows(2) {
            assert!(w[1] == 2 * w[0] + 1 || w[1] == 2 * w[0] + 2);
        }
    }

    #[test]
    fn on_path_consistent_with_path_nodes() {
        let g = TreeGeometry::new(4, 4, 64);
        for leaf in 0..g.num_leaves() {
            let path = g.path_nodes(leaf);
            for node in 0..g.num_nodes() {
                assert_eq!(g.on_path(node, leaf), path.contains(&node));
            }
        }
    }

    #[test]
    fn common_depth_examples() {
        let g = TreeGeometry::new(3, 4, 64);
        assert_eq!(g.common_depth(0b101, 0b101), 3);
        assert_eq!(g.common_depth(0b101, 0b100), 2);
        assert_eq!(g.common_depth(0b101, 0b111), 1);
        assert_eq!(g.common_depth(0b101, 0b001), 0);
    }

    #[test]
    fn bucket_layout_fits_pages() {
        // Z=4, block=64: plain = 4*(24+64) = 352, stored = 368 → 1 page.
        let g = TreeGeometry::new(5, 4, 64);
        assert_eq!(g.bucket_plain_bytes(), 352);
        assert_eq!(g.bucket_stored_bytes(), 368);
        assert_eq!(g.pages_per_bucket(4096), 1);
        // Z=46, block=64: stored = 46*88+16 = 4064+16 = 4064? compute:
        let g2 = TreeGeometry::new(5, 46, 64);
        assert_eq!(g2.pages_per_bucket(4096), 1);
        let g3 = TreeGeometry::new(5, 64, 64);
        assert_eq!(g3.pages_per_bucket(4096), 2);
    }

    #[test]
    fn tree_bytes_page_aligned() {
        let g = TreeGeometry::new(2, 4, 64);
        assert_eq!(g.tree_bytes(4096), 7 * 4096);
    }

    #[test]
    #[should_panic]
    fn leaf_out_of_range_panics() {
        TreeGeometry::new(2, 4, 64).path_nodes(4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn common_depth_matches_bruteforce(depth in 1u32..10, a in 0u64..1024, b in 0u64..1024) {
            let g = TreeGeometry::new(depth, 4, 64);
            let leaves = g.num_leaves();
            let (a, b) = (a % leaves, b % leaves);
            let pa = g.path_nodes(a);
            let pb = g.path_nodes(b);
            let brute = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count() as u32 - 1;
            prop_assert_eq!(g.common_depth(a, b), brute);
        }
    }
}
