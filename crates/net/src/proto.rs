//! Wire protocol: seq-numbered JSON request/response envelopes.
//!
//! Every frame payload (see [`crate::frame`]) is one JSON object with a
//! `seq` member (echoed verbatim in the response, so clients may pipeline
//! requests) and a `type` tag selecting the message. Numbers wider than
//! JSON's exact `f64` range — entry ids and fixed-point update words —
//! travel as decimal strings via [`fedora_fl::wire`]; serialized ORAM rows
//! travel as lowercase hex strings.
//!
//! The decode half runs against **untrusted** bytes: every failure is a
//! typed [`ProtoError`], vector lengths are bounded before materializing
//! them, and nothing here panics on any input.
//!
//! Request-scoped tracing rides the same envelopes: a `train` request may
//! carry an optional `trace` member (a lowercase-hex `u64` id, stamped by
//! [`crate::NetClient`] when the caller did not provide one). The server
//! echoes that id into per-request spans, phase-histogram exemplars, and
//! the `net.request.done` journal event, so one id follows a request from
//! socket byte to ORAM bucket. The ops verbs `scrape` and `tail` read the
//! same live registry back out: `scrape` streams a snapshot as one or
//! more [`Response::ScrapeOk`] chunks (each sized under the frame cap via
//! [`scrape_chunks`]), `tail` pages journal events from a client-held
//! cursor.

use fedora::server::WatchReport;
use fedora_fl::wire::{self, WireError};
use fedora_telemetry::json::{self, Json, JsonError};

/// Most entries a single `train` request may name. Combined with
/// [`wire::MAX_WIRE_WORDS`] this bounds a request's decoded size.
pub const MAX_ENTRIES_PER_TRAIN: usize = 256;

/// Most alarm names a `watch_ok` report may carry (untrusted-input bound;
/// the server only ever emits three distinct alarms today).
pub const MAX_WATCH_ALARMS: usize = 16;

/// Most journal events a single `tail_ok` reply may carry; servers clamp
/// the request's `max` to this and decoders refuse anything larger.
pub const MAX_TAIL_EVENTS: usize = 512;

/// Most fields one tailed event may carry (untrusted-input bound; real
/// journal events today stay under a dozen).
pub const MAX_TAIL_FIELDS: usize = 32;

/// A protocol decode failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoError {
    /// The payload is not valid JSON.
    Json(JsonError),
    /// A word/entry vector failed wire decoding.
    Wire(WireError),
    /// A structural violation (wrong shape, unknown type, missing member).
    Schema(&'static str),
    /// A `train` request named more entries than [`MAX_ENTRIES_PER_TRAIN`].
    TooManyEntries {
        /// Entries in the offending request.
        got: usize,
    },
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "payload is not JSON: {e}"),
            ProtoError::Wire(e) => write!(f, "payload wire field: {e}"),
            ProtoError::Schema(what) => write!(f, "malformed message: {what}"),
            ProtoError::TooManyEntries { got } => {
                write!(
                    f,
                    "{got} entries exceed the per-request maximum {MAX_ENTRIES_PER_TRAIN}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Json(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Wire(e)
    }
}

/// Serialization of a `scrape` reply body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScrapeFormat {
    /// Prometheus text exposition format 0.0.4 (wire value `"prom"`).
    Prom,
    /// The single-line JSON snapshot, same shape as `--metrics-out`
    /// (wire value `"json"`).
    Json,
}

/// One journal event as carried by [`Response::TailOk`]. Field values are
/// rendered to display text: `u64`/`i64` values keep full precision as
/// decimal strings, and the server records trace ids as `0x…` hex strings
/// so tail output matches exemplar ids verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct TailEvent {
    /// Journal sequence number (dense from 0 over the registry's life,
    /// including events since evicted from the bounded buffer).
    pub seq: u64,
    /// Event name (`round.commit`, `net.request.done`, ...).
    pub name: String,
    /// Field key/value pairs in insertion order, values as display text.
    pub fields: Vec<(String, String)>,
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register this connection; the server assigns a client id.
    Hello,
    /// Participate in the next round: name entries, provide the
    /// fixed-point update words for each (parallel vectors).
    Train {
        /// Client id assigned by [`Response::Welcome`].
        client: u32,
        /// Embedding-table entry ids this client touches.
        entries: Vec<u64>,
        /// One fixed-point word vector per entry, SecAgg-compatible.
        updates: Vec<Vec<u64>>,
        /// Optional caller-supplied trace id for request-scoped tracing
        /// (`None`/0 means "let the server assign one"). Travels as a
        /// lowercase-hex string.
        trace: Option<u64>,
    },
    /// Admin: return a metrics snapshot.
    Metrics,
    /// Admin: liveness + round status.
    Health,
    /// Admin: return the latest watch-plane report.
    Watch,
    /// Ops: stream the current telemetry snapshot (audit-only series
    /// redacted) as one or more [`Response::ScrapeOk`] chunks.
    Scrape {
        /// Requested body serialization.
        format: ScrapeFormat,
    },
    /// Ops: page journal events (plus completed span records, which are
    /// journal events too) from a client-held cursor.
    Tail {
        /// Return events with `seq >= cursor` (0 = from the oldest
        /// retained event).
        cursor: u64,
        /// Most events wanted; the server clamps to [`MAX_TAIL_EVENTS`].
        max: u64,
    },
    /// Admin: force a durable checkpoint.
    Checkpoint,
    /// Admin: drain in-flight rounds and stop the server.
    Shutdown,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Registration acknowledged with the assigned client id.
    Welcome {
        /// The id to use in subsequent [`Request::Train`] messages.
        client: u32,
    },
    /// The round this request rode in committed; per-entry row payloads
    /// (`None` where the oblivious pipeline reported the entry lost).
    TrainOk {
        /// Committed round number.
        round: u64,
        /// Serialized row bytes per requested entry.
        rows: Vec<Option<Vec<u8>>>,
    },
    /// Metrics snapshot as a JSON document.
    MetricsOk {
        /// The snapshot, in the same shape `--metrics-out` writes.
        metrics: Json,
    },
    /// Liveness report.
    HealthOk {
        /// Rounds durably committed so far.
        committed_rounds: u64,
        /// Whether a round is currently executing.
        round_active: bool,
        /// Cumulative ε spent (the accountant's `fdp.total.epsilon`;
        /// infinite when the mechanism runs without privacy).
        total_epsilon: f64,
        /// Requests shed by admission control since startup.
        shed_requests: u64,
        /// Connections shed by admission control since startup.
        shed_connections: u64,
    },
    /// The latest watch-plane report (`None` until the watch plane has
    /// sampled at least once, or when it is disabled).
    WatchOk {
        /// The report, if one exists.
        report: Option<WatchReport>,
    },
    /// One chunk of a `scrape` reply body. Chunks for one request share
    /// its `seq` and arrive in order; the final chunk carries `done`.
    ScrapeOk {
        /// This chunk of the serialized snapshot (UTF-8 text).
        body: String,
        /// Whether this is the final chunk of the reply.
        done: bool,
    },
    /// A page of journal events answering [`Request::Tail`].
    TailOk {
        /// Events with `seq >= cursor`, oldest first (empty when the
        /// cursor is already at the journal head).
        events: Vec<TailEvent>,
        /// Pass this as the next request's `cursor` to resume where this
        /// page ended (unchanged when no events were returned).
        next_cursor: u64,
        /// Events evicted from the bounded journal since startup — a gap
        /// detector: a cursor older than `seq` of the first event means
        /// the window in between is gone.
        dropped: u64,
    },
    /// Checkpoint written.
    CheckpointOk {
        /// Checkpoint generation number.
        generation: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// Admission control shed this request — retry later.
    Overloaded,
    /// The request failed; the session stays usable unless the transport
    /// itself was violated.
    Error {
        /// Coarse machine-readable category (`"proto"`, `"server"`, ...).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Finite numbers encode as JSON numbers; ±∞/NaN (legal for ε totals when
/// privacy is off) encode as `null` and decode back to `+∞`.
fn finite_num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

fn get_u64(doc: &Json, key: &'static str, err: &'static str) -> Result<u64, ProtoError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or(ProtoError::Schema(err))
}

fn get_f64_or_inf(doc: &Json, key: &'static str, err: &'static str) -> Result<f64, ProtoError> {
    match doc.get(key) {
        Some(Json::Null) => Ok(f64::INFINITY),
        Some(j) => j.as_f64().ok_or(ProtoError::Schema(err)),
        None => Err(ProtoError::Schema(err)),
    }
}

fn envelope(seq: u64, kind: &str, mut rest: Vec<(String, Json)>) -> Vec<u8> {
    let mut members = vec![
        ("seq".to_owned(), Json::Num(seq as f64)),
        ("type".to_owned(), Json::Str(kind.to_owned())),
    ];
    members.append(&mut rest);
    Json::Obj(members).dump().into_bytes()
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, ProtoError> {
    if !text.len().is_multiple_of(2) {
        return Err(ProtoError::Schema("odd-length hex row"));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            text.get(i..i + 2)
                .and_then(|pair| u8::from_str_radix(pair, 16).ok())
                .ok_or(ProtoError::Schema("non-hex byte in row"))
        })
        .collect()
}

/// Trace ids travel as lowercase hex strings (no `0x` prefix) so they
/// survive JSON's `f64` number range intact.
fn trace_json(trace: u64) -> Json {
    Json::Str(format!("{trace:x}"))
}

fn decode_trace(doc: &Json) -> Result<Option<u64>, ProtoError> {
    match doc.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) if !s.is_empty() && s.len() <= 16 => u64::from_str_radix(s, 16)
            .map(Some)
            .map_err(|_| ProtoError::Schema("trace must be a hex u64")),
        Some(_) => Err(ProtoError::Schema("trace must be a hex u64")),
    }
}

/// Splits a scrape body into [`Response::ScrapeOk`] chunks, each
/// guaranteed to encode — with any `seq` — within a `max_frame`-byte
/// frame payload. The final chunk carries `done: true`; an empty body
/// yields one empty terminal chunk. Splits respect UTF-8 boundaries and
/// budget for JSON string escaping, so a body full of newlines (the
/// Prometheus exposition) still frames correctly.
pub fn scrape_chunks(body: &str, max_frame: usize) -> Vec<Response> {
    // Fixed envelope cost: `{"seq":<=20 digits>,"type":"scrape_ok",
    // "body":"…","done":false}` is under 80 bytes outside the body.
    const ENVELOPE_OVERHEAD: usize = 96;
    let budget = max_frame.saturating_sub(ENVELOPE_OVERHEAD).max(16);
    let mut bodies = Vec::new();
    let mut start = 0;
    while start < body.len() {
        let mut used = 0usize;
        let mut end = start;
        for c in body[start..].chars() {
            // Escaped cost mirrors the JSON dumper: the short escapes are
            // two bytes, other control characters six, everything else
            // its UTF-8 length.
            let cost = match c {
                '"' | '\\' | '\n' | '\r' | '\t' => 2,
                c if (c as u32) < 0x20 => 6,
                c => c.len_utf8(),
            };
            if used + cost > budget && end > start {
                break;
            }
            used += cost;
            end += c.len_utf8();
        }
        bodies.push(body[start..end].to_owned());
        start = end;
    }
    if bodies.is_empty() {
        bodies.push(String::new());
    }
    let last = bodies.len() - 1;
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| Response::ScrapeOk {
            body,
            done: i == last,
        })
        .collect()
}

/// Encodes a request into a frame payload.
pub fn encode_request(seq: u64, req: &Request) -> Vec<u8> {
    match req {
        Request::Hello => envelope(seq, "hello", vec![]),
        Request::Train {
            client,
            entries,
            updates,
            trace,
        } => {
            let mut members = vec![
                ("client".to_owned(), Json::Num(*client as f64)),
                ("entries".to_owned(), wire::encode_words(entries)),
                (
                    "updates".to_owned(),
                    Json::Arr(updates.iter().map(|w| wire::encode_words(w)).collect()),
                ),
            ];
            if let Some(trace) = trace {
                members.push(("trace".to_owned(), trace_json(*trace)));
            }
            envelope(seq, "train", members)
        }
        Request::Metrics => envelope(seq, "metrics", vec![]),
        Request::Health => envelope(seq, "health", vec![]),
        Request::Watch => envelope(seq, "watch", vec![]),
        Request::Scrape { format } => envelope(
            seq,
            "scrape",
            vec![(
                "format".to_owned(),
                Json::Str(
                    match format {
                        ScrapeFormat::Prom => "prom",
                        ScrapeFormat::Json => "json",
                    }
                    .to_owned(),
                ),
            )],
        ),
        Request::Tail { cursor, max } => envelope(
            seq,
            "tail",
            vec![
                ("cursor".to_owned(), Json::Num(*cursor as f64)),
                ("max".to_owned(), Json::Num(*max as f64)),
            ],
        ),
        Request::Checkpoint => envelope(seq, "checkpoint", vec![]),
        Request::Shutdown => envelope(seq, "shutdown", vec![]),
    }
}

/// Encodes a response into a frame payload.
pub fn encode_response(seq: u64, resp: &Response) -> Vec<u8> {
    match resp {
        Response::Welcome { client } => envelope(
            seq,
            "welcome",
            vec![("client".to_owned(), Json::Num(*client as f64))],
        ),
        Response::TrainOk { round, rows } => envelope(
            seq,
            "train_ok",
            vec![
                ("round".to_owned(), Json::Num(*round as f64)),
                (
                    "rows".to_owned(),
                    Json::Arr(
                        rows.iter()
                            .map(|row| match row {
                                Some(bytes) => Json::Str(hex_encode(bytes)),
                                None => Json::Null,
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
        Response::MetricsOk { metrics } => envelope(
            seq,
            "metrics_ok",
            vec![("metrics".to_owned(), metrics.clone())],
        ),
        Response::HealthOk {
            committed_rounds,
            round_active,
            total_epsilon,
            shed_requests,
            shed_connections,
        } => envelope(
            seq,
            "health_ok",
            vec![
                (
                    "committed_rounds".to_owned(),
                    Json::Num(*committed_rounds as f64),
                ),
                ("round_active".to_owned(), Json::Bool(*round_active)),
                ("total_epsilon".to_owned(), finite_num(*total_epsilon)),
                ("shed_requests".to_owned(), Json::Num(*shed_requests as f64)),
                (
                    "shed_connections".to_owned(),
                    Json::Num(*shed_connections as f64),
                ),
            ],
        ),
        Response::WatchOk { report } => {
            let body = match report {
                None => Json::Null,
                Some(r) => Json::Obj(vec![
                    ("round".to_owned(), Json::Num(r.round as f64)),
                    (
                        "window_rounds".to_owned(),
                        Json::Num(r.window_rounds as f64),
                    ),
                    ("round_p99_ns".to_owned(), Json::Num(r.round_p99_ns as f64)),
                    ("requests".to_owned(), Json::Num(r.requests as f64)),
                    ("shed_ppm".to_owned(), Json::Num(r.shed_ppm as f64)),
                    ("total_epsilon".to_owned(), finite_num(r.total_epsilon)),
                    ("eps_hat".to_owned(), finite_num(r.eps_hat)),
                    ("eps_samples".to_owned(), Json::Num(r.eps_samples as f64)),
                    ("eps_budget".to_owned(), finite_num(r.eps_budget)),
                    (
                        "alarms".to_owned(),
                        Json::Arr(r.alarms.iter().map(|a| Json::Str(a.clone())).collect()),
                    ),
                    ("overhead_ns".to_owned(), Json::Num(r.overhead_ns as f64)),
                ]),
            };
            envelope(seq, "watch_ok", vec![("report".to_owned(), body)])
        }
        Response::ScrapeOk { body, done } => envelope(
            seq,
            "scrape_ok",
            vec![
                ("body".to_owned(), Json::Str(body.clone())),
                ("done".to_owned(), Json::Bool(*done)),
            ],
        ),
        Response::TailOk {
            events,
            next_cursor,
            dropped,
        } => envelope(
            seq,
            "tail_ok",
            vec![
                (
                    "events".to_owned(),
                    Json::Arr(
                        events
                            .iter()
                            .map(|e| {
                                Json::Obj(vec![
                                    ("seq".to_owned(), Json::Num(e.seq as f64)),
                                    ("name".to_owned(), Json::Str(e.name.clone())),
                                    (
                                        "fields".to_owned(),
                                        Json::Obj(
                                            e.fields
                                                .iter()
                                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("next_cursor".to_owned(), Json::Num(*next_cursor as f64)),
                ("dropped".to_owned(), Json::Num(*dropped as f64)),
            ],
        ),
        Response::CheckpointOk { generation, bytes } => envelope(
            seq,
            "checkpoint_ok",
            vec![
                ("generation".to_owned(), Json::Num(*generation as f64)),
                ("bytes".to_owned(), Json::Num(*bytes as f64)),
            ],
        ),
        Response::ShuttingDown => envelope(seq, "shutting_down", vec![]),
        Response::Overloaded => envelope(seq, "overloaded", vec![]),
        Response::Error { kind, message } => envelope(
            seq,
            "error",
            vec![
                ("kind".to_owned(), Json::Str(kind.clone())),
                ("message".to_owned(), Json::Str(message.clone())),
            ],
        ),
    }
}

fn parse_envelope(payload: &[u8]) -> Result<(u64, String, Json), ProtoError> {
    let doc = json::parse_bytes(payload)?;
    let seq = doc
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or(ProtoError::Schema("missing or non-integer seq"))?;
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or(ProtoError::Schema("missing type tag"))?
        .to_owned();
    Ok((seq, kind, doc))
}

/// Decodes a request frame payload, returning `(seq, request)`.
///
/// # Errors
///
/// [`ProtoError`] on any structural, wire, or JSON violation.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtoError> {
    let (seq, kind, doc) = parse_envelope(payload)?;
    let req = match kind.as_str() {
        "hello" => Request::Hello,
        "train" => {
            let client = doc
                .get("client")
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or(ProtoError::Schema("client must be a u32"))?;
            let entries = wire::decode_words(
                doc.get("entries")
                    .ok_or(ProtoError::Schema("missing entries"))?,
            )?;
            if entries.len() > MAX_ENTRIES_PER_TRAIN {
                return Err(ProtoError::TooManyEntries { got: entries.len() });
            }
            let raw_updates = doc
                .get("updates")
                .and_then(Json::as_array)
                .ok_or(ProtoError::Schema("updates must be an array"))?;
            if raw_updates.len() != entries.len() {
                return Err(ProtoError::Schema("updates must parallel entries"));
            }
            let updates = raw_updates
                .iter()
                .map(wire::decode_words)
                .collect::<Result<Vec<_>, _>>()?;
            Request::Train {
                client,
                entries,
                updates,
                trace: decode_trace(&doc)?,
            }
        }
        "metrics" => Request::Metrics,
        "health" => Request::Health,
        "watch" => Request::Watch,
        "scrape" => Request::Scrape {
            format: match doc.get("format").and_then(Json::as_str) {
                Some("prom") => ScrapeFormat::Prom,
                Some("json") => ScrapeFormat::Json,
                _ => return Err(ProtoError::Schema("format must be prom or json")),
            },
        },
        "tail" => Request::Tail {
            cursor: get_u64(&doc, "cursor", "missing tail cursor")?,
            max: get_u64(&doc, "max", "missing tail max")?,
        },
        "checkpoint" => Request::Checkpoint,
        "shutdown" => Request::Shutdown,
        _ => return Err(ProtoError::Schema("unknown request type")),
    };
    Ok((seq, req))
}

/// Decodes a response frame payload, returning `(seq, response)`.
///
/// # Errors
///
/// [`ProtoError`] on any structural, wire, or JSON violation.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtoError> {
    let (seq, kind, doc) = parse_envelope(payload)?;
    let resp = match kind.as_str() {
        "welcome" => Response::Welcome {
            client: doc
                .get("client")
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or(ProtoError::Schema("client must be a u32"))?,
        },
        "train_ok" => {
            let round = doc
                .get("round")
                .and_then(Json::as_u64)
                .ok_or(ProtoError::Schema("round must be a u64"))?;
            let raw_rows = doc
                .get("rows")
                .and_then(Json::as_array)
                .ok_or(ProtoError::Schema("rows must be an array"))?;
            if raw_rows.len() > MAX_ENTRIES_PER_TRAIN {
                return Err(ProtoError::TooManyEntries {
                    got: raw_rows.len(),
                });
            }
            let rows = raw_rows
                .iter()
                .map(|row| match row {
                    Json::Null => Ok(None),
                    Json::Str(hex) => hex_decode(hex).map(Some),
                    _ => Err(ProtoError::Schema("row must be hex or null")),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Response::TrainOk { round, rows }
        }
        "metrics_ok" => Response::MetricsOk {
            metrics: doc
                .get("metrics")
                .cloned()
                .ok_or(ProtoError::Schema("missing metrics"))?,
        },
        "health_ok" => Response::HealthOk {
            committed_rounds: doc
                .get("committed_rounds")
                .and_then(Json::as_u64)
                .ok_or(ProtoError::Schema("missing committed_rounds"))?,
            round_active: match doc.get("round_active") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(ProtoError::Schema("missing round_active")),
            },
            total_epsilon: get_f64_or_inf(&doc, "total_epsilon", "missing total_epsilon")?,
            shed_requests: get_u64(&doc, "shed_requests", "missing shed_requests")?,
            shed_connections: get_u64(&doc, "shed_connections", "missing shed_connections")?,
        },
        "watch_ok" => {
            let report = match doc.get("report") {
                None | Some(Json::Null) => None,
                Some(obj @ Json::Obj(_)) => {
                    let raw_alarms = obj
                        .get("alarms")
                        .and_then(Json::as_array)
                        .ok_or(ProtoError::Schema("alarms must be an array"))?;
                    if raw_alarms.len() > MAX_WATCH_ALARMS {
                        return Err(ProtoError::Schema("too many alarms"));
                    }
                    let alarms = raw_alarms
                        .iter()
                        .map(|a| {
                            a.as_str()
                                .map(str::to_owned)
                                .ok_or(ProtoError::Schema("alarm must be a string"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Some(WatchReport {
                        round: get_u64(obj, "round", "missing report round")?,
                        window_rounds: get_u64(obj, "window_rounds", "missing window_rounds")?,
                        round_p99_ns: get_u64(obj, "round_p99_ns", "missing round_p99_ns")?,
                        requests: get_u64(obj, "requests", "missing requests")?,
                        shed_ppm: get_u64(obj, "shed_ppm", "missing shed_ppm")?,
                        total_epsilon: get_f64_or_inf(
                            obj,
                            "total_epsilon",
                            "missing report total_epsilon",
                        )?,
                        eps_hat: get_f64_or_inf(obj, "eps_hat", "missing eps_hat")?,
                        eps_samples: get_u64(obj, "eps_samples", "missing eps_samples")?,
                        eps_budget: get_f64_or_inf(obj, "eps_budget", "missing eps_budget")?,
                        alarms,
                        overhead_ns: get_u64(obj, "overhead_ns", "missing overhead_ns")?,
                    })
                }
                Some(_) => return Err(ProtoError::Schema("report must be an object or null")),
            };
            Response::WatchOk { report }
        }
        "scrape_ok" => Response::ScrapeOk {
            body: doc
                .get("body")
                .and_then(Json::as_str)
                .ok_or(ProtoError::Schema("missing scrape body"))?
                .to_owned(),
            done: match doc.get("done") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(ProtoError::Schema("missing scrape done flag")),
            },
        },
        "tail_ok" => {
            let raw_events = doc
                .get("events")
                .and_then(Json::as_array)
                .ok_or(ProtoError::Schema("events must be an array"))?;
            if raw_events.len() > MAX_TAIL_EVENTS {
                return Err(ProtoError::Schema("too many tailed events"));
            }
            let events = raw_events
                .iter()
                .map(|e| {
                    let seq = get_u64(e, "seq", "missing event seq")?;
                    let name = e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or(ProtoError::Schema("missing event name"))?
                        .to_owned();
                    let raw_fields = match e.get("fields") {
                        Some(Json::Obj(members)) => members,
                        _ => return Err(ProtoError::Schema("event fields must be an object")),
                    };
                    if raw_fields.len() > MAX_TAIL_FIELDS {
                        return Err(ProtoError::Schema("too many event fields"));
                    }
                    let fields = raw_fields
                        .iter()
                        .map(|(k, v)| {
                            v.as_str()
                                .map(|v| (k.clone(), v.to_owned()))
                                .ok_or(ProtoError::Schema("event field must be a string"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(TailEvent { seq, name, fields })
                })
                .collect::<Result<Vec<_>, ProtoError>>()?;
            Response::TailOk {
                events,
                next_cursor: get_u64(&doc, "next_cursor", "missing next_cursor")?,
                dropped: get_u64(&doc, "dropped", "missing dropped")?,
            }
        }
        "checkpoint_ok" => Response::CheckpointOk {
            generation: doc
                .get("generation")
                .and_then(Json::as_u64)
                .ok_or(ProtoError::Schema("missing generation"))?,
            bytes: doc
                .get("bytes")
                .and_then(Json::as_u64)
                .ok_or(ProtoError::Schema("missing bytes"))?,
        },
        "shutting_down" => Response::ShuttingDown,
        "overloaded" => Response::Overloaded,
        "error" => Response::Error {
            kind: doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(ProtoError::Schema("missing error kind"))?
                .to_owned(),
            message: doc
                .get("message")
                .and_then(Json::as_str)
                .ok_or(ProtoError::Schema("missing error message"))?
                .to_owned(),
        },
        _ => return Err(ProtoError::Schema("unknown response type")),
    };
    Ok((seq, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello,
            Request::Train {
                client: 9,
                entries: vec![0, u64::MAX, 1 << 60],
                updates: vec![vec![1, 2], vec![u64::MAX], vec![]],
                trace: None,
            },
            // Full-width trace ids must survive the hex round trip.
            Request::Train {
                client: 1,
                entries: vec![7],
                updates: vec![vec![3]],
                trace: Some(u64::MAX),
            },
            Request::Metrics,
            Request::Health,
            Request::Watch,
            Request::Scrape {
                format: ScrapeFormat::Prom,
            },
            Request::Scrape {
                format: ScrapeFormat::Json,
            },
            Request::Tail {
                cursor: 0,
                max: 256,
            },
            Request::Checkpoint,
            Request::Shutdown,
        ];
        for (seq, req) in cases.into_iter().enumerate() {
            let payload = encode_request(seq as u64, &req);
            assert_eq!(decode_request(&payload).unwrap(), (seq as u64, req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Welcome { client: 3 },
            Response::TrainOk {
                round: 12,
                rows: vec![Some(vec![0x00, 0xff, 0xa5]), None, Some(vec![])],
            },
            Response::MetricsOk {
                metrics: json::parse(r#"{"counters": {"a": 1}}"#).unwrap(),
            },
            Response::HealthOk {
                committed_rounds: 7,
                round_active: true,
                total_epsilon: 1.25,
                shed_requests: 3,
                shed_connections: 1,
            },
            // ε totals can be infinite when privacy is off; they travel
            // as null and decode back to +∞.
            Response::HealthOk {
                committed_rounds: 0,
                round_active: false,
                total_epsilon: f64::INFINITY,
                shed_requests: 0,
                shed_connections: 0,
            },
            Response::WatchOk { report: None },
            Response::WatchOk {
                report: Some(WatchReport {
                    round: 40,
                    window_rounds: 10,
                    round_p99_ns: 1_250_000,
                    requests: 480,
                    shed_ppm: 20_833,
                    total_epsilon: 4.0,
                    eps_hat: 0.07,
                    eps_samples: 64,
                    eps_budget: 0.1,
                    alarms: vec!["round_p99".into(), "empirical_eps".into()],
                    overhead_ns: 18_000,
                }),
            },
            Response::ScrapeOk {
                body: "fedora_net_requests 3\n".to_owned(),
                done: false,
            },
            Response::ScrapeOk {
                body: String::new(),
                done: true,
            },
            Response::TailOk {
                events: vec![
                    TailEvent {
                        seq: 41,
                        name: "net.request.done".to_owned(),
                        fields: vec![
                            ("trace".to_owned(), "0xdeadbeef".to_owned()),
                            ("round".to_owned(), "12".to_owned()),
                        ],
                    },
                    TailEvent {
                        seq: 42,
                        name: "round.commit".to_owned(),
                        fields: vec![],
                    },
                ],
                next_cursor: 43,
                dropped: 7,
            },
            Response::TailOk {
                events: vec![],
                next_cursor: 0,
                dropped: 0,
            },
            Response::CheckpointOk {
                generation: 2,
                bytes: 4096,
            },
            Response::ShuttingDown,
            Response::Overloaded,
            Response::Error {
                kind: "proto".into(),
                message: "nope".into(),
            },
        ];
        for (seq, resp) in cases.into_iter().enumerate() {
            let payload = encode_response(seq as u64, &resp);
            assert_eq!(decode_response(&payload).unwrap(), (seq as u64, resp));
        }
    }

    #[test]
    fn rejects_malformed_envelopes() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"seq\": 1}",
            b"{\"seq\": -1, \"type\": \"hello\"}",
            b"{\"seq\": 1.5, \"type\": \"hello\"}",
            b"{\"seq\": 1, \"type\": \"no_such_type\"}",
            b"{\"seq\": 1, \"type\": 42}",
        ] {
            assert!(
                decode_request(bad).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
            assert!(decode_response(bad).is_err());
        }
    }

    #[test]
    fn rejects_malformed_train_requests() {
        for bad in [
            // entries/updates length mismatch
            r#"{"seq":1,"type":"train","client":1,"entries":["1"],"updates":[]}"#.to_string(),
            // missing client
            r#"{"seq":1,"type":"train","entries":[],"updates":[]}"#.to_string(),
            // client out of u32 range
            r#"{"seq":1,"type":"train","client":4294967296,"entries":[],"updates":[]}"#.to_string(),
            // numeric entry ids (precision-lossy) are refused
            r#"{"seq":1,"type":"train","client":1,"entries":[1],"updates":[["0"]]}"#.to_string(),
            // bad word inside an update vector
            r#"{"seq":1,"type":"train","client":1,"entries":["1"],"updates":[["x"]]}"#.to_string(),
        ] {
            assert!(decode_request(bad.as_bytes()).is_err(), "accepted {bad}");
        }
        // Entry-count bound.
        let ids: Vec<String> = (0..MAX_ENTRIES_PER_TRAIN as u64 + 1)
            .map(|i| format!("\"{i}\""))
            .collect();
        let flood = format!(
            r#"{{"seq":1,"type":"train","client":1,"entries":[{}],"updates":[{}]}}"#,
            ids.join(","),
            ids.iter().map(|_| "[]").collect::<Vec<_>>().join(",")
        );
        assert!(matches!(
            decode_request(flood.as_bytes()),
            Err(ProtoError::TooManyEntries { .. })
        ));
    }

    #[test]
    fn rejects_malformed_ops_messages() {
        for bad in [
            // scrape: unknown / missing format
            r#"{"seq":1,"type":"scrape"}"#,
            r#"{"seq":1,"type":"scrape","format":"xml"}"#,
            r#"{"seq":1,"type":"scrape","format":7}"#,
            // tail: missing / non-integer members
            r#"{"seq":1,"type":"tail"}"#,
            r#"{"seq":1,"type":"tail","cursor":-1,"max":4}"#,
            r#"{"seq":1,"type":"tail","cursor":0}"#,
            // train trace: not hex / too wide / wrong type
            r#"{"seq":1,"type":"train","client":1,"entries":[],"updates":[],"trace":"zz"}"#,
            r#"{"seq":1,"type":"train","client":1,"entries":[],"updates":[],"trace":"00000000000000000"}"#,
            r#"{"seq":1,"type":"train","client":1,"entries":[],"updates":[],"trace":12}"#,
            r#"{"seq":1,"type":"train","client":1,"entries":[],"updates":[],"trace":""}"#,
        ] {
            assert!(decode_request(bad.as_bytes()).is_err(), "accepted {bad}");
        }
        for bad in [
            r#"{"seq":1,"type":"scrape_ok","body":"x"}"#,
            r#"{"seq":1,"type":"scrape_ok","done":true}"#,
            r#"{"seq":1,"type":"tail_ok","events":"x","next_cursor":0,"dropped":0}"#,
            r#"{"seq":1,"type":"tail_ok","events":[{"seq":1}],"next_cursor":0,"dropped":0}"#,
            r#"{"seq":1,"type":"tail_ok","events":[{"seq":1,"name":"e","fields":{"k":1}}],"next_cursor":0,"dropped":0}"#,
            r#"{"seq":1,"type":"tail_ok","events":[],"next_cursor":0}"#,
        ] {
            assert!(decode_response(bad.as_bytes()).is_err(), "accepted {bad}");
        }
        // Event-count bound on the reply path.
        let flood_events: Vec<String> = (0..MAX_TAIL_EVENTS + 1)
            .map(|i| format!(r#"{{"seq":{i},"name":"e","fields":{{}}}}"#))
            .collect();
        let flood = format!(
            r#"{{"seq":1,"type":"tail_ok","events":[{}],"next_cursor":0,"dropped":0}}"#,
            flood_events.join(",")
        );
        assert!(decode_response(flood.as_bytes()).is_err());
    }

    #[test]
    fn scrape_chunks_respect_frame_caps_and_reassemble() {
        // A body that stresses escaping: newlines double in size when
        // dumped, exactly like the Prometheus exposition format.
        let original: String = (0..200)
            .map(|i| format!("metric_{i} {i}\n"))
            .collect::<String>();
        let max_frame = 256;
        let chunks = scrape_chunks(&original, max_frame);
        assert!(chunks.len() > 1, "small cap must force multiple chunks");
        let mut reassembled = String::new();
        for (i, chunk) in chunks.iter().enumerate() {
            let Response::ScrapeOk { body, done } = chunk else {
                panic!("scrape_chunks produced {chunk:?}");
            };
            // Every chunk must actually frame under the cap, worst-case
            // seq included.
            let encoded = encode_response(u64::MAX, chunk);
            assert!(
                encoded.len() <= max_frame,
                "chunk {i} encodes to {} > {max_frame}",
                encoded.len()
            );
            assert_eq!(*done, i == chunks.len() - 1, "done only on last chunk");
            reassembled.push_str(body);
        }
        assert_eq!(reassembled, original, "no bytes lost or reordered");

        // Empty body: one terminal chunk.
        assert_eq!(
            scrape_chunks("", max_frame),
            vec![Response::ScrapeOk {
                body: String::new(),
                done: true
            }]
        );
        // A cap too small for the envelope still makes progress (one char
        // minimum per chunk) instead of looping forever.
        let tiny = scrape_chunks("abcdef", 8);
        let total: String = tiny
            .iter()
            .map(|c| match c {
                Response::ScrapeOk { body, .. } => body.as_str(),
                _ => "",
            })
            .collect();
        assert_eq!(total, "abcdef");
    }

    #[test]
    fn rejects_malformed_rows() {
        for bad in [
            r#"{"seq":1,"type":"train_ok","round":1,"rows":["zz"]}"#,
            r#"{"seq":1,"type":"train_ok","round":1,"rows":["abc"]}"#,
            r#"{"seq":1,"type":"train_ok","round":1,"rows":[1]}"#,
        ] {
            assert!(decode_response(bad.as_bytes()).is_err(), "accepted {bad}");
        }
    }
}
