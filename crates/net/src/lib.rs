//! Network-facing serving front end for the FEDORA pipeline.
//!
//! The paper's server is an always-on service: clients connect over the
//! network, download their slice of the model, and upload updates that
//! ride a privacy-budgeted ORAM round. This crate is that front end,
//! built — like the rest of the workspace — on `std` alone:
//!
//! * [`frame`] — length-prefixed frames with typed error handling for
//!   truncation, oversize, and garbage (the first line of defense against
//!   untrusted bytes);
//! * [`proto`] — seq-numbered JSON request/response envelopes carrying
//!   SecAgg-compatible fixed-point payloads ([`fedora_fl::wire`]);
//! * [`server`] — the threaded front end: admission-controlled bounded
//!   queues that shed load with explicit `Overloaded` responses, a single
//!   engine thread that maps batches of wire requests onto full pipeline
//!   rounds, and graceful shutdown that drains to the journal commit
//!   boundary (a round is never torn by a clean stop);
//! * [`client`] — a small blocking client, splittable for pipelined use
//!   by the open-loop load generator in `fedora-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{ClientError, ClientReceiver, ClientSender, NetClient};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
pub use proto::{scrape_chunks, Request, Response, ScrapeFormat, TailEvent, MAX_TAIL_EVENTS};
pub use server::{EngineOutcome, NetConfig, NetHandle, NetServer};
