//! Length-prefixed frame codec.
//!
//! One frame = a 4-byte little-endian payload length followed by that many
//! payload bytes (the payload is protocol JSON, see [`crate::proto`]). The
//! codec is the first thing untrusted bytes hit, so every failure mode is a
//! typed [`FrameError`]:
//!
//! * zero-length frames are a protocol violation ([`FrameError::Empty`]) —
//!   no real message encodes to zero bytes, so an empty frame is either a
//!   bug or a probe;
//! * lengths beyond the negotiated maximum are rejected **before** any
//!   allocation ([`FrameError::TooLarge`]), so a hostile 4-byte header
//!   cannot make the server reserve gigabytes;
//! * a connection that dies mid-frame yields [`FrameError::Truncated`],
//!   distinct from a clean close *between* frames (`Ok(None)`).
//!
//! Frames split across arbitrarily many reads are reassembled by
//! `read_exact`; the codec never requires a frame to arrive in one segment.

use std::io::{self, Read, Write};

/// Default ceiling on a frame's payload size (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// A frame advertised a zero-length payload.
    Empty,
    /// A frame advertised more payload than the configured maximum.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The connection closed in the middle of a frame (header or payload).
    Truncated,
    /// An underlying transport error.
    Io(io::Error),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Empty => f.write_str("zero-length frame"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the maximum {max}")
            }
            FrameError::Truncated => f.write_str("connection closed mid-frame"),
            FrameError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length header + payload) and flushes.
///
/// # Errors
///
/// [`FrameError::Empty`] / [`FrameError::TooLarge`] for payloads this
/// codec would refuse to read back; I/O failures as [`FrameError::Io`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.is_empty() {
        return Err(FrameError::Empty);
    }
    if payload.len() > max {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max,
        });
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary; any close mid-frame is [`FrameError::Truncated`].
///
/// # Errors
///
/// [`FrameError`] on any protocol or transport violation.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // A clean EOF before the first header byte is a normal close; EOF
    // anywhere later is a torn frame.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_single_and_back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", MAX_FRAME_BYTES).unwrap();
        write_frame(&mut buf, &[0xAB; 1000], MAX_FRAME_BYTES).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().unwrap(),
            vec![0xAB; 1000]
        );
        // Clean close at the boundary.
        assert!(read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn rejects_zero_length_frames_both_ways() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, b"", MAX_FRAME_BYTES),
            Err(FrameError::Empty)
        ));
        let mut cur = Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME_BYTES),
            Err(FrameError::Empty)
        ));
    }

    #[test]
    fn rejects_oversized_header_before_allocating() {
        // max-length is fine; max-length + 1 is refused from the header
        // alone — no payload bytes are even read.
        let max = 64;
        let mut ok = Vec::new();
        write_frame(&mut ok, &[7u8; 64], max).unwrap();
        assert_eq!(
            read_frame(&mut Cursor::new(ok), max).unwrap().unwrap(),
            vec![7u8; 64]
        );
        let mut hostile = (65u32).to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0u8; 65]);
        assert!(matches!(
            read_frame(&mut Cursor::new(hostile), max),
            Err(FrameError::TooLarge { len: 65, max: 64 })
        ));
        // A 4 GiB header against the default max: same refusal.
        let bomb = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(bomb), MAX_FRAME_BYTES),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(matches!(
            write_frame(&mut Vec::new(), &[0u8; 65], max),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn mid_frame_drop_is_truncated_not_clean() {
        // Header only.
        let mut partial = (10u32).to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(partial.clone()), MAX_FRAME_BYTES),
            Err(FrameError::Truncated)
        ));
        // Header + half the payload.
        partial.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert!(matches!(
            read_frame(&mut Cursor::new(partial), MAX_FRAME_BYTES),
            Err(FrameError::Truncated)
        ));
        // Half the header.
        assert!(matches!(
            read_frame(&mut Cursor::new(vec![9u8, 0]), MAX_FRAME_BYTES),
            Err(FrameError::Truncated)
        ));
    }

    /// A reader that returns its bytes in 1-byte dribbles, exercising
    /// reassembly of frames split across many reads.
    struct Dribble(Cursor<Vec<u8>>);

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let mut one = [0u8; 1];
            let n = self.0.read(&mut one)?;
            if n == 1 {
                out[0] = one[0];
            }
            Ok(n)
        }
    }

    #[test]
    fn reassembles_frames_split_across_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"split me across many reads", MAX_FRAME_BYTES).unwrap();
        let mut dribble = Dribble(Cursor::new(buf));
        assert_eq!(
            read_frame(&mut dribble, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"split me across many reads"
        );
        assert!(read_frame(&mut dribble, MAX_FRAME_BYTES).unwrap().is_none());
    }
}
