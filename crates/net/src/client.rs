//! A small blocking client for the wire protocol.
//!
//! [`NetClient::call`] is the simple synchronous path (send one request,
//! wait for its response). The open-loop load generator needs to keep
//! *sending* on schedule while responses are still in flight, so
//! [`NetClient::into_split`] splits the session into an independently
//! owned [`ClientSender`] / [`ClientReceiver`] pair over the same socket
//! — responses are matched back to requests by sequence number.
//!
//! Every `train` request leaves this client with a trace id: callers who
//! want to follow a specific request stamp their own
//! (`Request::Train { trace: Some(id), .. }`, ids from
//! [`NetClient::next_trace_id`]); requests sent without one are stamped
//! automatically so server-side phase exemplars and spans always have an
//! id to carry. [`NetClient::scrape`] and [`NetClient::tail`] wrap the
//! ops verbs, reassembling chunked scrape bodies transparently.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::frame::{self, FrameError};
use crate::proto::{self, ProtoError, Request, Response, ScrapeFormat, TailEvent};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing violation in a server reply.
    Frame(FrameError),
    /// Malformed server reply.
    Proto(ProtoError),
    /// The server closed the session.
    Closed,
    /// A synchronous call got a reply for a different sequence number.
    SeqMismatch {
        /// Sequence number we sent.
        want: u64,
        /// Sequence number the reply carried.
        got: u64,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "server frame: {e}"),
            ClientError::Proto(e) => write!(f, "server reply: {e}"),
            ClientError::Closed => f.write_str("server closed the session"),
            ClientError::SeqMismatch { want, got } => {
                write!(f, "reply for seq {got}, expected {want}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// SplitMix64 step, used to derive well-mixed trace ids from a cheap
/// per-session counter without pulling in an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeds the trace-id stream from the socket's ephemeral port plus wall
/// time, so concurrent clients on one host draw disjoint id streams.
fn trace_seed(stream: &TcpStream) -> u64 {
    let port = stream.local_addr().map_or(0, |a| u64::from(a.port()));
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos ^ (port << 48) ^ 0x7E1E_5EED_C11E_4751
}

/// Stamps a fresh trace id onto a `train` request that does not already
/// carry one, so every request is followable server-side. Non-train
/// requests and caller-stamped requests pass through borrowed.
fn stamp_trace<'a>(req: &'a Request, trace_state: &mut u64) -> std::borrow::Cow<'a, Request> {
    match req {
        Request::Train {
            client,
            entries,
            updates,
            trace: None,
        } => std::borrow::Cow::Owned(Request::Train {
            client: *client,
            entries: entries.clone(),
            updates: updates.clone(),
            trace: Some(splitmix64(trace_state).max(1)),
        }),
        _ => std::borrow::Cow::Borrowed(req),
    }
}

/// A connected protocol session.
pub struct NetClient {
    stream: TcpStream,
    max_frame: usize,
    next_seq: u64,
    trace_state: u64,
}

impl NetClient {
    /// Connects to a front end.
    ///
    /// # Errors
    ///
    /// Transport errors as [`ClientError::Io`].
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let trace_state = trace_seed(&stream);
        Ok(NetClient {
            stream,
            max_frame: frame::MAX_FRAME_BYTES,
            next_seq: 1,
            trace_state,
        })
    }

    /// Draws a fresh non-zero trace id from this session's id stream.
    /// Stamp it on a `train` request to follow that request end to end
    /// (span, phase exemplars, journal) under a caller-chosen id.
    pub fn next_trace_id(&mut self) -> u64 {
        splitmix64(&mut self.trace_state).max(1)
    }

    /// Sets a read timeout for responses (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Transport errors as [`ClientError::Io`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends `req` and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, framing, or protocol violations and
    /// on out-of-order replies (only possible if requests were also sent
    /// through a split sender on this socket).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let req = stamp_trace(req, &mut self.trace_state);
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = proto::encode_request(seq, &req);
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        let (got, resp) = self.recv()?;
        if got != seq {
            return Err(ClientError::SeqMismatch { want: seq, got });
        }
        Ok(resp)
    }

    /// Fetches the server's telemetry snapshot in `format`, transparently
    /// reassembling the chunked [`Response::ScrapeOk`] stream into one
    /// body. Audit-only series are redacted server-side.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, framing, or protocol violations, on
    /// out-of-order replies, and on any non-`scrape_ok` response.
    pub fn scrape(&mut self, format: ScrapeFormat) -> Result<String, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = proto::encode_request(seq, &Request::Scrape { format });
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        let mut out = String::new();
        loop {
            let (got, resp) = self.recv()?;
            if got != seq {
                return Err(ClientError::SeqMismatch { want: seq, got });
            }
            match resp {
                Response::ScrapeOk { body, done } => {
                    out.push_str(&body);
                    if done {
                        return Ok(out);
                    }
                }
                _ => return Err(ClientError::Proto(ProtoError::Schema("expected scrape_ok"))),
            }
        }
    }

    /// Streams journal events at and after `cursor` (at most `max`,
    /// further bounded by the server). Returns the events, the cursor to
    /// resume from, and the server's total count of events evicted from
    /// its journal ring so far (a jump in that count across polls means
    /// the tail has gaps).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, framing, or protocol violations, on
    /// out-of-order replies, and on any non-`tail_ok` response.
    pub fn tail(
        &mut self,
        cursor: u64,
        max: u64,
    ) -> Result<(Vec<TailEvent>, u64, u64), ClientError> {
        match self.call(&Request::Tail { cursor, max })? {
            Response::TailOk {
                events,
                next_cursor,
                dropped,
            } => Ok((events, next_cursor, dropped)),
            _ => Err(ClientError::Proto(ProtoError::Schema("expected tail_ok"))),
        }
    }

    /// Receives the next response frame, whatever request it answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on clean server close; transport, framing,
    /// or protocol violations otherwise.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let payload =
            frame::read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(proto::decode_response(&payload)?)
    }

    /// Splits the session into an independently owned sender/receiver
    /// pair over the same socket, for pipelined use from two threads.
    ///
    /// # Errors
    ///
    /// Transport errors from duplicating the socket handle.
    pub fn into_split(self) -> Result<(ClientSender, ClientReceiver), ClientError> {
        let write_half = self.stream.try_clone()?;
        Ok((
            ClientSender {
                stream: write_half,
                max_frame: self.max_frame,
                next_seq: self.next_seq,
                trace_state: self.trace_state,
            },
            ClientReceiver {
                stream: self.stream,
                max_frame: self.max_frame,
            },
        ))
    }
}

/// The send half of a split session.
pub struct ClientSender {
    stream: TcpStream,
    max_frame: usize,
    next_seq: u64,
    trace_state: u64,
}

impl ClientSender {
    /// The sequence number the *next* [`Self::send`] will use. Pipelined
    /// callers register their bookkeeping under this seq before sending,
    /// so a fast response can never arrive unattributable.
    pub fn peek_seq(&self) -> u64 {
        self.next_seq
    }

    /// Draws a fresh non-zero trace id from this session's id stream,
    /// for callers who want to record the id *before* sending (the
    /// open-loop load generator stamps arrivals this way so a shed or
    /// slow request is still attributable in its own logs).
    pub fn next_trace_id(&mut self) -> u64 {
        splitmix64(&mut self.trace_state).max(1)
    }

    /// Sends `req` without waiting; returns the sequence number its
    /// response will carry. `train` requests without a trace id are
    /// stamped from this session's id stream before encoding.
    ///
    /// # Errors
    ///
    /// Transport/framing errors.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        let req = stamp_trace(req, &mut self.trace_state);
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = proto::encode_request(seq, &req);
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        Ok(seq)
    }
}

/// The receive half of a split session.
pub struct ClientReceiver {
    stream: TcpStream,
    max_frame: usize,
}

impl ClientReceiver {
    /// Receives the next response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on clean server close; transport, framing,
    /// or protocol violations otherwise.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let payload =
            frame::read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(proto::decode_response(&payload)?)
    }
}
