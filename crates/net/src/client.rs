//! A small blocking client for the wire protocol.
//!
//! [`NetClient::call`] is the simple synchronous path (send one request,
//! wait for its response). The open-loop load generator needs to keep
//! *sending* on schedule while responses are still in flight, so
//! [`NetClient::into_split`] splits the session into an independently
//! owned [`ClientSender`] / [`ClientReceiver`] pair over the same socket
//! — responses are matched back to requests by sequence number.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::frame::{self, FrameError};
use crate::proto::{self, ProtoError, Request, Response};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing violation in a server reply.
    Frame(FrameError),
    /// Malformed server reply.
    Proto(ProtoError),
    /// The server closed the session.
    Closed,
    /// A synchronous call got a reply for a different sequence number.
    SeqMismatch {
        /// Sequence number we sent.
        want: u64,
        /// Sequence number the reply carried.
        got: u64,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "server frame: {e}"),
            ClientError::Proto(e) => write!(f, "server reply: {e}"),
            ClientError::Closed => f.write_str("server closed the session"),
            ClientError::SeqMismatch { want, got } => {
                write!(f, "reply for seq {got}, expected {want}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A connected protocol session.
pub struct NetClient {
    stream: TcpStream,
    max_frame: usize,
    next_seq: u64,
}

impl NetClient {
    /// Connects to a front end.
    ///
    /// # Errors
    ///
    /// Transport errors as [`ClientError::Io`].
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            max_frame: frame::MAX_FRAME_BYTES,
            next_seq: 1,
        })
    }

    /// Sets a read timeout for responses (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Transport errors as [`ClientError::Io`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends `req` and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, framing, or protocol violations and
    /// on out-of-order replies (only possible if requests were also sent
    /// through a split sender on this socket).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = proto::encode_request(seq, req);
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        let (got, resp) = self.recv()?;
        if got != seq {
            return Err(ClientError::SeqMismatch { want: seq, got });
        }
        Ok(resp)
    }

    /// Receives the next response frame, whatever request it answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on clean server close; transport, framing,
    /// or protocol violations otherwise.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let payload =
            frame::read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(proto::decode_response(&payload)?)
    }

    /// Splits the session into an independently owned sender/receiver
    /// pair over the same socket, for pipelined use from two threads.
    ///
    /// # Errors
    ///
    /// Transport errors from duplicating the socket handle.
    pub fn into_split(self) -> Result<(ClientSender, ClientReceiver), ClientError> {
        let write_half = self.stream.try_clone()?;
        Ok((
            ClientSender {
                stream: write_half,
                max_frame: self.max_frame,
                next_seq: self.next_seq,
            },
            ClientReceiver {
                stream: self.stream,
                max_frame: self.max_frame,
            },
        ))
    }
}

/// The send half of a split session.
pub struct ClientSender {
    stream: TcpStream,
    max_frame: usize,
    next_seq: u64,
}

impl ClientSender {
    /// The sequence number the *next* [`Self::send`] will use. Pipelined
    /// callers register their bookkeeping under this seq before sending,
    /// so a fast response can never arrive unattributable.
    pub fn peek_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sends `req` without waiting; returns the sequence number its
    /// response will carry.
    ///
    /// # Errors
    ///
    /// Transport/framing errors.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = proto::encode_request(seq, req);
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        Ok(seq)
    }
}

/// The receive half of a split session.
pub struct ClientReceiver {
    stream: TcpStream,
    max_frame: usize,
}

impl ClientReceiver {
    /// Receives the next response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on clean server close; transport, framing,
    /// or protocol violations otherwise.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let payload =
            frame::read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(proto::decode_response(&payload)?)
    }
}
