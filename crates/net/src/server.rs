//! The serving front end: threads, admission control, graceful drain.
//!
//! [`NetServer::spawn`] takes an owned [`FedoraServer`] and runs it behind
//! a TCP listener:
//!
//! * an **acceptor** thread admits connections up to
//!   [`NetConfig::max_connections`]; beyond that it answers one
//!   [`Response::Overloaded`] frame and closes (counted in
//!   `net.shed.connections`);
//! * a **reader** thread per connection parses frames and requests.
//!   Registration, health, and metrics are answered inline; train and
//!   checkpoint work is pushed onto a **bounded** job queue with
//!   `try_send` — a full queue yields an immediate
//!   [`Response::Overloaded`] (`net.shed.requests`), never an unbounded
//!   buffer. Malformed frames or requests get a typed error reply and the
//!   session is closed; the worker moves on, it never wedges;
//! * a single **engine** thread owns the `FedoraServer` and executes
//!   batches of train jobs as full rounds (`begin_round` → `serve` /
//!   `aggregate` per job → `end_round`). A round therefore never spans an
//!   engine iteration, which is what makes shutdown drain-safe: the stop
//!   marker is a queue entry, so every job admitted before it completes —
//!   through the durable commit inside `end_round` — and nothing after
//!   the marker starts. The journal commit boundary and the drain
//!   boundary coincide by construction.
//!
//! An armed [`fedora::CrashPoint`] fires as
//! [`FedoraError::CrashInjected`]; the engine treats it as the process
//! dying mid-round — no replies are sent for the doomed batch and
//! [`EngineOutcome::Crashed`] is returned so tests can recover from the
//! state dir and check that torn sessions were not counted as commits.

use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fedora::server::FedoraError;
use fedora::FedoraServer;
use fedora_fl::wire;
use fedora_fl::FedAvg;
use fedora_telemetry::json::{self, Json};
use fedora_telemetry::{Counter, Event, Histogram, Registry, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{self, FrameError};
use crate::proto::{self, Request, Response, ScrapeFormat, TailEvent};

/// Tuning knobs for the front end.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Most simultaneous connections before new ones are shed.
    pub max_connections: usize,
    /// Bound on the train/checkpoint job queue; a full queue sheds with
    /// [`Response::Overloaded`].
    pub queue_depth: usize,
    /// Frame payload ceiling (see [`frame::MAX_FRAME_BYTES`]).
    pub max_frame_bytes: usize,
    /// Server learning rate applied at `end_round`.
    pub server_lr: f32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            queue_depth: 128,
            max_frame_bytes: frame::MAX_FRAME_BYTES,
            server_lr: 1.0,
        }
    }
}

/// How the engine thread ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineOutcome {
    /// Graceful drain: every job admitted before the stop marker ran to
    /// its durable commit.
    Drained {
        /// Rounds durably committed over the server's lifetime.
        committed_rounds: u64,
    },
    /// An armed crash point fired (or the engine panicked); the round in
    /// flight was abandoned exactly as a process kill would.
    Crashed {
        /// The crash point (or panic) description.
        detail: String,
    },
}

/// State shared between the acceptor, readers, and engine.
struct Shared {
    shutdown: AtomicBool,
    committed: AtomicU64,
    round_active: AtomicBool,
    live_conns: AtomicUsize,
    next_client: AtomicU32,
    table_entries: u64,
    /// Cumulative ε (`f64::to_bits`), mirrored by the engine after each
    /// committed batch so `health` replies never block on the engine.
    total_epsilon: AtomicU64,
    /// Latest watch-plane report, mirrored by the engine after each
    /// committed batch (stays `None` when the watch plane is disabled).
    watch: Mutex<Option<fedora::server::WatchReport>>,
    /// splitmix64 counter for server-assigned request trace ids (bare
    /// clients that send `train` without a `trace` member still get one).
    next_trace: AtomicU64,
}

/// `splitmix64` — the same pinned generator the load generator uses, so
/// server-assigned trace ids are well mixed without an RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Front-end instruments, registered eagerly so every counter appears
/// (at zero) in any snapshot.
#[derive(Clone)]
struct NetMetrics {
    accepted: Counter,
    shed_conns: Counter,
    shed_requests: Counter,
    frame_errors: Counter,
    proto_errors: Counter,
    requests: Counter,
    rounds: Counter,
    service: Histogram,
    /// Per-request phase attribution. Each sample is recorded with the
    /// request's trace id as its bucket exemplar, so a p99 outlier in any
    /// phase can be followed back to the exact request (see the
    /// `# EXEMPLAR` lines in the Prometheus scrape and the
    /// `net.request` span in the Chrome trace export).
    phase_queue: Histogram,
    phase_assemble: Histogram,
    phase_fetch: Histogram,
    phase_serve: Histogram,
    phase_reply: Histogram,
}

impl NetMetrics {
    fn attach(registry: &Registry) -> Self {
        NetMetrics {
            accepted: registry.counter("net.accepted"),
            shed_conns: registry.counter("net.shed.connections"),
            shed_requests: registry.counter("net.shed.requests"),
            frame_errors: registry.counter("net.errors.frame"),
            proto_errors: registry.counter("net.errors.proto"),
            requests: registry.counter("net.requests"),
            rounds: registry.counter("net.rounds"),
            service: registry.histogram("net.request.service_ns"),
            phase_queue: registry.histogram("net.request.phase.queue_ns"),
            phase_assemble: registry.histogram("net.request.phase.assemble_ns"),
            phase_fetch: registry.histogram("net.request.phase.fetch_ns"),
            phase_serve: registry.histogram("net.request.phase.serve_ns"),
            phase_reply: registry.histogram("net.request.phase.reply_ns"),
        }
    }
}

/// The write half of a connection. Readers and the engine both reply
/// through this; the mutex keeps concurrently produced frames from
/// interleaving on the socket.
#[derive(Clone)]
struct ConnWriter {
    stream: Arc<Mutex<TcpStream>>,
    max_frame: usize,
}

impl ConnWriter {
    /// Best-effort reply: a peer that already hung up is not an error
    /// worth acting on.
    fn send(&self, seq: u64, resp: &Response) {
        let payload = proto::encode_response(seq, resp);
        let mut guard = match self.stream.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = frame::write_frame(&mut *guard, &payload, self.max_frame);
    }
}

struct TrainJob {
    seq: u64,
    client: u32,
    entries: Vec<u64>,
    updates: Vec<Vec<u64>>,
    /// Request trace id: caller-supplied, or server-assigned for bare
    /// clients. Never 0 (0 means "no exemplar" in the histograms).
    trace: u64,
    conn: ConnWriter,
    enqueued: Instant,
}

enum Job {
    Train(TrainJob),
    Checkpoint { seq: u64, conn: ConnWriter },
    Shutdown,
}

/// A running front end. Dropping the handle without calling
/// [`NetHandle::join`] leaves the threads running until process exit;
/// call [`NetHandle::shutdown_and_join`] for an orderly stop.
pub struct NetServer;

/// Join handle for a spawned [`NetServer`].
pub struct NetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    tx: SyncSender<Job>,
    engine: Option<JoinHandle<EngineOutcome>>,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    registry: Registry,
}

impl NetServer {
    /// Binds `listen` and spawns the acceptor + engine threads around an
    /// owned, fully configured [`FedoraServer`] (arm crash points or
    /// enable durability *before* spawning). `seed` drives the engine's
    /// round randomness deterministically.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn spawn(
        server: FedoraServer,
        seed: u64,
        listen: &str,
        config: NetConfig,
    ) -> std::io::Result<NetHandle> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = server.registry().clone();
        let metrics = NetMetrics::attach(&registry);
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            committed: AtomicU64::new(server.committed_rounds()),
            round_active: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            next_client: AtomicU32::new(1),
            table_entries: server.config().table.num_entries,
            total_epsilon: AtomicU64::new(server.accountant().total_epsilon().to_bits()),
            watch: Mutex::new(server.watch_report().cloned()),
            next_trace: AtomicU64::new(seed ^ 0xC0DE_F00D_5EED_0001),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let engine = {
            let shared = Arc::clone(&shared);
            let metrics = metrics.clone();
            let rng = StdRng::seed_from_u64(seed);
            let lr = config.server_lr;
            std::thread::Builder::new()
                .name("fedora-net-engine".into())
                .spawn(move || run_engine(server, rng, rx, shared, metrics, lr))?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let metrics = metrics.clone();
            let registry = registry.clone();
            let tx = tx.clone();
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fedora-net-accept".into())
                .spawn(move || {
                    run_acceptor(
                        listener, shared, metrics, registry, tx, conns, readers, config,
                    )
                })?
        };

        Ok(NetHandle {
            addr,
            shared,
            tx,
            engine: Some(engine),
            acceptor: Some(acceptor),
            readers,
            conns,
            registry,
        })
    }
}

impl NetHandle {
    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The telemetry registry the pipeline and front end report into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Requests a graceful drain without waiting: the acceptor stops, new
    /// work is answered with [`Response::ShuttingDown`], and a stop
    /// marker is queued *behind* all admitted jobs.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Blocking send keeps drain semantics even when the queue is
        // full; a dead engine (crash) surfaces as a send error we ignore.
        let _ = self.tx.send(Job::Shutdown);
    }

    /// Waits for the engine to finish (drain or crash), then tears down
    /// the listener and sessions. Returns how the engine ended.
    pub fn join(mut self) -> EngineOutcome {
        let outcome = match self.engine.take() {
            Some(handle) => handle.join().unwrap_or(EngineOutcome::Crashed {
                detail: "engine thread panicked".to_owned(),
            }),
            None => EngineOutcome::Crashed {
                detail: "engine already joined".to_owned(),
            },
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Force-close sessions so blocked readers unblock and exit.
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.iter() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = match self.readers.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for handle in handles {
            let _ = handle.join();
        }
        outcome
    }

    /// [`Self::shutdown`] followed by [`Self::join`].
    pub fn shutdown_and_join(self) -> EngineOutcome {
        self.shutdown();
        self.join()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_acceptor(
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics: NetMetrics,
    registry: Registry,
    tx: SyncSender<Job>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: NetConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let writer = match stream.try_clone() {
                    Ok(clone) => ConnWriter {
                        stream: Arc::new(Mutex::new(clone)),
                        max_frame: config.max_frame_bytes,
                    },
                    Err(_) => continue,
                };
                if shared.live_conns.load(Ordering::SeqCst) >= config.max_connections {
                    metrics.shed_conns.incr();
                    writer.send(0, &Response::Overloaded);
                    continue;
                }
                metrics.accepted.incr();
                shared.live_conns.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    if let Ok(mut guard) = conns.lock() {
                        guard.push(clone);
                    }
                }
                let shared = Arc::clone(&shared);
                let metrics = metrics.clone();
                let registry = registry.clone();
                let tx = tx.clone();
                let spawned = std::thread::Builder::new()
                    .name("fedora-net-conn".into())
                    .spawn(move || run_reader(stream, writer, shared, metrics, registry, tx));
                if let Ok(handle) = spawned {
                    if let Ok(mut guard) = readers.lock() {
                        guard.push(handle);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn run_reader(
    mut stream: TcpStream,
    writer: ConnWriter,
    shared: Arc<Shared>,
    metrics: NetMetrics,
    registry: Registry,
    tx: SyncSender<Job>,
) {
    loop {
        let payload = match frame::read_frame(&mut stream, writer.max_frame) {
            Ok(Some(payload)) => payload,
            // Clean close at a frame boundary.
            Ok(None) => break,
            Err(FrameError::Io(_)) => break,
            Err(e) => {
                // Protocol-level framing violation: typed reply, then the
                // session is over — a peer that cannot frame cannot be
                // trusted to resynchronize.
                metrics.frame_errors.incr();
                writer.send(
                    0,
                    &Response::Error {
                        kind: "frame".to_owned(),
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        let (seq, request) = match proto::decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                metrics.proto_errors.incr();
                writer.send(
                    0,
                    &Response::Error {
                        kind: "proto".to_owned(),
                        message: e.to_string(),
                    },
                );
                break;
            }
        };
        metrics.requests.incr();
        match request {
            Request::Hello => {
                let client = shared.next_client.fetch_add(1, Ordering::SeqCst);
                writer.send(seq, &Response::Welcome { client });
            }
            Request::Health => {
                writer.send(
                    seq,
                    &Response::HealthOk {
                        committed_rounds: shared.committed.load(Ordering::SeqCst),
                        round_active: shared.round_active.load(Ordering::SeqCst),
                        total_epsilon: f64::from_bits(shared.total_epsilon.load(Ordering::SeqCst)),
                        shed_requests: metrics.shed_requests.get(),
                        shed_connections: metrics.shed_conns.get(),
                    },
                );
            }
            Request::Watch => {
                let report = match shared.watch.lock() {
                    Ok(guard) => guard.clone(),
                    Err(poisoned) => poisoned.into_inner().clone(),
                };
                writer.send(seq, &Response::WatchOk { report });
            }
            Request::Metrics => {
                let text = registry.snapshot().to_json();
                let metrics_doc = json::parse(&text).unwrap_or(Json::Null);
                writer.send(
                    seq,
                    &Response::MetricsOk {
                        metrics: metrics_doc,
                    },
                );
            }
            Request::Scrape { format } => {
                // Served on the reader thread: a snapshot is read-only
                // against the registry, so scrapes never queue behind (or
                // stall) the engine. Both serializations redact
                // audit-only series.
                let snapshot = registry.snapshot();
                let body = match format {
                    ScrapeFormat::Prom => snapshot.to_prometheus_text(),
                    ScrapeFormat::Json => snapshot.to_json(),
                };
                for chunk in proto::scrape_chunks(&body, writer.max_frame) {
                    writer.send(seq, &chunk);
                }
            }
            Request::Tail { cursor, max } => {
                let take = usize::try_from(max)
                    .unwrap_or(usize::MAX)
                    .min(proto::MAX_TAIL_EVENTS);
                let (events, next_cursor) = registry.events_since(cursor, take);
                writer.send(
                    seq,
                    &Response::TailOk {
                        events: events.iter().map(tail_event).collect(),
                        next_cursor,
                        dropped: registry.events_dropped(),
                    },
                );
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = tx.send(Job::Shutdown);
                writer.send(seq, &Response::ShuttingDown);
            }
            Request::Checkpoint => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    writer.send(seq, &Response::ShuttingDown);
                    continue;
                }
                enqueue(
                    &tx,
                    Job::Checkpoint {
                        seq,
                        conn: writer.clone(),
                    },
                    seq,
                    &writer,
                    &metrics,
                );
            }
            Request::Train {
                client,
                entries,
                updates,
                trace,
            } => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    writer.send(seq, &Response::ShuttingDown);
                    continue;
                }
                if let Some(&bad) = entries.iter().find(|&&id| id >= shared.table_entries) {
                    writer.send(
                        seq,
                        &Response::Error {
                            kind: "proto".to_owned(),
                            message: format!(
                                "entry {bad} outside table of {}",
                                shared.table_entries
                            ),
                        },
                    );
                    continue;
                }
                // Bare clients (no trace member, or the 0 sentinel) get a
                // server-assigned id so every request is followable.
                let trace = match trace.filter(|&t| t != 0) {
                    Some(t) => t,
                    None => {
                        let n = shared.next_trace.fetch_add(1, Ordering::Relaxed);
                        splitmix64(n).max(1)
                    }
                };
                enqueue(
                    &tx,
                    Job::Train(TrainJob {
                        seq,
                        client,
                        entries,
                        updates,
                        trace,
                        conn: writer.clone(),
                        enqueued: Instant::now(),
                    }),
                    seq,
                    &writer,
                    &metrics,
                );
            }
        }
    }
    // The reader is the session's lifetime: once it exits (clean close,
    // I/O error, or protocol violation) the socket must actually close
    // from the peer's point of view. Clones of the stream live on in the
    // writer and the teardown registry, so dropping `stream` alone would
    // leave the connection half-open until server shutdown.
    let _ = stream.shutdown(Shutdown::Both);
    shared.live_conns.fetch_sub(1, Ordering::SeqCst);
}

/// Renders one journal event for the wire: `u64`/`i64` values keep full
/// precision as decimal text, floats use their shortest display form,
/// strings pass through verbatim (trace ids are already `0x…` strings).
fn tail_event(e: &Event) -> TailEvent {
    TailEvent {
        seq: e.seq,
        name: e.name.clone(),
        fields: e
            .fields
            .iter()
            .map(|(k, v)| {
                let rendered = match v {
                    Value::U64(v) => v.to_string(),
                    Value::I64(v) => v.to_string(),
                    Value::F64(v) => format!("{v}"),
                    Value::Str(s) => s.clone(),
                };
                (k.clone(), rendered)
            })
            .collect(),
    }
}

/// Admission control: bounded queue, explicit shed on overflow.
fn enqueue(tx: &SyncSender<Job>, job: Job, seq: u64, writer: &ConnWriter, metrics: &NetMetrics) {
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            metrics.shed_requests.incr();
            writer.send(seq, &Response::Overloaded);
        }
        Err(TrySendError::Disconnected(_)) => {
            writer.send(seq, &Response::ShuttingDown);
        }
    }
}

fn run_engine(
    mut server: FedoraServer,
    mut rng: StdRng,
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    metrics: NetMetrics,
    server_lr: f32,
) -> EngineOutcome {
    let mut mode = FedAvg;
    let dim = server.config().table.entry_bytes / 4;
    let max_k = server.config().max_requests_per_round;
    // Jobs pulled off the queue but not yet executed: a non-train job
    // acting as a batch barrier, plus — in pipelined mode — whatever was
    // drained early so the next round's client set could be handed to
    // the look-ahead scheduler. Queue order is preserved throughout.
    let mut pending: VecDeque<Job> = VecDeque::new();
    loop {
        let first = match pending.pop_front() {
            Some(job) => job,
            None => match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return EngineOutcome::Drained {
                        committed_rounds: server.committed_rounds(),
                    }
                }
            },
        };
        let first = match first {
            Job::Shutdown => {
                return EngineOutcome::Drained {
                    committed_rounds: server.committed_rounds(),
                }
            }
            Job::Checkpoint { seq, conn } => {
                match server.checkpoint() {
                    Ok(stats) => conn.send(
                        seq,
                        &Response::CheckpointOk {
                            generation: stats.generation,
                            bytes: stats.bytes,
                        },
                    ),
                    Err(e) => conn.send(
                        seq,
                        &Response::Error {
                            kind: "server".to_owned(),
                            message: e.to_string(),
                        },
                    ),
                }
                continue;
            }
            Job::Train(job) => job,
        };
        // Batch further queued train jobs into this round, up to the
        // pipeline's K. Non-train jobs act as batch barriers so queue
        // order is preserved.
        let batch_start = Instant::now();
        let mut batch = vec![first];
        let mut total: usize = batch[0].entries.len();
        loop {
            let job = match pending.pop_front() {
                Some(job) => job,
                None => match rx.try_recv() {
                    Ok(job) => job,
                    Err(_) => break,
                },
            };
            match job {
                Job::Train(train) if total + train.entries.len() <= max_k => {
                    total += train.entries.len();
                    batch.push(train);
                }
                other => {
                    pending.push_front(other);
                    break;
                }
            }
        }
        // Look-ahead: with pipelining on, drain whatever is queued right
        // now and hand the next round's leading train-run to the
        // prefetch scheduler, so its oblivious unions compute while this
        // batch's round runs. Purely advisory — if the next batch turns
        // out different (late arrivals, barriers), the speculation is
        // discarded and the round proceeds exactly as in serial mode.
        if server.pipeline_enabled() {
            while let Ok(job) = rx.try_recv() {
                pending.push_back(job);
            }
            let mut next: Vec<u64> = Vec::new();
            let mut next_total: usize = 0;
            for job in &pending {
                match job {
                    Job::Train(train) if next_total + train.entries.len() <= max_k => {
                        next_total += train.entries.len();
                        next.extend(train.entries.iter().copied());
                    }
                    _ => break,
                }
            }
            if !next.is_empty() {
                server.schedule_next_round(&next);
            }
        }
        match run_batch(
            &mut server,
            &mut mode,
            &mut rng,
            batch,
            batch_start,
            dim,
            server_lr,
            &shared,
            &metrics,
        ) {
            Ok(()) => {
                shared
                    .committed
                    .store(server.committed_rounds(), Ordering::SeqCst);
                shared.total_epsilon.store(
                    server.accountant().total_epsilon().to_bits(),
                    Ordering::SeqCst,
                );
                if let Some(report) = server.watch_report() {
                    let mut guard = match shared.watch.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    *guard = Some(report.clone());
                }
            }
            Err(detail) => {
                // A crash point fired: behave like the process died —
                // abandon the batch (no replies) and stop serving.
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.round_active.store(false, Ordering::SeqCst);
                return EngineOutcome::Crashed { detail };
            }
        }
    }
}

/// Runs one batch as one full round. `Err` only for injected crashes —
/// every other failure is reported to the affected clients and absorbed.
///
/// Request-scoped observability happens here: each job gets a
/// `net.request` span opened as a child of the committing round's span
/// (visible in the Chrome trace export when tracing is on), its wall time
/// is attributed across the `net.request.phase.*` histograms with the
/// request's trace id as bucket exemplar, and a `net.request.done`
/// journal event ties trace id → round → phase timings for the `tail`
/// verb.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    server: &mut FedoraServer,
    mode: &mut FedAvg,
    rng: &mut StdRng,
    batch: Vec<TrainJob>,
    batch_start: Instant,
    dim: usize,
    server_lr: f32,
    shared: &Shared,
    metrics: &NetMetrics,
) -> Result<(), String> {
    // Reject shape-invalid jobs before the round starts so they cannot
    // poison the batch.
    let mut jobs = Vec::with_capacity(batch.len());
    for job in batch {
        if job.updates.iter().any(|words| words.len() != dim) {
            job.conn.send(
                job.seq,
                &Response::Error {
                    kind: "proto".to_owned(),
                    message: format!("update words must have dimension {dim}"),
                },
            );
        } else {
            jobs.push(job);
        }
    }
    if jobs.is_empty() {
        return Ok(());
    }
    let registry = server.registry().clone();
    let requests: Vec<u64> = jobs
        .iter()
        .flat_map(|job| job.entries.iter().copied())
        .collect();
    let fail_all = |jobs: &[TrainJob], e: &FedoraError| {
        for job in jobs {
            job.conn.send(
                job.seq,
                &Response::Error {
                    kind: "server".to_owned(),
                    message: e.to_string(),
                },
            );
        }
    };
    // Served rows, outer-indexed by job, inner by that job's entries;
    // per-job serve-phase nanoseconds alongside.
    type BatchRows = Vec<Vec<Option<Vec<u8>>>>;
    shared.round_active.store(true, Ordering::SeqCst);
    let fetch_start = Instant::now();
    let mut serve_ns_per_job = vec![0u64; jobs.len()];
    let mut fetch_share_ns = 0u64;
    let result = (|| -> Result<Option<BatchRows>, FedoraError> {
        server.begin_round(&requests, rng)?;
        // The round's ORAM fetch happens inside begin_round; each request
        // in the batch is charged an equal share of it.
        fetch_share_ns = (fetch_start.elapsed().as_nanos() as u64) / jobs.len() as u64;
        let round_span = server.round_span_id().unwrap_or(0);
        let mut rows_per_job = Vec::with_capacity(jobs.len());
        for (idx, job) in jobs.iter().enumerate() {
            // Child-of-round span covering this request's serve work:
            // ORAM accesses performed inside `serve` nest under it, so a
            // phase-histogram exemplar resolves to the exact socket-to-
            // bucket path in the trace export.
            let mut span = registry.trace_span_under_with(
                round_span,
                "net.request",
                &[
                    ("trace", Value::Str(format!("{:#x}", job.trace))),
                    ("client", Value::U64(u64::from(job.client))),
                    ("entries", Value::U64(job.entries.len() as u64)),
                ],
            );
            let serve_start = Instant::now();
            let mut rows = Vec::with_capacity(job.entries.len());
            for &id in &job.entries {
                rows.push(server.serve(id, rng)?);
            }
            serve_ns_per_job[idx] = serve_start.elapsed().as_nanos() as u64;
            span.attr("serve_ns", serve_ns_per_job[idx]);
            rows_per_job.push(rows);
        }
        for job in &jobs {
            for (&id, words) in job.entries.iter().zip(&job.updates) {
                let gradient = wire::dequantize(words);
                server.aggregate(&*mode, id, &gradient, 1, rng)?;
            }
        }
        server.end_round(mode, server_lr, rng)?;
        Ok(Some(rows_per_job))
    })();
    shared.round_active.store(false, Ordering::SeqCst);
    match result {
        Ok(Some(rows_per_job)) => {
            let round = server.committed_rounds();
            // Publish the new commit count and spent ε before any reply
            // leaves: a client that saw its TrainOk must never read a
            // stale (lower) value from a subsequent Health probe.
            shared.committed.store(round, Ordering::SeqCst);
            shared.total_epsilon.store(
                server.accountant().total_epsilon().to_bits(),
                Ordering::SeqCst,
            );
            metrics.rounds.incr();
            let assemble_ns = fetch_start.saturating_duration_since(batch_start);
            for (idx, (job, rows)) in jobs.iter().zip(rows_per_job).enumerate() {
                let queue_ns = batch_start
                    .saturating_duration_since(job.enqueued)
                    .as_nanos() as u64;
                let reply_start = Instant::now();
                job.conn.send(job.seq, &Response::TrainOk { round, rows });
                let reply_ns = reply_start.elapsed().as_nanos() as u64;
                let serve_ns = serve_ns_per_job[idx];
                metrics
                    .phase_queue
                    .record_with_exemplar(queue_ns, job.trace);
                metrics
                    .phase_assemble
                    .record_with_exemplar(assemble_ns.as_nanos() as u64, job.trace);
                metrics
                    .phase_fetch
                    .record_with_exemplar(fetch_share_ns, job.trace);
                metrics
                    .phase_serve
                    .record_with_exemplar(serve_ns, job.trace);
                metrics
                    .phase_reply
                    .record_with_exemplar(reply_ns, job.trace);
                metrics
                    .service
                    .record_with_exemplar(job.enqueued.elapsed().as_nanos() as u64, job.trace);
                registry.event(
                    "net.request.done",
                    &[
                        ("trace", Value::Str(format!("{:#x}", job.trace))),
                        ("client", Value::U64(u64::from(job.client))),
                        ("round", Value::U64(round)),
                        ("entries", Value::U64(job.entries.len() as u64)),
                        ("queue_ns", Value::U64(queue_ns)),
                        ("fetch_ns", Value::U64(fetch_share_ns)),
                        ("serve_ns", Value::U64(serve_ns)),
                        ("reply_ns", Value::U64(reply_ns)),
                    ],
                );
            }
            Ok(())
        }
        Ok(None) => Ok(()),
        Err(FedoraError::CrashInjected { point }) => Err(format!("{point:?}")),
        Err(e) => {
            fail_all(&jobs, &e);
            // Close a round left open by a mid-round failure so the next
            // batch starts clean; a crash point firing during this
            // best-effort close still ends the engine.
            if server.round_active() {
                if let Err(FedoraError::CrashInjected { point }) =
                    server.end_round(mode, server_lr, rng)
                {
                    return Err(format!("{point:?}"));
                }
            }
            Ok(())
        }
    }
}
