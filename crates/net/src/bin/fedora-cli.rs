//! `fedora-cli` — command-line front end for the FEDORA models and the
//! live simulated pipeline.
//!
//! ```text
//! fedora-cli lifetime --table small --updates 100000 --epsilon 1.0
//! fedora-cli latency  --table medium --updates 100000 --epsilon 1.0
//! fedora-cli round    --entries 4096 --requests 7,19,7,42 --epsilon 1.0
//! fedora-cli attack   --epsilon 1.0 --trials 20000
//! fedora-cli serve    --listen 127.0.0.1:7878 --entries 1024 --state-dir state
//! ```
//!
//! The binary lives in `fedora-net` (not the core crate) so `serve` can
//! front the TCP serving stack without a dependency cycle.

use std::collections::HashMap;

use fedora::adversary::{count_attack, dp_success_bound};
use fedora::analytic::{fedora_round, lifetime_months, path_oram_plus_round};
use fedora::config::WatchConfig;
use fedora::config::{FedoraConfig, ParallelismConfig, PrivacyConfig, TableSpec};
use fedora::latency::LatencyModel;
use fedora::server::FedoraServer;
use fedora_fdp::{FdpMechanism, YShape};
use fedora_fl::modes::FedAvg;
use fedora_net::{NetClient, NetConfig, NetServer, Request, Response, ScrapeFormat};
use fedora_telemetry::{Registry, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "\
fedora-cli — FEDORA system models and live pipeline

USAGE:
    fedora-cli <command> [--key value]...

COMMANDS:
    lifetime   SSD lifetime of FEDORA vs Path ORAM+ (analytic)
               --table small|medium|large  --updates N  --epsilon E
    latency    per-round latency overhead (analytic)
               --table small|medium|large  --updates N  --epsilon E
    round      run one live round on the simulated pipeline
               --entries N  --requests a,b,c,...  --epsilon E
               --threads N (worker threads for bulk path crypto;
               default 1 — thread count never changes results)
               --pipeline 0|1 (look-ahead round pipelining: prefetch
               the next round's oblivious unions, batch eviction
               writes; results and access trace stay identical,
               only wall-clock time changes)
               --state-dir DIR (durable mode: restore any prior
               checkpointed state, journal + checkpoint the round)
    checkpoint write a fresh full-state checkpoint
               --state-dir DIR  --entries N  --epsilon E
    restore    recover from a state dir and report what was restored
               --state-dir DIR  --entries N  --epsilon E
    attack     optimal access-count distinguisher vs the DP bound
               --epsilon E  --trials N
    serve      run the TCP serving front end until a protocol Shutdown
               --listen HOST:PORT (default 127.0.0.1:0; prints the
               bound address as 'listening on ADDR' before serving)
               --entries N  --epsilon E  --seed N  --threads N
               --pipeline 0|1 (overlap the next batch's union prefetch
               with the running round; identical results)
               --state-dir DIR (durable: restore prior state, journal
               + checkpoint every committed round)
               --queue-depth N  --max-connections N (admission control:
               excess load is shed with explicit Overloaded replies)
               --watch-every N (sample the privacy/SLO watch plane every
               N committed rounds; 0 = off)  --watch-max-p99-ms MS
               --watch-max-shed-ppm PPM (SLO alarm thresholds)
               --watch-empirical-every N (refresh the live empirical-eps
               estimate every N committed rounds; 0 = off)
               --journal-capacity N (telemetry event-journal ring size;
               scrape 'telemetry.journal.dropped' to size it)
    watch      poll a live server's watch-plane report
               --addr HOST:PORT (as printed by serve)
    scrape     fetch a live server's telemetry snapshot over the wire
               --addr HOST:PORT  --format prom|json (default prom;
               audit-only series are redacted server-side; oversized
               bodies arrive chunked and are reassembled here)
    tail       stream a live server's journal events from a cursor
               --addr HOST:PORT  --cursor N (default 0; pass the
               printed next cursor to resume)  --max N (default 100)
    help       print this message

Every command also accepts --metrics-out PATH to write a telemetry
snapshot (counters, gauges, histogram percentiles, event journal),
--metrics-format json|csv|prom to pick its serialization (single-line
JSON by default; audit-only series are redacted in every format), and
--trace-out PATH to capture causal spans as Chrome trace-event JSON
(open in https://ui.perfetto.dev). For `round` these reflect the live
pipeline's full registry; the analytic commands export their computed
figures as gauges.
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(flags)
}

/// Builds the registry a command reports into, with causal tracing
/// pre-enabled when `--trace-out` asks for a trace.
fn registry_for(flags: &HashMap<String, String>) -> Registry {
    let registry = Registry::new();
    if flags.contains_key("trace-out") {
        registry.set_tracing(true);
    }
    registry
}

/// Writes `snapshot` when `--metrics-out PATH` was given (in the
/// `--metrics-format` serialization, JSON by default), and as Chrome
/// trace-event JSON when `--trace-out PATH` was given.
fn write_metrics(flags: &HashMap<String, String>, snapshot: &Snapshot) -> Result<(), String> {
    if let Some(path) = flags.get("metrics-out") {
        let format = flags
            .get("metrics-format")
            .map(String::as_str)
            .unwrap_or("json");
        let target = std::path::Path::new(path);
        match format {
            "json" => snapshot.write_json(target),
            "csv" => snapshot.write_csv(target),
            "prom" | "prometheus" => snapshot.write_prometheus(target),
            other => {
                return Err(format!(
                    "--metrics-format: unknown format '{other}' (json|csv|prom)"
                ))
            }
        }
        .map_err(|e| format!("--metrics-out {path}: {e}"))?;
        println!("  metrics written to {path} ({format})");
    }
    if let Some(path) = flags.get("trace-out") {
        snapshot
            .write_chrome_trace(std::path::Path::new(path))
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
        println!("  trace written to {path} (load in https://ui.perfetto.dev)");
    }
    Ok(())
}

fn table_spec(flags: &HashMap<String, String>) -> Result<TableSpec, String> {
    match flags.get("table").map(String::as_str).unwrap_or("small") {
        "small" => Ok(TableSpec::small()),
        "medium" => Ok(TableSpec::medium()),
        "large" => Ok(TableSpec::large()),
        other => Err(format!("unknown table '{other}' (small|medium|large)")),
    }
}

fn f64_flag(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) if v == "inf" => Ok(f64::INFINITY),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
    }
}

fn u64_flag(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
    }
}

/// Attaches `server` to `--state-dir`: recovers when checkpointed state
/// already exists there, otherwise initialises a fresh durable store
/// (baseline checkpoint + empty journal). Returns the restored committed
/// round count (0 when starting fresh).
fn attach_state_dir(server: &mut FedoraServer, dir: &str) -> Result<u64, String> {
    let path = std::path::Path::new(dir);
    let existing = fedora::durable::list_checkpoints(path).map_err(|e| e.to_string())?;
    if existing.is_empty() {
        server.enable_durability(path).map_err(|e| e.to_string())?;
        println!("  state dir {dir}: initialised (no prior checkpoint)");
        Ok(0)
    } else {
        let rounds = server.recover(path).map_err(|e| e.to_string())?;
        println!(
            "  state dir {dir}: restored to committed round {rounds} \
             (eps spent = {:.3})",
            server.accountant().total_epsilon()
        );
        Ok(rounds)
    }
}

/// Builds the live pipeline server the durable subcommands operate on.
/// Geometry and privacy must match the run that wrote the checkpoint.
fn live_server(
    flags: &HashMap<String, String>,
    k_hint: usize,
) -> Result<(FedoraServer, StdRng), String> {
    let entries = u64_flag(flags, "entries", 4096)?;
    let epsilon = f64_flag(flags, "epsilon", 1.0)?;
    let threads = u64_flag(flags, "threads", 1)?.max(1) as usize;
    let mut rng = StdRng::seed_from_u64(u64_flag(flags, "seed", 42)?);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(entries), k_hint.max(16));
    config.parallelism = ParallelismConfig::with_threads(threads);
    if u64_flag(flags, "pipeline", 0)? > 0 {
        config.pipeline = fedora::config::PipelineConfig::lookahead_one();
    }
    config.privacy = if epsilon == 0.0 {
        PrivacyConfig::perfect()
    } else if epsilon.is_infinite() {
        PrivacyConfig::none()
    } else {
        PrivacyConfig::with_epsilon(epsilon)
    };
    let watch_every = u64_flag(flags, "watch-every", 0)?;
    if watch_every > 0 {
        let mut watch = WatchConfig::every(watch_every);
        if let Some(ms) = flags.get("watch-max-p99-ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--watch-max-p99-ms: bad integer '{ms}'"))?;
            watch.max_round_p99_ns = Some(ms.saturating_mul(1_000_000));
        }
        if flags.contains_key("watch-max-shed-ppm") {
            watch.max_shed_ppm = Some(u64_flag(flags, "watch-max-shed-ppm", 0)?);
        }
        config.watch = watch;
    }
    // Independent of the alarm sampler: the refresher only needs the
    // field, so `--watch-empirical-every` works with `--watch-every 0`.
    config.watch.empirical_every_rounds = u64_flag(
        flags,
        "watch-empirical-every",
        config.watch.empirical_every_rounds,
    )?;
    if flags.contains_key("journal-capacity") {
        config.journal_capacity = u64_flag(flags, "journal-capacity", 0)?.max(1) as usize;
    }
    let server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], registry_for(flags), &mut rng);
    Ok((server, rng))
}

/// Polls a live server's watch verb and pretty-prints the report. Scripts
/// grep the `alarms:` line, so its shape (`alarms: none` or a
/// comma-joined list) is load-bearing.
fn cmd_watch(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").ok_or("watch needs --addr HOST:PORT")?;
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match client
        .call(&Request::Watch)
        .map_err(|e| format!("watch {addr}: {e}"))?
    {
        Response::WatchOk { report: Some(r) } => {
            println!("Watch report at round {}:", r.round);
            println!(
                "  window: {} rounds, p99 {:.3} ms, {} requests, shed {} ppm",
                r.window_rounds,
                r.round_p99_ns as f64 / 1e6,
                r.requests,
                r.shed_ppm
            );
            println!(
                "  privacy: eps total {:.3}, empirical eps_hat {:.4} \
                 over {} pairs (budget {:.4})",
                r.total_epsilon, r.eps_hat, r.eps_samples, r.eps_budget
            );
            if r.alarms.is_empty() {
                println!("  alarms: none");
            } else {
                println!("  alarms: {}", r.alarms.join(", "));
            }
            println!("  sampler overhead: {:.3} ms", r.overhead_ns as f64 / 1e6);
            Ok(())
        }
        Response::WatchOk { report: None } => {
            println!("watch plane has not sampled yet (enable with serve --watch-every N)");
            Ok(())
        }
        other => Err(format!("unexpected reply: {other:?}")),
    }
}

/// Fetches a live server's telemetry snapshot over the `scrape` verb and
/// prints it verbatim (Prometheus text by default). Chunked bodies are
/// reassembled inside [`NetClient::scrape`], so piping the output to a
/// file always yields one complete document.
fn cmd_scrape(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").ok_or("scrape needs --addr HOST:PORT")?;
    let format = match flags.get("format").map(String::as_str).unwrap_or("prom") {
        "prom" | "prometheus" => ScrapeFormat::Prom,
        "json" => ScrapeFormat::Json,
        other => return Err(format!("--format: unknown format '{other}' (prom|json)")),
    };
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = client
        .scrape(format)
        .map_err(|e| format!("scrape {addr}: {e}"))?;
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    Ok(())
}

/// Streams a live server's journal events from `--cursor` and prints one
/// line per event plus a trailing `next cursor:` line scripts resume
/// from. A non-zero dropped delta between polls means the server's ring
/// evicted events this tail never saw (raise serve --journal-capacity).
fn cmd_tail(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").ok_or("tail needs --addr HOST:PORT")?;
    let cursor = u64_flag(flags, "cursor", 0)?;
    let max = u64_flag(flags, "max", 100)?;
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (events, next_cursor, dropped) = client
        .tail(cursor, max)
        .map_err(|e| format!("tail {addr}: {e}"))?;
    for event in &events {
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("{:>8}  {}  {}", event.seq, event.name, fields.join(" "));
    }
    println!(
        "next cursor: {next_cursor} ({} events, {dropped} dropped)",
        events.len()
    );
    Ok(())
}

fn cmd_checkpoint(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags
        .get("state-dir")
        .ok_or("checkpoint needs --state-dir DIR")?;
    let (mut server, _rng) = live_server(flags, 16)?;
    let rounds = attach_state_dir(&mut server, dir)?;
    let stats = server.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "  checkpoint generation {} written: {} bytes in {:.3} ms \
         (committed rounds = {rounds})",
        stats.generation,
        stats.bytes,
        stats.ns as f64 / 1e6
    );
    write_metrics(flags, &server.metrics_snapshot())
}

fn cmd_restore(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags
        .get("state-dir")
        .ok_or("restore needs --state-dir DIR")?;
    let (mut server, _rng) = live_server(flags, 16)?;
    let path = std::path::Path::new(dir.as_str());
    let rounds = server.recover(path).map_err(|e| e.to_string())?;
    let generations = fedora::durable::list_checkpoints(path).map_err(|e| e.to_string())?;
    println!("Restored from {dir}:");
    println!("  committed rounds: {rounds}");
    println!(
        "  eps spent: {:.3} over {} accounted rounds",
        server.accountant().total_epsilon(),
        server.accountant().rounds()
    );
    println!("  checkpoint generations on disk: {generations:?}");
    if let Some(report) = server.last_committed_report() {
        println!(
            "  last committed round: K = {}, k_union = {}, k = {}, dummies = {}",
            report.k_requests, report.k_union, report.k_accesses, report.dummies
        );
    }
    write_metrics(flags, &server.metrics_snapshot())
}

fn effective_k(k_requests: u64, epsilon: f64) -> u64 {
    // A quick workload-free estimate: a typical hide-val duplicate rate of
    // ~50% unique; ε only perturbs around it.
    if epsilon == 0.0 {
        k_requests
    } else {
        k_requests / 2
    }
}

fn cmd_lifetime(flags: &HashMap<String, String>) -> Result<(), String> {
    let table = table_spec(flags)?;
    let updates = u64_flag(flags, "updates", 100_000)?;
    let epsilon = f64_flag(flags, "epsilon", 1.0)?;
    let geo = table.geometry();
    let a = FedoraConfig::tuned_eviction_period(&geo);
    let profile = fedora_storage::SsdProfile::pm9a1_like();

    let base = path_oram_plus_round(&geo, updates, 4096);
    let fed = fedora_round(&geo, effective_k(updates, epsilon), a, 4096);
    let base_life = lifetime_months(&profile, &geo, &base, 120.0);
    let fed_life = lifetime_months(&profile, &geo, &fed, 120.0);
    println!(
        "{} table, {updates} updates/round, eps = {epsilon}:",
        table.name
    );
    println!(
        "  ORAM on SSD: {:.1} GB (Z = {}, A = {a})",
        geo.tree_bytes(4096) as f64 / 1e9,
        geo.z()
    );
    println!("  Path ORAM+ lifetime: {base_life:.2} months");
    println!(
        "  FEDORA lifetime:     {fed_life:.2} months  ({:.0}x)",
        fed_life / base_life
    );
    let registry = registry_for(flags);
    registry
        .gauge("model.lifetime.path_oram_plus_months")
        .set(base_life);
    registry.gauge("model.lifetime.fedora_months").set(fed_life);
    registry.gauge("model.lifetime.epsilon").set(epsilon);
    write_metrics(flags, &registry.snapshot())
}

fn cmd_latency(flags: &HashMap<String, String>) -> Result<(), String> {
    let table = table_spec(flags)?;
    let updates = u64_flag(flags, "updates", 100_000)?;
    let epsilon = f64_flag(flags, "epsilon", 1.0)?;
    let config = FedoraConfig::paper_tuned(table, updates as usize);
    let model = LatencyModel::default();
    let scans = fedora_oblivious::union::requests_scan_cost(updates as usize, 16 * 1024);

    let base_counts = path_oram_plus_round(&config.geometry, updates, 4096);
    let fed_counts = fedora_round(
        &config.geometry,
        effective_k(updates, epsilon),
        config.raw.eviction_period,
        4096,
    );
    let base = model.analytic_round_latency(&config, &base_counts, updates, 0, true);
    let fed = model.analytic_round_latency(&config, &fed_counts, updates, scans, true);
    println!(
        "{} table, {updates} updates/round, eps = {epsilon}:",
        table.name
    );
    println!(
        "  Path ORAM+: {:.2} s added per round ({:.1}% of a 2-min round)",
        base.total_s(),
        base.overhead_fraction() * 100.0
    );
    println!(
        "  FEDORA:     {:.2} s added per round ({:.1}%)  [{:.1}x better]",
        fed.total_s(),
        fed.overhead_fraction() * 100.0,
        base.total_s() / fed.total_s()
    );
    println!(
        "  FEDORA breakdown: SSD {:.2} s, DRAM {:.2} s, controller {:.2} s, eviction {:.2} s",
        fed.ssd_ns / 1e9,
        fed.dram_ns / 1e9,
        fed.controller_ns / 1e9,
        fed.eviction_ns / 1e9
    );
    let registry = registry_for(flags);
    registry
        .gauge("model.latency.path_oram_plus_s")
        .set(base.total_s());
    registry.gauge("model.latency.fedora_s").set(fed.total_s());
    registry
        .gauge("model.latency.fedora_overhead_fraction")
        .set(fed.overhead_fraction());
    registry.gauge("model.latency.epsilon").set(epsilon);
    write_metrics(flags, &registry.snapshot())
}

fn cmd_round(flags: &HashMap<String, String>) -> Result<(), String> {
    let entries = u64_flag(flags, "entries", 4096)?;
    let epsilon = f64_flag(flags, "epsilon", 1.0)?;
    let requests: Vec<u64> = flags
        .get("requests")
        .map(String::as_str)
        .unwrap_or("7,19,7,42,7,230")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad request id '{s}'"))
        })
        .collect::<Result<_, _>>()?;
    if let Some(&bad) = requests.iter().find(|&&r| r >= entries) {
        return Err(format!("request {bad} outside table of {entries} entries"));
    }

    let threads = u64_flag(flags, "threads", 1)?.max(1) as usize;
    let mut rng = StdRng::seed_from_u64(u64_flag(flags, "seed", 42)?);
    let mut config = FedoraConfig::for_testing(TableSpec::tiny(entries), requests.len().max(16));
    config.parallelism = ParallelismConfig::with_threads(threads);
    if u64_flag(flags, "pipeline", 0)? > 0 {
        config.pipeline = fedora::config::PipelineConfig::lookahead_one();
    }
    config.privacy = if epsilon == 0.0 {
        PrivacyConfig::perfect()
    } else if epsilon.is_infinite() {
        PrivacyConfig::none()
    } else {
        PrivacyConfig::with_epsilon(epsilon)
    };
    let mut server =
        FedoraServer::with_telemetry(config, |_| vec![0u8; 32], registry_for(flags), &mut rng);
    if let Some(dir) = flags.get("state-dir") {
        attach_state_dir(&mut server, dir)?;
    }
    let _report = server
        .begin_round(&requests, &mut rng)
        .map_err(|e| e.to_string())?;
    // Exercise the full client exchange so fl.* telemetry is live: each
    // requested entry is downloaded and a gradient is pushed back.
    for &id in &requests {
        let served = server.serve(id, &mut rng).map_err(|e| e.to_string())?;
        if served.is_some() {
            let gradient = vec![0.1f32; 8];
            server
                .aggregate(&FedAvg, id, &gradient, 1, &mut rng)
                .map_err(|e| e.to_string())?;
        }
    }
    let mut mode = FedAvg;
    let done = server
        .end_round(&mut mode, 1.0, &mut rng)
        .map_err(|e| e.to_string())?;
    println!("Round over {} entries at eps = {epsilon}:", entries);
    println!(
        "  K = {} requests, k_union = {}, k = {} accesses",
        done.k_requests, done.k_union, done.k_accesses
    );
    println!(
        "  dummies = {}, lost = {}, EO accesses = {}",
        done.dummies, done.lost, done.eo_accesses
    );
    println!(
        "  SSD: {} pages read, {} pages written",
        done.ssd.pages_read, done.ssd.pages_written
    );
    let phases = done.phases;
    println!(
        "  phases: union {:.3} ms, fetch {:.3} ms, serve {:.3} ms, \
         aggregate {:.3} ms, write {:.3} ms (round {:.3} ms)",
        phases.union_ns as f64 / 1e6,
        phases.fetch_ns as f64 / 1e6,
        phases.serve_ns as f64 / 1e6,
        phases.aggregate_ns as f64 / 1e6,
        phases.write_ns as f64 / 1e6,
        phases.round_ns as f64 / 1e6,
    );
    if phases.overlap_ns > 0 {
        println!(
            "  overlap: {:.3} ms of union work prefetched off the critical path",
            phases.overlap_ns as f64 / 1e6
        );
    }
    write_metrics(flags, &server.metrics_snapshot())
}

/// Runs the `fedora-net` front end over a live pipeline server until a
/// client sends the protocol `Shutdown` request, then drains to the last
/// committed round and reports the engine outcome. With `--state-dir`
/// every committed round is journaled, so killing the process mid-round
/// loses at most the open (uncommitted) round.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let listen = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let (mut server, _rng) = live_server(flags, 64)?;
    if let Some(dir) = flags.get("state-dir") {
        attach_state_dir(&mut server, dir)?;
    }
    let seed = u64_flag(flags, "seed", 42)?;
    let config = NetConfig {
        queue_depth: u64_flag(flags, "queue-depth", 128)? as usize,
        max_connections: u64_flag(flags, "max-connections", 64)? as usize,
        ..NetConfig::default()
    };
    let handle = NetServer::spawn(server, seed ^ 0x5EED, listen, config)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    // CI and scripts wait for this exact line to learn the bound port.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let registry = handle.registry().clone();
    let outcome = handle.join();
    println!("serve loop finished: {outcome:?}");
    write_metrics(flags, &registry.snapshot())
}

fn cmd_attack(flags: &HashMap<String, String>) -> Result<(), String> {
    let epsilon = f64_flag(flags, "epsilon", 1.0)?;
    let trials = u64_flag(flags, "trials", 20_000)? as u32;
    let mech = if epsilon.is_infinite() {
        FdpMechanism::no_privacy()
    } else {
        FdpMechanism::new(epsilon, YShape::Uniform).map_err(|e| e.to_string())?
    };
    let mut rng = StdRng::seed_from_u64(u64_flag(flags, "seed", 7)?);
    let out = count_attack(&mech, 30, 100, trials, &mut rng);
    println!("Optimal access-count distinguisher at eps = {epsilon} ({trials} trials):");
    println!("  success rate: {:.2}%", out.success_rate * 100.0);
    println!("  DP bound:     {:.2}%", dp_success_bound(epsilon) * 100.0);
    let registry = registry_for(flags);
    registry.gauge("attack.success_rate").set(out.success_rate);
    registry
        .gauge("attack.dp_bound")
        .set(dp_success_bound(epsilon));
    registry.gauge("attack.epsilon").set(epsilon);
    write_metrics(flags, &registry.snapshot())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        None => {
            print!("{USAGE}");
            return;
        }
        Some((c, r)) => (c.as_str(), r),
    };
    let result = parse_flags(rest).and_then(|flags| match cmd {
        "lifetime" => cmd_lifetime(&flags),
        "latency" => cmd_latency(&flags),
        "round" => cmd_round(&flags),
        "checkpoint" => cmd_checkpoint(&flags),
        "restore" => cmd_restore(&flags),
        "attack" => cmd_attack(&flags),
        "serve" => cmd_serve(&flags),
        "watch" => cmd_watch(&flags),
        "scrape" => cmd_scrape(&flags),
        "tail" => cmd_tail(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    });
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
