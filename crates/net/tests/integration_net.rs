//! Live-server integration tests for the `fedora-net` front end:
//! adversarial framing against a running listener, graceful drain under
//! durability, and crash-mid-round recovery semantics.
//!
//! Every test binds to `127.0.0.1:0` so runs never collide.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use fedora::config::{FedoraConfig, TableSpec};
use fedora::durable::CrashPoint;
use fedora::server::FedoraServer;
use fedora_fl::wire;
use fedora_net::{
    read_frame, write_frame, EngineOutcome, NetClient, NetConfig, NetServer, Request, Response,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ENTRIES: u64 = 256;
const DIM: usize = 8; // TableSpec::tiny entry_bytes / 4

fn test_server(seed: u64) -> (FedoraServer, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = FedoraConfig::for_testing(TableSpec::tiny(ENTRIES), 64);
    let server = FedoraServer::new(config, |_| vec![0u8; 32], &mut rng);
    (server, rng)
}

fn spawn(server: FedoraServer, seed: u64) -> fedora_net::NetHandle {
    NetServer::spawn(server, seed, "127.0.0.1:0", NetConfig::default()).unwrap()
}

fn temp_state_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fedora-net-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn train_request(client: u32, entries: &[u64]) -> Request {
    let updates = entries
        .iter()
        .map(|_| wire::quantize(&[0.25f32; DIM]))
        .collect();
    Request::Train {
        client,
        entries: entries.to_vec(),
        updates,
        trace: None,
    }
}

/// One committed round through the wire, returning the round number.
fn train_once(client: &mut NetClient, id: u32, entries: &[u64]) -> u64 {
    match client.call(&train_request(id, entries)).unwrap() {
        Response::TrainOk { round, rows } => {
            assert_eq!(rows.len(), entries.len());
            round
        }
        other => panic!("expected TrainOk, got {other:?}"),
    }
}

#[test]
fn hello_train_health_round_trip() {
    let (server, _rng) = test_server(11);
    let handle = spawn(server, 11);
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();

    let id = match client.call(&Request::Hello).unwrap() {
        Response::Welcome { client } => client,
        other => panic!("expected Welcome, got {other:?}"),
    };
    let round = train_once(&mut client, id, &[3, 17, 3, 99]);
    assert!(round >= 1);

    match client.call(&Request::Health).unwrap() {
        Response::HealthOk {
            committed_rounds,
            round_active,
            total_epsilon,
            shed_requests,
            shed_connections,
        } => {
            assert!(committed_rounds >= 1);
            assert!(
                !round_active,
                "health between batches must see no open round"
            );
            assert!(
                total_epsilon > 0.0,
                "a committed round must have spent ε, got {total_epsilon}"
            );
            assert_eq!((shed_requests, shed_connections), (0, 0));
        }
        other => panic!("expected HealthOk, got {other:?}"),
    }
    assert!(matches!(
        handle.shutdown_and_join(),
        EngineOutcome::Drained { .. }
    ));
}

/// A frame whose length header exceeds the server's cap draws a typed
/// `frame` error reply and a closed session — and the listener keeps
/// serving other clients afterwards (no wedged worker).
#[test]
fn oversized_frame_gets_error_reply_and_close_without_wedging_server() {
    let (server, _rng) = test_server(13);
    let handle = spawn(server, 13);
    let addr = handle.addr().to_string();

    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Header claims 2 MiB (cap is 1 MiB); no payload follows.
    raw.write_all(&(2u32 << 20).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let reply = read_frame(&mut raw, 1 << 20).unwrap().expect("error reply");
    let text = String::from_utf8(reply).unwrap();
    assert!(
        text.contains("\"error\"") && text.contains("frame"),
        "{text}"
    );
    // Session is closed: next read sees clean EOF.
    assert!(read_frame(&mut raw, 1 << 20).unwrap().is_none());

    // The server is still healthy for a well-behaved client.
    let mut client = NetClient::connect(&addr).unwrap();
    train_once(&mut client, 1, &[5, 6]);
    assert_eq!(
        handle.registry().snapshot().counter("net.errors.frame"),
        Some(1)
    );
    handle.shutdown_and_join();
}

/// Zero-length frames and non-JSON payloads each draw a typed error and
/// a closed session; a mid-frame disconnect counts as a framing
/// violation too (the peer broke its length promise). None of them
/// disturb concurrently connected well-behaved clients.
#[test]
fn garbage_and_truncated_frames_close_cleanly() {
    let (server, _rng) = test_server(17);
    let handle = spawn(server, 17);
    let addr = handle.addr().to_string();

    // A well-behaved session opened *before* the abuse, checked after.
    let mut bystander = NetClient::connect(&addr).unwrap();

    // Zero-length frame → frame error.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&0u32.to_le_bytes()).unwrap();
    let reply = read_frame(&mut raw, 1 << 20).unwrap().expect("error reply");
    assert!(String::from_utf8(reply).unwrap().contains("frame"));
    assert!(read_frame(&mut raw, 1 << 20).unwrap().is_none());

    // Well-framed garbage JSON → proto error.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_frame(&mut raw, b"this is not json", 1 << 20).unwrap();
    let reply = read_frame(&mut raw, 1 << 20).unwrap().expect("error reply");
    assert!(String::from_utf8(reply).unwrap().contains("proto"));
    assert!(read_frame(&mut raw, 1 << 20).unwrap().is_none());

    // Mid-frame connection drop: header promises 100 bytes, send 3, hang up.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(b"abc").unwrap();
    drop(raw);

    // The bystander still gets full service.
    train_once(&mut bystander, 1, &[9, 10, 11]);
    // The mid-frame drop is detected on its reader thread; poll rather
    // than racing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = handle.registry().snapshot();
        if snapshot.counter("net.errors.frame") == Some(2) {
            assert_eq!(snapshot.counter("net.errors.proto"), Some(1));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "frame-error counter stuck at {:?}",
            snapshot.counter("net.errors.frame")
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(matches!(
        handle.shutdown_and_join(),
        EngineOutcome::Drained { .. }
    ));
}

/// Graceful shutdown under durability: the drain boundary and the
/// journal commit boundary coincide, so a fresh server recovering from
/// the state dir lands exactly on the drained round count.
#[test]
fn graceful_shutdown_drains_to_committed_round() {
    let dir = temp_state_dir("drain");
    let (mut server, _rng) = test_server(19);
    server.enable_durability(&dir).unwrap();
    let handle = spawn(server, 19);
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();

    for i in 0..3u64 {
        train_once(&mut client, 1, &[i * 7 % ENTRIES, (i * 13 + 1) % ENTRIES]);
    }
    // Protocol shutdown (what `openloop_load --shutdown-after` sends).
    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    ));
    let committed = match handle.join() {
        EngineOutcome::Drained { committed_rounds } => committed_rounds,
        other => panic!("expected Drained, got {other:?}"),
    };
    assert_eq!(committed, 3);

    let (mut recovered, _rng) = test_server(19);
    assert_eq!(recovered.recover(&dir).unwrap(), committed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the serve loop mid-round (armed crash point inside the write
/// phase): the engine reports `Crashed`, the doomed batch gets no reply,
/// and recovery lands on the last *committed* round — the torn round is
/// never counted as a commit.
#[test]
fn crash_mid_round_recovers_to_last_commit_without_torn_sessions() {
    let dir = temp_state_dir("crash");
    let (mut server, _rng) = test_server(23);
    server.enable_durability(&dir).unwrap();
    let handle = spawn(server, 23);
    let addr = handle.addr().to_string();

    // Commit two clean rounds first.
    let mut client = NetClient::connect(&addr).unwrap();
    train_once(&mut client, 1, &[4, 40]);
    train_once(&mut client, 1, &[5, 50]);

    // Arm a crash for the *next* round via the admin checkpoint path's
    // sibling: there is no wire surface for fault injection (by design),
    // so this test reaches the engine through a pre-armed server instead.
    drop(client);
    handle.shutdown_and_join();

    let (mut server, _rng) = test_server(23);
    let committed_before = server.recover(&dir).unwrap();
    assert_eq!(committed_before, 2);
    server.arm_crash_point(CrashPoint::MidEvictionWrite);
    let handle = spawn(server, 29);
    let addr = handle.addr().to_string();

    // The engine dies inside this round's write phase: no reply ever
    // arrives; the connection is closed when the handle is torn down.
    let (mut tx, _rx) = NetClient::connect(&addr).unwrap().into_split().unwrap();
    tx.send(&train_request(7, &[6, 60])).unwrap();
    match handle.join() {
        EngineOutcome::Crashed { detail } => {
            assert!(detail.contains("MidEvictionWrite"), "{detail}")
        }
        other => panic!("expected Crashed, got {other:?}"),
    }

    // Recovery: the torn round was never committed.
    let (mut recovered, _rng) = test_server(23);
    assert_eq!(recovered.recover(&dir).unwrap(), committed_before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload sheds with explicit `Overloaded` replies (bounded queue),
/// never silent drops: every request gets exactly one terminal answer.
#[test]
fn overload_sheds_with_explicit_replies() {
    let (server, _rng) = test_server(31);
    let config = NetConfig {
        queue_depth: 1,
        ..NetConfig::default()
    };
    let handle = NetServer::spawn(server, 31, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr().to_string();

    let (mut tx, mut rx) = NetClient::connect(&addr).unwrap().into_split().unwrap();
    let n = 32u32;
    for i in 0..n {
        tx.send(&train_request(i, &[u64::from(i) % ENTRIES]))
            .unwrap();
    }
    let mut ok = 0u32;
    let mut shed = 0u32;
    for _ in 0..n {
        match rx.recv().unwrap().1 {
            Response::TrainOk { .. } => ok += 1,
            Response::Overloaded => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok + shed, n, "every request answered exactly once");
    assert!(ok >= 1, "the queue admits at least one request");
    let counted = handle
        .registry()
        .snapshot()
        .counter("net.shed.requests")
        .unwrap_or(0);
    assert_eq!(counted, u64::from(shed));
    handle.shutdown_and_join();
}
