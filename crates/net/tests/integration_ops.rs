//! Live-server integration tests for the ops plane: request-scoped trace
//! ids flowing from the socket into spans, phase exemplars, and the
//! journal; the `scrape` verb's chunking under a small frame cap; and the
//! `tail` verb's cursor contract.
//!
//! Every test binds to `127.0.0.1:0` so runs never collide.

use std::time::{Duration, Instant};

use fedora::config::{FedoraConfig, TableSpec};
use fedora::server::FedoraServer;
use fedora_fl::wire;
use fedora_net::proto::{decode_response, encode_request};
use fedora_net::{
    read_frame, write_frame, NetClient, NetConfig, NetServer, Request, Response, ScrapeFormat,
};
use fedora_telemetry::{Event, Registry, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ENTRIES: u64 = 256;
const DIM: usize = 8; // TableSpec::tiny entry_bytes / 4

/// Spawns a front end over a tracing-enabled registry so `trace.begin` /
/// `trace.end` events land in the journal.
fn spawn_traced(seed: u64, config: NetConfig) -> (fedora_net::NetHandle, Registry) {
    let registry = Registry::new();
    registry.set_tracing(true);
    let mut rng = StdRng::seed_from_u64(seed);
    let fedora_config = FedoraConfig::for_testing(TableSpec::tiny(ENTRIES), 64);
    let server =
        FedoraServer::with_telemetry(fedora_config, |_| vec![0u8; 32], registry.clone(), &mut rng);
    let handle = NetServer::spawn(server, seed, "127.0.0.1:0", config).unwrap();
    (handle, registry)
}

fn hello(client: &mut NetClient) -> u32 {
    match client.call(&Request::Hello).unwrap() {
        Response::Welcome { client } => client,
        other => panic!("expected Welcome, got {other:?}"),
    }
}

fn train_request(client: u32, entries: &[u64], trace: Option<u64>) -> Request {
    let updates = entries
        .iter()
        .map(|_| wire::quantize(&[0.25f32; DIM]))
        .collect();
    Request::Train {
        client,
        entries: entries.to_vec(),
        updates,
        trace,
    }
}

fn field_u64(event: &Event, key: &str) -> u64 {
    match event.field(key) {
        Some(Value::U64(v)) => *v,
        other => panic!("event {}: field {key} not a u64: {other:?}", event.name),
    }
}

fn field_str<'a>(event: &'a Event, key: &str) -> &'a str {
    match event.field(key) {
        Some(Value::Str(s)) => s.as_str(),
        other => panic!("event {}: field {key} not a string: {other:?}", event.name),
    }
}

/// Polls the wire `tail` verb until an event named `name` whose `trace`
/// field equals `hex` shows up (the engine journals `net.request.done`
/// *after* the TrainOk reply leaves, so the client must wait for it).
fn await_done_event(client: &mut NetClient, hex: &str) -> (u64, u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (events, next_cursor, _dropped) = client.tail(0, 512).unwrap();
        if let Some(e) = events.iter().find(|e| {
            e.name == "net.request.done" && e.fields.iter().any(|(k, v)| k == "trace" && v == hex)
        }) {
            let round: u64 = e
                .fields
                .iter()
                .find(|(k, _)| k == "round")
                .map(|(_, v)| v.parse().unwrap())
                .unwrap();
            return (round, next_cursor);
        }
        assert!(
            Instant::now() < deadline,
            "net.request.done with trace {hex} never journaled"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A caller-supplied trace id is followable end to end: the journal's
/// `net.request.done` record (via wire `tail`), a per-request span
/// causally linked child-of-round in the snapshot and the Chrome trace
/// export, and the `net.request.phase.*` p99 exemplars in the Prometheus
/// scrape all carry it — while audit-only series stay redacted.
#[test]
fn trace_id_flows_from_wire_to_span_exemplar_and_tail() {
    let (handle, registry) = spawn_traced(17, NetConfig::default());
    let mut client = NetClient::connect(&handle.addr().to_string()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let id = hello(&mut client);

    const TRACE: u64 = 0xABCD_1234_DEAD_BEEF;
    const TRACE_HEX: &str = "0xabcd1234deadbeef";
    let round = match client
        .call(&train_request(id, &[3, 17, 3, 99], Some(TRACE)))
        .unwrap()
    {
        Response::TrainOk { round, rows } => {
            assert_eq!(rows.len(), 4);
            round
        }
        other => panic!("expected TrainOk, got {other:?}"),
    };

    // (c) same id retrievable via the wire `tail` verb, tied to the
    // committing round, with phase attribution alongside.
    let (done_round, next_cursor) = await_done_event(&mut client, TRACE_HEX);
    assert_eq!(done_round, round);
    assert!(next_cursor > 0, "tail cursor must advance past the journal");
    let (later, resumed_cursor, _) = client.tail(next_cursor, 512).unwrap();
    assert!(
        later.iter().all(|e| e.seq >= next_cursor),
        "resumed tail must only return events at or after the cursor"
    );
    assert!(resumed_cursor >= next_cursor);

    // (a) the per-request span is a child of the committing round's span.
    let snapshot = registry.snapshot();
    let begins: Vec<&Event> = snapshot
        .events
        .iter()
        .filter(|e| e.name == "trace.begin")
        .collect();
    let request_span = begins
        .iter()
        .find(|e| field_str(e, "name") == "net.request" && field_str(e, "trace") == TRACE_HEX)
        .unwrap_or_else(|| panic!("no net.request span for {TRACE_HEX}"));
    let parent = field_u64(request_span, "parent");
    assert_ne!(parent, 0, "request span must not be a root");
    let round_span = begins
        .iter()
        .find(|e| field_str(e, "name") == "round" && field_u64(e, "span") == parent)
        .unwrap_or_else(|| panic!("request span's parent {parent} is not a round span"));
    assert_eq!(field_u64(round_span, "round") + 1, round);
    let chrome = snapshot.to_chrome_trace();
    assert!(chrome.contains("net.request"), "chrome: {chrome}");
    assert!(chrome.contains(TRACE_HEX), "chrome: {chrome}");

    // (b) the phase histograms' tail buckets carry the id as exemplar
    // (one request so far, so p99 lands on it in every phase), and the
    // scrape keeps audit-only series redacted.
    let prom = client.scrape(ScrapeFormat::Prom).unwrap();
    for phase in ["queue", "assemble", "fetch", "serve", "reply"] {
        let line =
            format!("# EXEMPLAR fedora_net_request_phase_{phase}_ns_p99 trace_id=\"{TRACE_HEX}\"");
        assert!(prom.contains(&line), "missing {line} in scrape:\n{prom}");
    }
    assert!(prom.contains("fedora_fdp_total_epsilon"), "{prom}");
    assert!(
        !prom.contains("fdp_round_k_union") && !prom.contains("fdp_dummies_total"),
        "audit-only series leaked into the wire scrape:\n{prom}"
    );
    let json = client.scrape(ScrapeFormat::Json).unwrap();
    assert!(json.contains(TRACE_HEX), "json scrape: {json}");
    assert!(!json.contains("fdp.round.k_union"), "json scrape: {json}");

    handle.shutdown_and_join();
}

/// A bare wire client (raw frames, no `trace` member at all) still gets a
/// server-assigned id: every committed request is followable.
#[test]
fn bare_wire_train_gets_server_assigned_trace() {
    let (handle, _registry) = spawn_traced(23, NetConfig::default());
    let addr = handle.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let max = fedora_net::MAX_FRAME_BYTES;
    write_frame(&mut stream, &encode_request(1, &Request::Hello), max).unwrap();
    let payload = read_frame(&mut stream, max).unwrap().unwrap();
    let (_, resp) = decode_response(&payload).unwrap();
    let id = match resp {
        Response::Welcome { client } => client,
        other => panic!("expected Welcome, got {other:?}"),
    };
    // `trace: None` encodes to no `trace` member on the wire.
    write_frame(
        &mut stream,
        &encode_request(2, &train_request(id, &[5, 9], None)),
        max,
    )
    .unwrap();
    let payload = read_frame(&mut stream, max).unwrap().unwrap();
    let (_, resp) = decode_response(&payload).unwrap();
    assert!(matches!(resp, Response::TrainOk { .. }), "got {resp:?}");

    // The journal must still carry a non-zero server-assigned id.
    let mut ops = NetClient::connect(&addr).unwrap();
    ops.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let trace = loop {
        let (events, _, _) = ops.tail(0, 512).unwrap();
        if let Some(e) = events.iter().find(|e| e.name == "net.request.done") {
            break e
                .fields
                .iter()
                .find(|(k, _)| k == "trace")
                .map(|(_, v)| v.clone())
                .unwrap();
        }
        assert!(Instant::now() < deadline, "request never journaled");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(trace.starts_with("0x"), "trace {trace}");
    assert_ne!(trace, "0x0", "server must never assign the 0 sentinel");

    handle.shutdown_and_join();
}

/// Against a front end with a deliberately tiny frame cap, a scrape body
/// bigger than one frame arrives as multiple `scrape_ok` chunks — every
/// raw reply frame within the cap, `done` only on the last — and the
/// reassembled body is byte-identical to what a large-frame client sees.
#[test]
fn oversized_scrape_bodies_arrive_chunked_within_frame_cap() {
    const SMALL_FRAME: usize = 2048;
    let config = NetConfig {
        max_frame_bytes: SMALL_FRAME,
        ..NetConfig::default()
    };
    let (handle, registry) = spawn_traced(29, config);
    // Inflate the snapshot well past several frames' worth of text.
    for i in 0..400 {
        registry
            .counter(&format!("filler.series.with.a.long.name.{i:04}"))
            .add(i);
    }
    let addr = handle.addr().to_string();

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(
        &mut stream,
        &encode_request(
            1,
            &Request::Scrape {
                format: ScrapeFormat::Prom,
            },
        ),
        SMALL_FRAME,
    )
    .unwrap();
    let mut chunks = 0usize;
    let mut body = String::new();
    loop {
        // `read_frame` with the small cap rejects any oversized reply, so
        // completing this loop proves every chunk obeyed the cap.
        let payload = read_frame(&mut stream, SMALL_FRAME).unwrap().unwrap();
        let (seq, resp) = decode_response(&payload).unwrap();
        assert_eq!(seq, 1);
        match resp {
            Response::ScrapeOk { body: piece, done } => {
                chunks += 1;
                body.push_str(&piece);
                if done {
                    break;
                }
            }
            other => panic!("expected ScrapeOk, got {other:?}"),
        }
    }
    assert!(chunks > 1, "body of {} bytes fit one frame?", body.len());
    assert!(body.len() > SMALL_FRAME, "test body too small to chunk");
    for i in 0..400 {
        let name = format!("fedora_filler_series_with_a_long_name_{i:04} {i}");
        assert!(body.contains(&name), "reassembly lost series {i:04}");
    }

    // `NetClient::scrape` reassembles the same chunk stream transparently
    // (`net.requests` ticks between scrapes, so compare the stable series
    // rather than the whole document).
    let mut client = NetClient::connect(&addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let via_client = client.scrape(ScrapeFormat::Prom).unwrap();
    assert!(via_client.len() > SMALL_FRAME);
    for i in 0..400 {
        let name = format!("fedora_filler_series_with_a_long_name_{i:04} {i}");
        assert!(via_client.contains(&name), "client reassembly lost {i:04}");
    }

    handle.shutdown_and_join();
}
