//! Device-side telemetry: mirrors every device's traffic into a shared
//! [`Registry`].
//!
//! Each device keeps its bespoke [`DeviceStats`](crate::stats::DeviceStats)
//! struct as a thin synchronous view (the analytic figures are computed from
//! it), while a [`DeviceTelemetry`] handle set mirrors the same record sites
//! into registry counters and latency histograms under a per-device prefix
//! (`storage` for the main SSD, `dram.buffer` / `dram.vtree` for DRAM
//! modules). A default-constructed handle set is a no-op sink, so devices
//! built without an attached registry pay nothing.

use fedora_telemetry::{Counter, Histogram, Registry};

/// Registry handles mirroring one device's read/write/fault traffic.
///
/// Cloning shares the underlying instruments (a cloned device keeps feeding
/// the same counters — telemetry is monotonic even across transactional
/// snapshot/rollback of the owning structure).
#[derive(Clone, Debug, Default)]
pub struct DeviceTelemetry {
    pages_read: Counter,
    pages_written: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    read_latency: Histogram,
    write_latency: Histogram,
    faults_bitflip: Counter,
    faults_rollback: Counter,
    faults_transient: Counter,
    /// Back-reference for causal tracing: when tracing is enabled on the
    /// registry, every record becomes a `trace.io` event attributing the
    /// *simulated* device latency to the span that caused the I/O.
    registry: Registry,
    trace_read: String,
    trace_write: String,
}

impl DeviceTelemetry {
    /// Registers this device's instruments under `prefix` (eagerly, so the
    /// metric keys exist in snapshots even before any traffic):
    /// `{prefix}.pages_read`, `{prefix}.pages_written`,
    /// `{prefix}.bytes_read`, `{prefix}.bytes_written`,
    /// `{prefix}.read.latency`, `{prefix}.write.latency`, and
    /// `{prefix}.faults.{bitflip,rollback,transient}`.
    pub fn attach(registry: &Registry, prefix: &str) -> Self {
        DeviceTelemetry {
            pages_read: registry.counter(&format!("{prefix}.pages_read")),
            pages_written: registry.counter(&format!("{prefix}.pages_written")),
            bytes_read: registry.counter(&format!("{prefix}.bytes_read")),
            bytes_written: registry.counter(&format!("{prefix}.bytes_written")),
            read_latency: registry.histogram(&format!("{prefix}.read.latency")),
            write_latency: registry.histogram(&format!("{prefix}.write.latency")),
            faults_bitflip: registry.counter(&format!("{prefix}.faults.bitflip")),
            faults_rollback: registry.counter(&format!("{prefix}.faults.rollback")),
            faults_transient: registry.counter(&format!("{prefix}.faults.transient")),
            registry: registry.clone(),
            trace_read: format!("{prefix}.read"),
            trace_write: format!("{prefix}.write"),
        }
    }

    /// A detached handle set that drops everything (same as `default()`).
    pub fn noop() -> Self {
        Self::default()
    }

    /// Mirrors a read of `pages` pages / `bytes` bytes taking `ns`
    /// (modeled) nanoseconds. Batched reads record one histogram sample for
    /// the whole batch, matching the device's batched latency accounting.
    pub fn record_read(&self, pages: u64, bytes: u64, ns: u64) {
        self.pages_read.add(pages);
        self.bytes_read.add(bytes);
        self.read_latency.record(ns);
        self.registry.trace_io(&self.trace_read, ns, pages, bytes);
    }

    /// Mirrors a write, as for [`record_read`](Self::record_read).
    pub fn record_write(&self, pages: u64, bytes: u64, ns: u64) {
        self.pages_written.add(pages);
        self.bytes_written.add(bytes);
        self.write_latency.record(ns);
        self.registry.trace_io(&self.trace_write, ns, pages, bytes);
    }

    /// Mirrors an injected bit-flip fault surfacing in read traffic.
    pub fn fault_bitflip(&self) {
        self.faults_bitflip.incr();
    }

    /// Mirrors an injected rollback-replay fault surfacing in read traffic.
    pub fn fault_rollback(&self) {
        self.faults_rollback.incr();
    }

    /// Mirrors a transient operation failure.
    pub fn fault_transient(&self) {
        self.faults_transient.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_registers_keys_eagerly() {
        let r = Registry::new();
        let _t = DeviceTelemetry::attach(&r, "storage");
        let snap = r.snapshot();
        assert_eq!(snap.counter("storage.pages_read"), Some(0));
        assert_eq!(snap.counter("storage.pages_written"), Some(0));
        assert_eq!(snap.counter("storage.faults.bitflip"), Some(0));
        assert!(snap.histogram("storage.read.latency").is_some());
    }

    #[test]
    fn records_flow_to_registry() {
        let r = Registry::new();
        let t = DeviceTelemetry::attach(&r, "storage");
        t.record_read(3, 3 * 4096, 25_000);
        t.record_write(1, 4096, 40_000);
        t.fault_transient();
        let snap = r.snapshot();
        assert_eq!(snap.counter("storage.pages_read"), Some(3));
        assert_eq!(snap.counter("storage.bytes_read"), Some(3 * 4096));
        assert_eq!(snap.counter("storage.pages_written"), Some(1));
        assert_eq!(snap.counter("storage.faults.transient"), Some(1));
        assert_eq!(
            snap.histogram("storage.read.latency").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn noop_is_free_and_silent() {
        let t = DeviceTelemetry::noop();
        t.record_read(1, 4096, 1);
        t.fault_bitflip();
        // Nothing to observe — this must simply not panic or allocate.
    }

    #[test]
    fn tracing_attributes_simulated_latency_per_stream() {
        let r = Registry::new();
        r.set_tracing(true);
        let t = DeviceTelemetry::attach(&r, "storage");
        {
            let _span = r.trace_span("oram.eviction");
            t.record_write(2, 2 * 4096, 50_000);
        }
        t.record_read(1, 4096, 25_000); // outside any span → parent 0
        let events = r.snapshot().events;
        let ios: Vec<_> = events.iter().filter(|e| e.name == "trace.io").collect();
        assert_eq!(ios.len(), 2);
        assert_eq!(
            ios[0].field("name"),
            Some(&fedora_telemetry::Value::Str("storage.write".into()))
        );
        assert_eq!(
            ios[0].field("dur"),
            Some(&fedora_telemetry::Value::U64(50_000))
        );
        assert_eq!(
            ios[1].field("parent"),
            Some(&fedora_telemetry::Value::U64(0))
        );
    }

    #[test]
    fn two_devices_can_share_a_prefix() {
        let r = Registry::new();
        let a = DeviceTelemetry::attach(&r, "storage");
        let b = DeviceTelemetry::attach(&r, "storage");
        a.record_read(1, 10, 5);
        b.record_read(1, 10, 5);
        assert_eq!(r.snapshot().counter("storage.pages_read"), Some(2));
    }
}
