//! Durable file primitives: atomic commits, checksummed frames, and a
//! synced append-only journal.
//!
//! Everything the crash-recovery subsystem persists goes through this
//! module, so the commit discipline lives in exactly one place:
//!
//! * [`atomic_write_file`] — write to a same-directory temp file,
//!   `sync_all`, rename over the target, then fsync the directory. A crash
//!   at any point leaves either the old file or the new file, never a torn
//!   mix.
//! * [`seal_frame`] / [`open_frame`] — a versioned, FNV-1a-64-checksummed
//!   binary envelope for whole-file artifacts (checkpoints, metadata).
//! * [`JournalWriter`] / [`read_journal`] — an append-only record log
//!   where every append is synced before returning; readers stop at the
//!   first torn record, so a crash mid-append loses only the tail. On
//!   reopen the writer truncates any torn tail away before appending, so
//!   post-restart records are never shadowed behind torn bytes.
//! * [`ByteWriter`] / [`ByteReader`] — the hand-rolled little-endian
//!   codec every persisted structure encodes itself with.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash — the checksum used by every frame and journal
/// record (detects torn/corrupted persisted bytes; it is *not* a MAC —
/// authenticity of secret payloads comes from the AEAD layer above).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors from decoding persisted bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the encoding requires.
    Truncated,
    /// The frame's magic tag did not match.
    BadMagic,
    /// The frame's format version did not match.
    BadVersion {
        /// Version found in the frame.
        got: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The checksum did not match (torn or corrupted bytes).
    BadChecksum,
    /// A field held a value the decoder cannot accept.
    Invalid(&'static str),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::BadMagic => f.write_str("bad magic tag"),
            CodecError::BadVersion { got, expected } => {
                write!(f, "format version {got} (expected {expected})")
            }
            CodecError::BadChecksum => f.write_str("checksum mismatch"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian append-only encoder (see [`ByteReader`] for the inverse).
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian decoder over a byte slice (inverse of [`ByteWriter`]).
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as one byte (`0` or `1`).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.get_u64()? as usize;
        if self.remaining() < len.saturating_mul(8) {
            return Err(CodecError::Truncated);
        }
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes"))
        }
    }
}

/// Frame header size: magic(4) + version(4) + payload length(8).
const FRAME_HEADER: usize = 16;
/// Frame trailer size: FNV-1a-64 checksum.
const FRAME_TRAILER: usize = 8;

/// Wraps `payload` in a versioned, checksummed envelope:
/// `magic(4) ‖ version(4 LE) ‖ len(8 LE) ‖ payload ‖ fnv64(header‖payload)`.
pub fn seal_frame(magic: [u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a [`seal_frame`] envelope and returns the payload slice.
///
/// # Errors
///
/// [`CodecError::BadChecksum`] on torn/corrupted bytes, [`CodecError::BadMagic`]
/// / [`CodecError::BadVersion`] on tag mismatches, [`CodecError::Truncated`]
/// when the frame is shorter than its declared length.
pub fn open_frame(bytes: &[u8], magic: [u8; 4], version: u32) -> Result<&[u8], CodecError> {
    if bytes.len() < FRAME_HEADER + FRAME_TRAILER {
        return Err(CodecError::Truncated);
    }
    if bytes[..4] != magic {
        return Err(CodecError::BadMagic);
    }
    let got_version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if got_version != version {
        return Err(CodecError::BadVersion {
            got: got_version,
            expected: version,
        });
    }
    let len = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]) as usize;
    if bytes.len() != FRAME_HEADER + len + FRAME_TRAILER {
        return Err(CodecError::Truncated);
    }
    let body = &bytes[..FRAME_HEADER + len];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[FRAME_HEADER + len..]);
    if fnv1a64(body) != u64::from_le_bytes(sum) {
        return Err(CodecError::BadChecksum);
    }
    Ok(&bytes[FRAME_HEADER..FRAME_HEADER + len])
}

/// Writes `bytes` to `path` atomically: same-directory temp file,
/// `sync_all`, rename over the target, fsync the directory. A crash leaves
/// either the previous file or the complete new one.
///
/// # Errors
///
/// Propagates I/O errors from any step.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut tmp: PathBuf = path.to_path_buf();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    tmp.set_file_name(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_dir(dir)
}

/// Fsyncs a directory so a rename inside it is durable.
///
/// # Errors
///
/// Propagates I/O errors from opening or syncing the directory.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    let d = File::open(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    })?;
    d.sync_all()
}

/// Journal record header: payload length (`u32` LE).
const RECORD_HEADER: usize = 4;

/// An append-only record log where every append is synced before
/// returning. Records are length-prefixed and checksummed; [`read_journal`]
/// stops at the first torn record, so a crash mid-append loses only the
/// unsynced tail.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Opens (creating if needed) the journal at `path` for appending.
    ///
    /// Any torn tail left by a crash mid-append is truncated to the end of
    /// the last intact record (and the truncation synced) before the
    /// writer returns, so new appends land where readers will see them —
    /// a record appended after untrimmed torn bytes would be invisible to
    /// [`read_journal`] forever. When the call creates the file, the
    /// parent directory is fsync'd so the new directory entry survives a
    /// power loss (the file's own `sync_data` does not cover it).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: &Path) -> io::Result<Self> {
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let intact = scan_records(&bytes).1;
        if intact < bytes.len() {
            file.set_len(intact as u64)?;
            file.sync_all()?;
        }
        if !existed {
            fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
        }
        Ok(JournalWriter { file })
    }

    /// Appends one record and syncs it to stable storage before returning.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the record must be considered torn.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len() + FRAME_TRAILER);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.file.write_all(&rec)?;
        self.file.sync_data()
    }
}

/// Scans journal bytes, returning every intact payload and the byte
/// length of the intact prefix (the scan stops at the first torn record:
/// truncated length, short payload, or checksum mismatch).
fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER + FRAME_TRAILER {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let body_start = pos + RECORD_HEADER;
        let Some(sum_start) = body_start.checked_add(len) else {
            break;
        };
        if bytes.len() < sum_start + FRAME_TRAILER {
            break; // torn tail
        }
        let payload = &bytes[body_start..sum_start];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[sum_start..sum_start + FRAME_TRAILER]);
        if fnv1a64(payload) != u64::from_le_bytes(sum) {
            break; // torn tail
        }
        out.push(payload.to_vec());
        pos = sum_start + FRAME_TRAILER;
    }
    (out, pos)
}

/// Reads every intact record of a journal, stopping silently at the first
/// torn one (truncated length, short payload, or checksum mismatch — the
/// expected state after a crash mid-append). A missing file reads as empty.
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing.
pub fn read_journal(path: &Path) -> io::Result<Vec<Vec<u8>>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    Ok(scan_records(&bytes).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fedora-durable-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn codec_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(f64::INFINITY);
        w.put_f64(-1.5);
        w.put_bytes(b"payload");
        w.put_u64s(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_u64s().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert_eq!(r.get_u64(), Err(CodecError::Truncated));
        // Length prefix larger than the remaining bytes.
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).get_bytes(),
            Err(CodecError::Truncated)
        );
        assert_eq!(
            ByteReader::new(&bytes).get_u64s(),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn frame_roundtrip_and_detection() {
        const MAGIC: [u8; 4] = *b"FDTC";
        let payload = b"checkpoint body".to_vec();
        let frame = seal_frame(MAGIC, 3, &payload);
        assert_eq!(open_frame(&frame, MAGIC, 3).unwrap(), &payload[..]);
        // Wrong magic / version.
        assert_eq!(open_frame(&frame, *b"XXXX", 3), Err(CodecError::BadMagic));
        assert_eq!(
            open_frame(&frame, MAGIC, 4),
            Err(CodecError::BadVersion {
                got: 3,
                expected: 4
            })
        );
        // Any flipped payload bit fails the checksum.
        let mut bad = frame.clone();
        bad[FRAME_HEADER + 2] ^= 0x10;
        assert_eq!(open_frame(&bad, MAGIC, 3), Err(CodecError::BadChecksum));
        // Truncation detected.
        assert_eq!(
            open_frame(&frame[..frame.len() - 1], MAGIC, 3),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let path = temp_path("atomic");
        atomic_write_file(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_file(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        let mut tmp = path.clone();
        let mut name = tmp.file_name().unwrap().to_os_string();
        name.push(".tmp");
        tmp.set_file_name(name);
        assert!(!tmp.exists(), "temp file must not survive the commit");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_appends_and_reads_back() {
        let path = temp_path("journal");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = JournalWriter::open(&path).unwrap();
            j.append(b"one").unwrap();
            j.append(b"").unwrap();
            j.append(b"three").unwrap();
        }
        // Reopen appends, not truncates.
        {
            let mut j = JournalWriter::open(&path).unwrap();
            j.append(b"four").unwrap();
        }
        let records = read_journal(&path).unwrap();
        assert_eq!(
            records,
            vec![
                b"one".to_vec(),
                b"".to_vec(),
                b"three".to_vec(),
                b"four".to_vec()
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_tolerates_torn_tail() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = JournalWriter::open(&path).unwrap();
            j.append(b"committed").unwrap();
            j.append(b"doomed").unwrap();
        }
        // Tear the last record mid-payload, as a crash mid-append would.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![b"committed".to_vec()]);
        // A corrupted (bit-flipped) tail record is dropped the same way,
        // while the intact prefix survives.
        let mut bytes = full.clone();
        let in_doomed_payload = bytes.len() - 10;
        bytes[in_doomed_payload] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_journal(&path).unwrap(), vec![b"committed".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = temp_path("torn-reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = JournalWriter::open(&path).unwrap();
            j.append(b"committed").unwrap();
            j.append(b"doomed").unwrap();
        }
        // Tear the last record mid-payload, as a crash mid-append would.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        // Reopening trims the torn bytes, so the post-restart append is
        // visible to readers (appended after untrimmed torn bytes, it
        // would be shadowed forever) and no torn ciphertext stays on disk.
        {
            let mut j = JournalWriter::open(&path).unwrap();
            j.append(b"after-crash").unwrap();
        }
        assert_eq!(
            read_journal(&path).unwrap(),
            vec![b"committed".to_vec(), b"after-crash".to_vec()]
        );
        let intact_record = |payload: &[u8]| RECORD_HEADER + payload.len() + FRAME_TRAILER;
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            (intact_record(b"committed") + intact_record(b"after-crash")) as u64,
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_reads_empty() {
        assert!(read_journal(&temp_path("missing")).unwrap().is_empty());
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of the empty string is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
