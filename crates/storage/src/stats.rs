//! Device access statistics.
//!
//! Every simulated device maintains a [`DeviceStats`]; the lifetime, latency,
//! power, and cost figures are all computed from these counters.

use serde::{Deserialize, Serialize};

/// Access counters for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of page (or transaction) reads.
    pub pages_read: u64,
    /// Number of page (or transaction) writes.
    pub pages_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written — the quantity that wears an SSD out.
    pub bytes_written: u64,
    /// Simulated time the device spent busy, in nanoseconds.
    pub busy_ns: u64,
    /// Bit-flip faults injected into this device's read traffic.
    pub faults_bitflip: u64,
    /// Rollback-replay faults injected into this device's read traffic.
    pub faults_rollback: u64,
    /// Transient operation failures injected on this device.
    pub faults_transient: u64,
}

impl DeviceStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes every counter in place — the single reset path shared by all
    /// devices (`SimSsd`, `FileSsd`, `SimDram`) and the `PageDevice` trait.
    pub fn reset(&mut self) {
        *self = DeviceStats::default();
    }

    /// Records a read of `bytes` taking `ns` nanoseconds.
    pub fn record_read(&mut self, bytes: u64, ns: u64) {
        self.pages_read += 1;
        self.bytes_read += bytes;
        self.busy_ns += ns;
    }

    /// Records a write of `bytes` taking `ns` nanoseconds.
    pub fn record_write(&mut self, bytes: u64, ns: u64) {
        self.pages_written += 1;
        self.bytes_written += bytes;
        self.busy_ns += ns;
    }

    /// Element-wise difference (`self - earlier`), for measuring one phase.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &DeviceStats) -> DeviceStats {
        debug_assert!(self.pages_read >= earlier.pages_read);
        DeviceStats {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            busy_ns: self.busy_ns - earlier.busy_ns,
            faults_bitflip: self.faults_bitflip - earlier.faults_bitflip,
            faults_rollback: self.faults_rollback - earlier.faults_rollback,
            faults_transient: self.faults_transient - earlier.faults_transient,
        }
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &DeviceStats) -> DeviceStats {
        DeviceStats {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            busy_ns: self.busy_ns + other.busy_ns,
            faults_bitflip: self.faults_bitflip + other.faults_bitflip,
            faults_rollback: self.faults_rollback + other.faults_rollback,
            faults_transient: self.faults_transient + other.faults_transient,
        }
    }

    /// Total injected faults of any kind.
    pub fn faults_total(&self) -> u64 {
        self.faults_bitflip + self.faults_rollback + self.faults_transient
    }

    /// Busy time in seconds.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_ns as f64 / 1e9
    }
}

impl core::fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "reads={} writes={} bytes_read={} bytes_written={} busy={:.3}ms",
            self.pages_read,
            self.pages_written,
            self.bytes_read,
            self.bytes_written,
            self.busy_ns as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = DeviceStats::new();
        s.record_read(4096, 1000);
        s.record_read(4096, 1000);
        s.record_write(4096, 2000);
        assert_eq!(s.pages_read, 2);
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.bytes_read, 8192);
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.busy_ns, 4000);
    }

    #[test]
    fn since_diffs() {
        let mut s = DeviceStats::new();
        s.record_write(100, 10);
        let snapshot = s;
        s.record_write(200, 20);
        let d = s.since(&snapshot);
        assert_eq!(d.pages_written, 1);
        assert_eq!(d.bytes_written, 200);
        assert_eq!(d.busy_ns, 20);
    }

    #[test]
    fn merged_sums() {
        let mut a = DeviceStats::new();
        a.record_read(1, 1);
        let mut b = DeviceStats::new();
        b.record_write(2, 2);
        let m = a.merged(&b);
        assert_eq!(m.pages_read, 1);
        assert_eq!(m.pages_written, 1);
        assert_eq!(m.bytes_read, 1);
        assert_eq!(m.bytes_written, 2);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let mut s = DeviceStats::new();
        s.record_read(4096, 1000);
        s.faults_bitflip = 2;
        s.reset();
        assert_eq!(s, DeviceStats::default());
    }

    #[test]
    fn busy_seconds_converts() {
        let mut s = DeviceStats::new();
        s.record_read(1, 1_500_000_000);
        assert!((s.busy_seconds() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", DeviceStats::new()).is_empty());
    }
}
