//! Shadow-mode physical access trace capture for obliviousness auditing.
//!
//! An [`AccessTraceRecorder`] is a cheap cloneable handle (like
//! [`DeviceTelemetry`](crate::telemetry::DeviceTelemetry) and the registry
//! it mirrors into) that a device feeds the ordered sequence of page
//! indices it touches. The recorder captures exactly what a bus-snooping
//! adversary sees — *which* physical page moved in *which* direction, in
//! *what order* — so a twin-run harness can check that the sequence is
//! independent of the private inputs (PAPER §2: the ORAM obliviousness
//! invariant; §3: the ε-FDP bound on what the access *count* may leak).
//!
//! Design constraints:
//!
//! - **Shadow mode**: a default-constructed handle is detached and records
//!   nothing, so production devices pay one `Option` check per page.
//! - **Bounded**: capture stops (and a drop counter runs) once
//!   [`MAX_RECORDS`] entries are held, so a runaway workload cannot OOM the
//!   auditor.
//! - **Clone-shared**: cloning shares the underlying buffer. A device that
//!   is cloned for a transactional snapshot keeps appending to the same
//!   trace after rollback — physical accesses happened on the bus whether
//!   or not the round later aborted, and the adversary saw them.

use std::sync::{Arc, Mutex, MutexGuard};

/// Transfer direction of a recorded page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessOp {
    /// Page travelled device → host.
    Read,
    /// Page travelled host → device.
    Write,
}

/// One physical page access as seen on the device bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Transfer direction.
    pub op: AccessOp,
    /// Physical page index on the device.
    pub page: u64,
}

/// Hard cap on retained records (≈ 16 MiB of trace at 16 bytes/record).
pub const MAX_RECORDS: usize = 1 << 20;

#[derive(Debug, Default)]
struct RecorderInner {
    records: Vec<AccessRecord>,
    dropped: u64,
}

/// Shadow-mode recorder handle for a device's physical page-access
/// sequence. See the [module docs](self) for the capture model.
#[derive(Clone, Debug, Default)]
pub struct AccessTraceRecorder {
    inner: Option<Arc<Mutex<RecorderInner>>>,
}

/// Locks without propagating poisoning — the recorder must never take the
/// device down.
fn lock(m: &Mutex<RecorderInner>) -> MutexGuard<'_, RecorderInner> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl AccessTraceRecorder {
    /// Creates an armed recorder with an empty trace.
    pub fn new() -> Self {
        AccessTraceRecorder {
            inner: Some(Arc::new(Mutex::new(RecorderInner::default()))),
        }
    }

    /// A detached handle that records nothing (same as `default()`).
    pub fn disabled() -> Self {
        AccessTraceRecorder { inner: None }
    }

    /// Whether this handle captures accesses.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one page access. Devices call this once per page, in bus
    /// order (a batched transfer records each page in batch order).
    pub fn record(&self, op: AccessOp, page: u64) {
        if let Some(inner) = &self.inner {
            let mut g = lock(inner);
            if g.records.len() < MAX_RECORDS {
                g.records.push(AccessRecord { op, page });
            } else {
                g.dropped += 1;
            }
        }
    }

    /// Records a device → host transfer of `page`.
    pub fn record_read(&self, page: u64) {
        self.record(AccessOp::Read, page);
    }

    /// Records a host → device transfer of `page`.
    pub fn record_write(&self, page: u64) {
        self.record(AccessOp::Write, page);
    }

    /// Copies the captured trace (in capture order).
    pub fn snapshot(&self) -> Vec<AccessRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| lock(inner).records.clone())
    }

    /// Takes the captured trace, leaving the recorder empty (the drop
    /// counter is preserved).
    pub fn take(&self) -> Vec<AccessRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| std::mem::take(&mut lock(inner).records))
    }

    /// Discards the captured trace and resets the drop counter.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut g = lock(inner);
            g.records.clear();
            g.dropped = 0;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| lock(inner).records.len())
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accesses discarded after the [`MAX_RECORDS`] bound was hit. A
    /// non-zero value means the trace is a prefix, and trace-equality
    /// verdicts over it are not sound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| lock(inner).dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let r = AccessTraceRecorder::new();
        r.record_read(7);
        r.record_write(3);
        r.record_read(7);
        assert_eq!(
            r.snapshot(),
            vec![
                AccessRecord {
                    op: AccessOp::Read,
                    page: 7
                },
                AccessRecord {
                    op: AccessOp::Write,
                    page: 3
                },
                AccessRecord {
                    op: AccessOp::Read,
                    page: 7
                },
            ]
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn disabled_is_silent() {
        let r = AccessTraceRecorder::disabled();
        assert!(!r.is_enabled());
        r.record_read(1);
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
        assert!(AccessTraceRecorder::default().snapshot().is_empty());
    }

    #[test]
    fn clones_share_the_trace() {
        let a = AccessTraceRecorder::new();
        let b = a.clone();
        a.record_read(1);
        b.record_write(2);
        assert_eq!(a.len(), 2);
        let taken = b.take();
        assert_eq!(taken.len(), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn clear_resets() {
        let r = AccessTraceRecorder::new();
        r.record_read(0);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }
}
