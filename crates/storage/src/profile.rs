//! Device parameter profiles: latency, endurance, power, and cost constants.
//!
//! Defaults follow the paper's §6.1/§6.5 numbers: endurance of 5.4 PB
//! written per TB of capacity (Solidigm D7-P5620 rating the paper cites),
//! SSD active power of 6.2 W (Samsung 980 PRO data sheet), DRAM at
//! 375 mW/GB, and hardware prices of $0.10/GB (SSD) vs $3.15/GB (DRAM).

use serde::{Deserialize, Serialize};

/// Bytes per SSD page (the device's read/write granularity).
pub const SSD_PAGE_BYTES: usize = 4096;

/// One TB in bytes (decimal, as endurance ratings use).
pub const TB: f64 = 1e12;
/// One GB in bytes (decimal).
pub const GB: f64 = 1e9;

/// Latency/endurance/power/cost parameters of a simulated SSD.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SsdProfile {
    /// Page size in bytes (fixed 4 KiB on real NVMe consumer drives).
    pub page_bytes: usize,
    /// Latency of one 4-KiB page read, nanoseconds (QD1).
    pub read_latency_ns: u64,
    /// Latency of one 4-KiB page write, nanoseconds (QD1, SLC-cached).
    pub write_latency_ns: u64,
    /// Internal parallelism: number of page operations the device can
    /// overlap. Batch latency = ceil(n / parallelism) × per-op latency.
    pub parallelism: u32,
    /// Endurance: total bytes writable per byte of capacity (the paper's
    /// 5.4 PB/TB ⇒ 5400).
    pub endurance_writes_per_byte: f64,
    /// Active power draw in watts while reading/writing.
    pub active_power_w: f64,
    /// Hardware cost in dollars per GB.
    pub cost_per_gb: f64,
}

impl SsdProfile {
    /// A PM9A1-like consumer NVMe profile with the paper's endurance,
    /// power, and cost constants.
    pub fn pm9a1_like() -> Self {
        SsdProfile {
            page_bytes: SSD_PAGE_BYTES,
            read_latency_ns: 70_000,  // ~70 µs QD1 4K random read (TLC NAND)
            write_latency_ns: 20_000, // ~20 µs into the SLC write cache
            parallelism: 8,
            endurance_writes_per_byte: 5400.0, // 5.4 PB per TB
            active_power_w: 6.2,
            cost_per_gb: 0.10,
        }
    }

    /// Total bytes that may be written to a device of `capacity_bytes`
    /// before it wears out.
    pub fn endurance_bytes(&self, capacity_bytes: u64) -> f64 {
        capacity_bytes as f64 * self.endurance_writes_per_byte
    }

    /// Latency for a batch of `n` page reads issued together.
    pub fn batch_read_ns(&self, n: u64) -> u64 {
        n.div_ceil(self.parallelism as u64) * self.read_latency_ns
    }

    /// Latency for a batch of `n` page writes issued together.
    pub fn batch_write_ns(&self, n: u64) -> u64 {
        n.div_ceil(self.parallelism as u64) * self.write_latency_ns
    }
}

impl Default for SsdProfile {
    fn default() -> Self {
        Self::pm9a1_like()
    }
}

/// Latency/power/cost parameters of simulated DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramProfile {
    /// Latency of one random access (row activation + transfer), ns.
    pub access_latency_ns: u64,
    /// Sequential bandwidth in bytes per nanosecond (GB/s ≈ B/ns).
    pub bandwidth_bytes_per_ns: f64,
    /// Static power in watts per GB (the paper's 375 mW/GB).
    pub static_power_w_per_gb: f64,
    /// Hardware cost in dollars per GB.
    pub cost_per_gb: f64,
}

impl DramProfile {
    /// A DDR5-like profile with the paper's power and cost constants.
    pub fn ddr5_like() -> Self {
        DramProfile {
            access_latency_ns: 100,
            bandwidth_bytes_per_ns: 20.0, // 20 GB/s effective per channel
            static_power_w_per_gb: 0.375,
            cost_per_gb: 3.15,
        }
    }

    /// Latency of one access of `bytes` bytes.
    pub fn access_ns(&self, bytes: u64) -> u64 {
        self.access_latency_ns + (bytes as f64 / self.bandwidth_bytes_per_ns) as u64
    }
}

impl Default for DramProfile {
    fn default() -> Self {
        Self::ddr5_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let ssd = SsdProfile::default();
        assert_eq!(ssd.page_bytes, 4096);
        assert!((ssd.endurance_writes_per_byte - 5400.0).abs() < 1e-9);
        assert!((ssd.active_power_w - 6.2).abs() < 1e-9);
        assert!((ssd.cost_per_gb - 0.10).abs() < 1e-9);
        let dram = DramProfile::default();
        assert!((dram.static_power_w_per_gb - 0.375).abs() < 1e-9);
        assert!((dram.cost_per_gb - 3.15).abs() < 1e-9);
    }

    #[test]
    fn endurance_scales_with_capacity() {
        let ssd = SsdProfile::default();
        let one_tb = ssd.endurance_bytes(1_000_000_000_000);
        assert!((one_tb - 5.4e15).abs() / 5.4e15 < 1e-9, "5.4 PB per TB");
    }

    #[test]
    fn batch_latency_respects_parallelism() {
        let ssd = SsdProfile {
            parallelism: 4,
            ..SsdProfile::default()
        };
        assert_eq!(ssd.batch_read_ns(1), ssd.read_latency_ns);
        assert_eq!(ssd.batch_read_ns(4), ssd.read_latency_ns);
        assert_eq!(ssd.batch_read_ns(5), 2 * ssd.read_latency_ns);
        assert_eq!(ssd.batch_write_ns(8), 2 * ssd.write_latency_ns);
        assert_eq!(ssd.batch_write_ns(0), 0);
    }

    #[test]
    fn dram_access_latency_has_base_and_bandwidth() {
        let d = DramProfile::default();
        assert_eq!(d.access_ns(0), 100);
        assert!(d.access_ns(20_000) >= 100 + 999);
    }
}
