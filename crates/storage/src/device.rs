//! A shared page-device abstraction over the in-memory and file-backed
//! SSD models.
//!
//! The ORAM layers only need page-granular reads/writes plus statistics
//! and fault-injection hooks; [`PageDevice`] captures exactly that surface
//! so higher layers (and the chaos harness) can run against either
//! [`crate::SimSsd`] or [`crate::file_ssd::FileSsd`] without caring which
//! one backs the tree.

use crate::fault::{FaultConfig, FaultStats};
use crate::file_ssd::{FileSsd, FileSsdError};
use crate::ssd::{SimSsd, SsdError};
use crate::stats::DeviceStats;
use crate::telemetry::DeviceTelemetry;
use crate::trace_recorder::AccessTraceRecorder;

/// A page-granular block device with modeled statistics and optional
/// fault injection.
pub trait PageDevice {
    /// Device-specific error type; every device can at least represent
    /// the semantic [`SsdError`] cases (range, length, transient).
    type Error: From<SsdError> + core::fmt::Debug + core::fmt::Display;

    /// Bytes per page.
    fn page_bytes(&self) -> usize;

    /// Capacity in pages.
    fn num_pages(&self) -> u64;

    /// Reads one page.
    ///
    /// # Errors
    ///
    /// Range errors, transient injected failures, or host I/O failures.
    fn read_page(&mut self, page: u64) -> Result<Vec<u8>, Self::Error>;

    /// Writes one page (must be exactly [`page_bytes`](Self::page_bytes)
    /// long).
    ///
    /// # Errors
    ///
    /// As for [`read_page`](Self::read_page), plus length mismatches.
    fn write_page(&mut self, page: u64, data: &[u8]) -> Result<(), Self::Error>;

    /// Reads a batch of pages, in order, with batched latency accounting.
    ///
    /// # Errors
    ///
    /// As for [`read_page`](Self::read_page).
    fn read_pages(&mut self, pages: &[u64]) -> Result<Vec<Vec<u8>>, Self::Error>;

    /// Writes a batch of pages with batched latency accounting.
    ///
    /// # Errors
    ///
    /// As for [`write_page`](Self::write_page).
    fn write_pages(&mut self, writes: &[(u64, Vec<u8>)]) -> Result<(), Self::Error>;

    /// Accumulated device statistics.
    fn stats(&self) -> &DeviceStats;

    /// Mutable access to the statistics block.
    fn stats_mut(&mut self) -> &mut DeviceStats;

    /// Resets the statistics counters. All devices share this one default
    /// path through [`DeviceStats::reset`].
    fn reset_stats(&mut self) {
        self.stats_mut().reset();
    }

    /// Attaches telemetry handles mirroring this device's traffic into a
    /// registry (see [`DeviceTelemetry::attach`]).
    fn set_telemetry(&mut self, telemetry: DeviceTelemetry);

    /// Attaches a shadow-mode recorder capturing this device's physical
    /// page-access sequence for obliviousness auditing (see
    /// [`AccessTraceRecorder`]).
    fn set_access_recorder(&mut self, recorder: AccessTraceRecorder);

    /// Arms the seeded fault injector; replaces any previous injector.
    fn arm_faults(&mut self, config: FaultConfig);

    /// Disarms fault injection; subsequent I/O is fault-free.
    fn disarm_faults(&mut self);

    /// Counters from the armed injector (zeros when disarmed).
    fn fault_stats(&self) -> FaultStats;
}

impl PageDevice for SimSsd {
    type Error = SsdError;

    fn page_bytes(&self) -> usize {
        self.profile().page_bytes
    }

    fn num_pages(&self) -> u64 {
        SimSsd::num_pages(self)
    }

    fn read_page(&mut self, page: u64) -> Result<Vec<u8>, SsdError> {
        SimSsd::read_page(self, page)
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> Result<(), SsdError> {
        SimSsd::write_page(self, page, data)
    }

    fn read_pages(&mut self, pages: &[u64]) -> Result<Vec<Vec<u8>>, SsdError> {
        SimSsd::read_pages(self, pages)
    }

    fn write_pages(&mut self, writes: &[(u64, Vec<u8>)]) -> Result<(), SsdError> {
        SimSsd::write_pages(self, writes)
    }

    fn stats(&self) -> &DeviceStats {
        SimSsd::stats(self)
    }

    fn stats_mut(&mut self) -> &mut DeviceStats {
        SimSsd::stats_mut(self)
    }

    fn set_telemetry(&mut self, telemetry: DeviceTelemetry) {
        SimSsd::set_telemetry(self, telemetry)
    }

    fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        SimSsd::set_access_recorder(self, recorder)
    }

    fn arm_faults(&mut self, config: FaultConfig) {
        SimSsd::arm_faults(self, config)
    }

    fn disarm_faults(&mut self) {
        SimSsd::disarm_faults(self)
    }

    fn fault_stats(&self) -> FaultStats {
        SimSsd::fault_stats(self)
    }
}

impl PageDevice for FileSsd {
    type Error = FileSsdError;

    fn page_bytes(&self) -> usize {
        self.profile().page_bytes
    }

    fn num_pages(&self) -> u64 {
        FileSsd::num_pages(self)
    }

    fn read_page(&mut self, page: u64) -> Result<Vec<u8>, FileSsdError> {
        FileSsd::read_page(self, page)
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> Result<(), FileSsdError> {
        FileSsd::write_page(self, page, data)
    }

    fn read_pages(&mut self, pages: &[u64]) -> Result<Vec<Vec<u8>>, FileSsdError> {
        FileSsd::read_pages(self, pages)
    }

    fn write_pages(&mut self, writes: &[(u64, Vec<u8>)]) -> Result<(), FileSsdError> {
        FileSsd::write_pages(self, writes)
    }

    fn stats(&self) -> &DeviceStats {
        FileSsd::stats(self)
    }

    fn stats_mut(&mut self) -> &mut DeviceStats {
        FileSsd::stats_mut(self)
    }

    fn set_telemetry(&mut self, telemetry: DeviceTelemetry) {
        FileSsd::set_telemetry(self, telemetry)
    }

    fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        FileSsd::set_access_recorder(self, recorder)
    }

    fn arm_faults(&mut self, config: FaultConfig) {
        FileSsd::arm_faults(self, config)
    }

    fn disarm_faults(&mut self) {
        FileSsd::disarm_faults(self)
    }

    fn fault_stats(&self) -> FaultStats {
        FileSsd::fault_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SsdProfile;

    fn exercise<D: PageDevice>(dev: &mut D) {
        let pb = dev.page_bytes();
        dev.write_page(0, &vec![0x11; pb]).unwrap();
        dev.write_pages(&[(1, vec![0x22; pb]), (2, vec![0x33; pb])])
            .unwrap();
        assert_eq!(dev.read_page(1).unwrap()[0], 0x22);
        let batch = dev.read_pages(&[0, 2]).unwrap();
        assert_eq!(batch[0][0], 0x11);
        assert_eq!(batch[1][0], 0x33);
        assert_eq!(dev.stats().pages_written, 3);
        assert_eq!(dev.stats().pages_read, 3);
        dev.reset_stats();
        assert_eq!(dev.stats().pages_read, 0);
        assert_eq!(dev.fault_stats().total(), 0);
    }

    #[test]
    fn sim_ssd_implements_device() {
        let mut ssd = SimSsd::new(SsdProfile::pm9a1_like(), 8);
        exercise(&mut ssd);
    }

    #[test]
    fn file_ssd_implements_device() {
        let mut path = std::env::temp_dir();
        path.push(format!("fedora-device-trait-{}", std::process::id()));
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 8).unwrap();
        exercise(&mut ssd);
        ssd.remove().unwrap();
    }

    #[test]
    fn armed_device_counts_transients() {
        let mut ssd = SimSsd::new(SsdProfile::pm9a1_like(), 8);
        let cfg = FaultConfig {
            transient_per_read: 1.0,
            ..FaultConfig::default()
        };
        PageDevice::arm_faults(&mut ssd, cfg);
        let pb = PageDevice::page_bytes(&ssd);
        PageDevice::write_page(&mut ssd, 0, &vec![1u8; pb]).unwrap();
        assert!(matches!(
            PageDevice::read_page(&mut ssd, 0),
            Err(SsdError::Transient { page: 0 })
        ));
        // One-shot cooldown: the retry must succeed.
        assert_eq!(PageDevice::read_page(&mut ssd, 0).unwrap()[0], 1);
        assert_eq!(PageDevice::fault_stats(&ssd).transients, 1);
        PageDevice::disarm_faults(&mut ssd);
        assert_eq!(PageDevice::fault_stats(&ssd).total(), 0);
    }
}
