//! Seeded fault injection for chaos testing the integrity stack.
//!
//! A [`FaultInjector`] sits inside a page device ([`crate::SimSsd`] /
//! [`crate::file_ssd::FileSsd`]) and perturbs its traffic with three fault
//! classes, each drawn from an independent per-operation probability:
//!
//! * **Bit flips** — one bit of one returned page is flipped *in flight*
//!   (the stored bytes stay intact, like a transient NAND read error). The
//!   flip always lands in the first [`FaultConfig::flip_window`] bytes of a
//!   page, which for the bucket stores is always authenticated ciphertext,
//!   so every injected flip is detectable by construction.
//! * **Rollback replays** — the injector records the previous image of
//!   every page at overwrite time and, when scheduled, serves a whole
//!   bucket-aligned group of stale pages instead of the current ones. The
//!   stale group is a *genuine* old ciphertext (valid MAC under an older
//!   write counter), modeling a replaying device — exactly the attack the
//!   paper's Merkle-free counter scheme must catch.
//! * **Transient failures** — the operation fails with
//!   [`crate::ssd::SsdError::Transient`] before touching the device. The
//!   injector guarantees the immediate retry succeeds, so bounded-retry
//!   policies always make progress.
//!
//! At most **one** fault is injected per device operation, so upper-layer
//! detection counters can be compared 1:1 against [`FaultStats`].

use std::collections::HashMap;

/// Configuration of a [`FaultInjector`]. All rates are probabilities in
/// `[0, 1]` applied once per device operation (batch calls count as one
/// operation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; campaigns are reproducible given the seed.
    pub seed: u64,
    /// Probability a batch read returns one bit-flipped page.
    pub bitflip_per_read: f64,
    /// Probability a batch read serves a stale (rolled-back) bucket group.
    pub rollback_per_read: f64,
    /// Probability a read fails transiently (retry succeeds).
    pub transient_per_read: f64,
    /// Probability a write fails transiently (retry succeeds).
    pub transient_per_write: f64,
    /// Bit flips land in the first `flip_window` bytes of a page. The
    /// default of 1 keeps every flip inside authenticated ciphertext for
    /// page-aligned bucket layouts (each in-span page starts with
    /// ciphertext bytes).
    pub flip_window: usize,
    /// Rollbacks replace whole aligned groups of this many pages — set to
    /// the store's pages-per-bucket so a replayed bucket is internally
    /// consistent (splicing half a bucket would read as corruption, not
    /// rollback).
    pub pages_per_group: u64,
    /// Upper bound on distinct pages whose previous images are retained
    /// for rollback injection.
    pub max_tracked_pages: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            bitflip_per_read: 0.0,
            rollback_per_read: 0.0,
            transient_per_read: 0.0,
            transient_per_write: 0.0,
            flip_window: 1,
            pages_per_group: 1,
            max_tracked_pages: 1 << 16,
        }
    }
}

impl FaultConfig {
    /// A chaos-campaign preset: equal bit-flip / rollback / transient rates.
    pub fn chaos(seed: u64, bitflip: f64, rollback: f64, transient: f64) -> Self {
        FaultConfig {
            seed,
            bitflip_per_read: bitflip,
            rollback_per_read: rollback,
            transient_per_read: transient,
            transient_per_write: transient,
            ..Default::default()
        }
    }
}

/// Counts of injected faults, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bit flips injected into read results.
    pub bitflips: u64,
    /// Rollback replays served.
    pub rollbacks: u64,
    /// Transient failures injected.
    pub transients: u64,
}

impl FaultStats {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.bitflips + self.rollbacks + self.transients
    }
}

/// The kind of fault a single operation suffered (for device accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// A bit flip was applied to one returned page.
    BitFlip {
        /// The affected page.
        page: u64,
    },
    /// A stale group of pages was served.
    Rollback {
        /// First page of the replayed group.
        group_start: u64,
    },
}

/// A seeded, rate-configurable fault injector (see module docs).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng_state: u64,
    /// page → its previous image (captured at overwrite time).
    versions: HashMap<u64, Vec<u8>>,
    stats: FaultStats,
    /// One-shot flags guaranteeing a retry after a transient fault succeeds.
    read_cooldown: bool,
    write_cooldown: bool,
}

impl FaultInjector {
    /// Creates an injector from a configuration.
    pub fn new(config: FaultConfig) -> Self {
        assert!(config.flip_window > 0, "flip window must be non-empty");
        assert!(config.pages_per_group > 0, "group must be non-empty");
        FaultInjector {
            rng_state: config.seed ^ 0x6a09_e667_f3bc_c908,
            config,
            versions: HashMap::new(),
            stats: FaultStats::default(),
            read_cooldown: false,
            write_cooldown: false,
        }
    }

    /// The configuration this injector runs with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// splitmix64 — deterministic, dependency-free.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Decides whether this read fails transiently. Called before the
    /// device does any work; a `true` return means the caller should fail
    /// with [`crate::ssd::SsdError::Transient`]. The next read is
    /// guaranteed not to fail transiently.
    pub fn should_fail_read(&mut self) -> bool {
        if self.read_cooldown {
            self.read_cooldown = false;
            return false;
        }
        if self.config.transient_per_read > 0.0 && self.next_f64() < self.config.transient_per_read
        {
            self.read_cooldown = true;
            self.stats.transients += 1;
            return true;
        }
        false
    }

    /// Decides whether this write fails transiently (same contract as
    /// [`should_fail_read`](Self::should_fail_read)).
    pub fn should_fail_write(&mut self) -> bool {
        if self.write_cooldown {
            self.write_cooldown = false;
            return false;
        }
        if self.config.transient_per_write > 0.0
            && self.next_f64() < self.config.transient_per_write
        {
            self.write_cooldown = true;
            self.stats.transients += 1;
            return true;
        }
        false
    }

    /// Records the previous image of a page that is about to be
    /// overwritten — the raw material for rollback replays. Only retains
    /// images once a page has a *real* previous version (i.e. from its
    /// second write on), bounded by `max_tracked_pages`.
    pub fn record_pre_write(&mut self, page: u64, old: &[u8], first_write: bool) {
        if self.config.rollback_per_read <= 0.0 {
            return;
        }
        if first_write {
            // The all-zero initial image is not a valid old ciphertext;
            // mark the page seen without storing a replayable version.
            return;
        }
        if self.versions.contains_key(&page) || self.versions.len() < self.config.max_tracked_pages
        {
            self.versions.insert(page, old.to_vec());
        }
    }

    /// Possibly corrupts the in-flight results of a batch read. `pages`
    /// and `data` are parallel; at most one fault is applied. Returns what
    /// was injected, if anything.
    pub fn corrupt_read(&mut self, pages: &[u64], data: &mut [Vec<u8>]) -> Option<InjectedFault> {
        debug_assert_eq!(pages.len(), data.len());
        if pages.is_empty() {
            return None;
        }
        let draw = self.next_f64();
        if draw < self.config.rollback_per_read {
            if let Some(fault) = self.try_rollback(pages, data) {
                self.stats.rollbacks += 1;
                return Some(fault);
            }
            // No replayable group available — fall through to a bit flip
            // only if its own draw would also have fired, else inject
            // nothing (keeps rates independent).
            return None;
        }
        if draw < self.config.rollback_per_read + self.config.bitflip_per_read {
            let i = self.next_below(pages.len());
            let window = self.config.flip_window.min(data[i].len());
            if window == 0 {
                return None;
            }
            let byte = self.next_below(window);
            let bit = self.next_below(8) as u32;
            data[i][byte] ^= 1 << bit;
            self.stats.bitflips += 1;
            return Some(InjectedFault::BitFlip { page: pages[i] });
        }
        None
    }

    /// Serves a stale image for one whole page group, if every page of
    /// some group in the batch has a recorded previous version.
    fn try_rollback(&mut self, pages: &[u64], data: &mut [Vec<u8>]) -> Option<InjectedFault> {
        let group = self.config.pages_per_group;
        // Collect candidate group starts present in this batch.
        let mut starts: Vec<u64> = pages.iter().map(|p| (p / group) * group).collect();
        starts.sort_unstable();
        starts.dedup();
        let eligible: Vec<u64> = starts
            .into_iter()
            .filter(|&g0| {
                (g0..g0 + group).all(|p| pages.contains(&p) && self.versions.contains_key(&p))
            })
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let g0 = eligible[self.next_below(eligible.len())];
        for (i, &p) in pages.iter().enumerate() {
            if p >= g0 && p < g0 + group {
                if let Some(old) = self.versions.get(&p) {
                    data[i].clone_from(old);
                }
            }
        }
        Some(InjectedFault::Rollback { group_start: g0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_is_inert() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        let pages = [0u64, 1, 2];
        let mut data = vec![vec![0xAA; 64]; 3];
        for _ in 0..100 {
            assert!(!inj.should_fail_read());
            assert!(!inj.should_fail_write());
            assert!(inj.corrupt_read(&pages, &mut data).is_none());
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(data.iter().all(|p| p.iter().all(|&b| b == 0xAA)));
    }

    #[test]
    fn bitflips_land_in_window_and_are_counted() {
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 42,
            bitflip_per_read: 1.0,
            flip_window: 1,
            ..Default::default()
        });
        for _ in 0..50 {
            let pages = [3u64, 4, 5];
            let mut data = vec![vec![0u8; 32]; 3];
            let fault = inj.corrupt_read(&pages, &mut data);
            assert!(matches!(fault, Some(InjectedFault::BitFlip { .. })));
            // Exactly one bit differs, and only in byte 0 of one page.
            let flipped: u32 = data
                .iter()
                .map(|p| p.iter().map(|b| b.count_ones()).sum::<u32>())
                .sum();
            assert_eq!(flipped, 1);
            assert!(data.iter().all(|p| p[1..].iter().all(|&b| b == 0)));
        }
        assert_eq!(inj.stats().bitflips, 50);
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 7,
            transient_per_read: 1.0,
            transient_per_write: 1.0,
            ..Default::default()
        });
        for _ in 0..10 {
            assert!(inj.should_fail_read(), "rate 1.0 always fires");
            assert!(!inj.should_fail_read(), "retry must succeed");
            assert!(inj.should_fail_write());
            assert!(!inj.should_fail_write());
        }
        assert_eq!(inj.stats().transients, 20);
    }

    #[test]
    fn rollback_requires_recorded_versions() {
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 9,
            rollback_per_read: 1.0,
            pages_per_group: 2,
            ..Default::default()
        });
        let pages = [4u64, 5];
        let mut data = vec![vec![2u8; 16]; 2];
        // No versions recorded: nothing injected.
        assert!(inj.corrupt_read(&pages, &mut data).is_none());

        // First writes record nothing (all-zero genesis image).
        inj.record_pre_write(4, &[0u8; 16], true);
        inj.record_pre_write(5, &[0u8; 16], true);
        assert!(inj.corrupt_read(&pages, &mut data).is_none());

        // Second writes capture real previous images.
        inj.record_pre_write(4, &[1u8; 16], false);
        inj.record_pre_write(5, &[1u8; 16], false);
        let fault = inj.corrupt_read(&pages, &mut data);
        assert_eq!(fault, Some(InjectedFault::Rollback { group_start: 4 }));
        assert!(
            data.iter().all(|p| p.iter().all(|&b| b == 1)),
            "stale image served"
        );
        assert_eq!(inj.stats().rollbacks, 1);
    }

    #[test]
    fn rollback_skips_partially_tracked_groups() {
        let mut inj = FaultInjector::new(FaultConfig {
            seed: 11,
            rollback_per_read: 1.0,
            pages_per_group: 2,
            ..Default::default()
        });
        // Only page 4 of group {4,5} has a version.
        inj.record_pre_write(4, &[9u8; 8], false);
        let pages = [4u64, 5];
        let mut data = vec![vec![3u8; 8]; 2];
        assert!(inj.corrupt_read(&pages, &mut data).is_none());
        assert!(
            data.iter().all(|p| p.iter().all(|&b| b == 3)),
            "data untouched"
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let run = |seed: u64| -> (FaultStats, Vec<Vec<u8>>) {
            let mut inj = FaultInjector::new(FaultConfig {
                seed,
                bitflip_per_read: 0.3,
                transient_per_read: 0.2,
                ..Default::default()
            });
            let mut all = Vec::new();
            for _ in 0..200 {
                let _ = inj.should_fail_read();
                let pages = [0u64, 1];
                let mut data = vec![vec![0u8; 4]; 2];
                let _ = inj.corrupt_read(&pages, &mut data);
                all.extend(data);
            }
            (inj.stats(), all)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1);
    }

    #[test]
    fn tracked_pages_bounded() {
        let mut inj = FaultInjector::new(FaultConfig {
            rollback_per_read: 1.0,
            max_tracked_pages: 4,
            ..Default::default()
        });
        for p in 0..100u64 {
            inj.record_pre_write(p, &[1u8; 8], false);
        }
        assert!(inj.versions.len() <= 4);
    }
}
