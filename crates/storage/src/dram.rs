//! The simulated DRAM: a byte-addressable store with latency accounting.
//!
//! The buffer ORAM, position map, VTree, stash, and path buffer all live in
//! (untrusted, encrypted) DRAM. DRAM accesses are far cheaper than SSD page
//! operations but are still counted — the Fig. 9 energy model charges DRAM
//! by capacity (static power), and the Fig. 10 ablation charges extra DRAM
//! scans when no scratchpad is available.

use crate::profile::DramProfile;
use crate::stats::DeviceStats;
use crate::telemetry::DeviceTelemetry;

/// Error from DRAM operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramOutOfRange {
    /// First byte of the offending access.
    pub offset: u64,
    /// Length of the offending access.
    pub len: usize,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl core::fmt::Display for DramOutOfRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "access [{}, {}) out of range (capacity {})",
            self.offset,
            self.offset + self.len as u64,
            self.capacity
        )
    }
}

impl std::error::Error for DramOutOfRange {}

/// A simulated DRAM module.
///
/// # Example
///
/// ```
/// use fedora_storage::{SimDram, DramProfile};
/// # fn main() -> Result<(), fedora_storage::dram::DramOutOfRange> {
/// let mut dram = SimDram::new(DramProfile::ddr5_like(), 1 << 16);
/// dram.write(128, b"position map shard")?;
/// let mut buf = [0u8; 18];
/// dram.read(128, &mut buf)?;
/// assert_eq!(&buf, b"position map shard");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimDram {
    profile: DramProfile,
    bytes: Vec<u8>,
    stats: DeviceStats,
    telemetry: DeviceTelemetry,
}

impl SimDram {
    /// Creates a zero-filled DRAM of `capacity` bytes.
    pub fn new(profile: DramProfile, capacity: u64) -> Self {
        SimDram {
            bytes: vec![0u8; capacity as usize],
            profile,
            stats: DeviceStats::new(),
            telemetry: DeviceTelemetry::noop(),
        }
    }

    /// Attaches telemetry handles mirroring this module's traffic into a
    /// registry; for DRAM, `pages` counts accesses (transactions).
    pub fn set_telemetry(&mut self, telemetry: DeviceTelemetry) {
        self.telemetry = telemetry;
    }

    /// The device profile.
    pub fn profile(&self) -> &DramProfile {
        &self.profile
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Mutable statistics access (shares the devices' single reset path).
    pub fn stats_mut(&mut self) -> &mut DeviceStats {
        &mut self.stats
    }

    /// Resets the statistics (not the data).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn check(&self, offset: u64, len: usize) -> Result<(), DramOutOfRange> {
        if offset + len as u64 > self.bytes.len() as u64 {
            return Err(DramOutOfRange {
                offset,
                len,
                capacity: self.bytes.len() as u64,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`DramOutOfRange`] when the range exceeds capacity.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), DramOutOfRange> {
        self.check(offset, buf.len())?;
        buf.copy_from_slice(&self.bytes[offset as usize..offset as usize + buf.len()]);
        let ns = self.profile.access_ns(buf.len() as u64);
        self.stats.record_read(buf.len() as u64, ns);
        self.telemetry.record_read(1, buf.len() as u64, ns);
        Ok(())
    }

    /// Writes `data` at `offset`.
    ///
    /// # Errors
    ///
    /// [`DramOutOfRange`] when the range exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<(), DramOutOfRange> {
        self.check(offset, data.len())?;
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        let ns = self.profile.access_ns(data.len() as u64);
        self.stats.record_write(data.len() as u64, ns);
        self.telemetry.record_write(1, data.len() as u64, ns);
        Ok(())
    }

    /// Captures the raw byte image without touching statistics — the
    /// checkpoint path's out-of-band snapshot (restore with
    /// [`restore_state`](Self::restore_state)).
    pub fn snapshot_state(&self) -> (Vec<u8>, DeviceStats) {
        (self.bytes.clone(), self.stats)
    }

    /// Restores a byte image and statistics captured by
    /// [`snapshot_state`](Self::snapshot_state), bypassing the access
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not match this module's capacity.
    pub fn restore_state(&mut self, bytes: Vec<u8>, stats: DeviceStats) {
        assert_eq!(
            bytes.len(),
            self.bytes.len(),
            "dram image length must match capacity"
        );
        self.bytes = bytes;
        self.stats = stats;
    }

    /// Static power of this module in watts (375 mW/GB by default).
    pub fn static_power_w(&self) -> f64 {
        self.profile.static_power_w_per_gb * (self.bytes.len() as f64 / crate::profile::GB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = SimDram::new(DramProfile::default(), 1024);
        d.write(100, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        d.read(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn out_of_range() {
        let mut d = SimDram::new(DramProfile::default(), 16);
        assert!(d.write(10, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(d.read(12, &mut buf).is_err());
        // Exactly at the boundary is fine.
        assert!(d.write(8, &[0u8; 8]).is_ok());
    }

    #[test]
    fn stats_count_bytes() {
        let mut d = SimDram::new(DramProfile::default(), 1024);
        d.write(0, &[0u8; 64]).unwrap();
        let mut buf = [0u8; 128];
        d.read(0, &mut buf).unwrap();
        assert_eq!(d.stats().bytes_written, 64);
        assert_eq!(d.stats().bytes_read, 128);
        assert!(d.stats().busy_ns > 0);
    }

    #[test]
    fn static_power_scales() {
        let one_gb = SimDram::new(DramProfile::default(), 1_000_000_000);
        assert!((one_gb.static_power_w() - 0.375).abs() < 1e-6);
    }
}
