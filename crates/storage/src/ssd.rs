//! The simulated SSD: a page-granular block device with wear accounting.
//!
//! `SimSsd` stores real bytes (the ORAM tree actually lives here during
//! experiments) and enforces the block-device contract the paper's
//! optimizations are designed around: all transfers are whole 4-KiB pages,
//! writes are what wear the device out, and reads/writes have asymmetric
//! latency.

use crate::durable::{ByteReader, ByteWriter, CodecError};
use crate::fault::{FaultConfig, FaultInjector, FaultStats, InjectedFault};
use crate::profile::SsdProfile;
use crate::stats::DeviceStats;
use crate::telemetry::DeviceTelemetry;
use crate::trace_recorder::AccessTraceRecorder;

/// Error from SSD operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsdError {
    /// Page index beyond the device capacity.
    OutOfRange {
        /// The offending page index.
        page: u64,
        /// Device capacity in pages.
        capacity: u64,
    },
    /// Buffer length does not equal the page size.
    BadLength {
        /// The buffer length supplied.
        got: usize,
        /// The required page size.
        want: usize,
    },
    /// A transient device failure — the operation did not happen, but an
    /// immediate retry may succeed. Only produced when a
    /// [`FaultInjector`](crate::fault::FaultInjector) is armed.
    Transient {
        /// The first page the failed operation addressed.
        page: u64,
    },
}

impl core::fmt::Display for SsdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SsdError::OutOfRange { page, capacity } => {
                write!(f, "page {page} out of range (capacity {capacity} pages)")
            }
            SsdError::BadLength { got, want } => {
                write!(f, "buffer length {got} does not match page size {want}")
            }
            SsdError::Transient { page } => {
                write!(f, "transient device failure at page {page} (retryable)")
            }
        }
    }
}

impl std::error::Error for SsdError {}

/// A simulated NVMe SSD.
///
/// # Example
///
/// ```
/// use fedora_storage::{SimSsd, SsdProfile};
/// # fn main() -> Result<(), fedora_storage::ssd::SsdError> {
/// let mut ssd = SimSsd::new(SsdProfile::pm9a1_like(), 8);
/// ssd.write_page(0, &vec![7u8; 4096])?;
/// assert_eq!(ssd.read_page(0)?[0], 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimSsd {
    profile: SsdProfile,
    pages: Vec<u8>,
    num_pages: u64,
    stats: DeviceStats,
    telemetry: DeviceTelemetry,
    recorder: AccessTraceRecorder,
    injector: Option<Box<FaultInjector>>,
    /// Pages that have been written at least once (the injector needs to
    /// know whether a pre-write image is a real previous version).
    written_once: Vec<bool>,
}

impl SimSsd {
    /// Creates a zero-filled SSD with `num_pages` pages.
    pub fn new(profile: SsdProfile, num_pages: u64) -> Self {
        SimSsd {
            pages: vec![0u8; num_pages as usize * profile.page_bytes],
            num_pages,
            profile,
            stats: DeviceStats::new(),
            telemetry: DeviceTelemetry::noop(),
            recorder: AccessTraceRecorder::disabled(),
            injector: None,
            written_once: vec![false; num_pages as usize],
        }
    }

    /// Attaches telemetry handles mirroring this device's traffic into a
    /// registry (see [`DeviceTelemetry::attach`]). Replaces any previous
    /// handle set; pass [`DeviceTelemetry::noop`] to detach.
    pub fn set_telemetry(&mut self, telemetry: DeviceTelemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a shadow-mode access trace recorder capturing this device's
    /// physical page-access sequence (see
    /// [`AccessTraceRecorder`](crate::trace_recorder::AccessTraceRecorder)).
    /// Replaces any previous recorder; pass
    /// [`AccessTraceRecorder::disabled`] to detach.
    pub fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        self.recorder = recorder;
    }

    /// Arms a fault injector: subsequent operations are perturbed per
    /// `config`. Replaces any previously armed injector.
    pub fn arm_faults(&mut self, config: FaultConfig) {
        self.injector = Some(Box::new(FaultInjector::new(config)));
    }

    /// Disarms fault injection. The injection counters accumulated in
    /// [`stats`](Self::stats) are preserved.
    pub fn disarm_faults(&mut self) {
        self.injector = None;
    }

    /// Injection counters of the armed injector (zeroes when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// The device profile.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    /// Device capacity in pages.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_pages * self.profile.page_bytes as u64
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Mutable statistics access (the shared `PageDevice` reset path).
    pub fn stats_mut(&mut self) -> &mut DeviceStats {
        &mut self.stats
    }

    /// Resets the statistics (not the data).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn check(&self, page: u64, len: Option<usize>) -> Result<(), SsdError> {
        if page >= self.num_pages {
            return Err(SsdError::OutOfRange {
                page,
                capacity: self.num_pages,
            });
        }
        if let Some(got) = len {
            if got != self.profile.page_bytes {
                return Err(SsdError::BadLength {
                    got,
                    want: self.profile.page_bytes,
                });
            }
        }
        Ok(())
    }

    /// Reads one page.
    ///
    /// # Errors
    ///
    /// [`SsdError::OutOfRange`] if `page` exceeds capacity.
    pub fn read_page(&mut self, page: u64) -> Result<Vec<u8>, SsdError> {
        self.check(page, None)?;
        if let Some(inj) = self.injector.as_mut() {
            if inj.should_fail_read() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page });
            }
        }
        let pb = self.profile.page_bytes;
        let start = page as usize * pb;
        self.recorder.record_read(page);
        self.stats
            .record_read(pb as u64, self.profile.read_latency_ns);
        self.telemetry
            .record_read(1, pb as u64, self.profile.read_latency_ns);
        let mut out = vec![self.pages[start..start + pb].to_vec()];
        if let Some(inj) = self.injector.as_mut() {
            match inj.corrupt_read(&[page], &mut out) {
                Some(InjectedFault::BitFlip { .. }) => {
                    self.stats.faults_bitflip += 1;
                    self.telemetry.fault_bitflip();
                }
                Some(InjectedFault::Rollback { .. }) => {
                    self.stats.faults_rollback += 1;
                    self.telemetry.fault_rollback();
                }
                None => {}
            }
        }
        Ok(out.remove(0))
    }

    /// Writes one page.
    ///
    /// # Errors
    ///
    /// [`SsdError::OutOfRange`] or [`SsdError::BadLength`].
    pub fn write_page(&mut self, page: u64, data: &[u8]) -> Result<(), SsdError> {
        self.check(page, Some(data.len()))?;
        if let Some(inj) = self.injector.as_mut() {
            if inj.should_fail_write() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page });
            }
        }
        let pb = self.profile.page_bytes;
        let start = page as usize * pb;
        if let Some(inj) = self.injector.as_mut() {
            let first = !self.written_once[page as usize];
            inj.record_pre_write(page, &self.pages[start..start + pb], first);
        }
        self.written_once[page as usize] = true;
        self.pages[start..start + pb].copy_from_slice(data);
        self.recorder.record_write(page);
        self.stats
            .record_write(pb as u64, self.profile.write_latency_ns);
        self.telemetry
            .record_write(1, pb as u64, self.profile.write_latency_ns);
        Ok(())
    }

    /// Reads a batch of pages, modeling the device's internal parallelism:
    /// the recorded busy time for the batch is `batch_read_ns(n)` rather
    /// than `n × read_latency_ns`.
    ///
    /// # Errors
    ///
    /// Fails on the first out-of-range page; earlier pages in the batch are
    /// still counted as read.
    pub fn read_pages(&mut self, pages: &[u64]) -> Result<Vec<Vec<u8>>, SsdError> {
        if let Some(inj) = self.injector.as_mut() {
            if !pages.is_empty() && inj.should_fail_read() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page: pages[0] });
            }
        }
        let mut out = Vec::with_capacity(pages.len());
        let pb = self.profile.page_bytes;
        for &page in pages {
            self.check(page, None)?;
            let start = page as usize * pb;
            out.push(self.pages[start..start + pb].to_vec());
            self.recorder.record_read(page);
            // Count the page; batch time is added below.
            self.stats.pages_read += 1;
            self.stats.bytes_read += pb as u64;
        }
        let batch_ns = self.profile.batch_read_ns(pages.len() as u64);
        self.stats.busy_ns += batch_ns;
        self.telemetry
            .record_read(pages.len() as u64, pages.len() as u64 * pb as u64, batch_ns);
        if let Some(inj) = self.injector.as_mut() {
            match inj.corrupt_read(pages, &mut out) {
                Some(InjectedFault::BitFlip { .. }) => {
                    self.stats.faults_bitflip += 1;
                    self.telemetry.fault_bitflip();
                }
                Some(InjectedFault::Rollback { .. }) => {
                    self.stats.faults_rollback += 1;
                    self.telemetry.fault_rollback();
                }
                None => {}
            }
        }
        Ok(out)
    }

    /// Writes a batch of pages with batched latency accounting.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid page/buffer.
    pub fn write_pages(&mut self, writes: &[(u64, Vec<u8>)]) -> Result<(), SsdError> {
        if let Some(inj) = self.injector.as_mut() {
            if !writes.is_empty() && inj.should_fail_write() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page: writes[0].0 });
            }
        }
        let pb = self.profile.page_bytes;
        for (page, data) in writes {
            self.check(*page, Some(data.len()))?;
            let start = *page as usize * pb;
            if let Some(inj) = self.injector.as_mut() {
                let first = !self.written_once[*page as usize];
                inj.record_pre_write(*page, &self.pages[start..start + pb], first);
            }
            self.written_once[*page as usize] = true;
            self.pages[start..start + pb].copy_from_slice(data);
            self.recorder.record_write(*page);
            self.stats.pages_written += 1;
            self.stats.bytes_written += pb as u64;
        }
        let batch_ns = self.profile.batch_write_ns(writes.len() as u64);
        self.stats.busy_ns += batch_ns;
        self.telemetry.record_write(
            writes.len() as u64,
            writes.len() as u64 * pb as u64,
            batch_ns,
        );
        Ok(())
    }

    /// Fraction of the device's write endurance consumed so far, in
    /// [0, ∞) — values above 1.0 mean the device has worn out.
    pub fn wear_fraction(&self) -> f64 {
        self.stats.bytes_written as f64 / self.profile.endurance_bytes(self.capacity_bytes())
    }

    /// Injects a fault: flips `bit` of the given page in place, as a NAND
    /// bit error or a malicious device would. The next read of the page
    /// returns the corrupted bytes — upper layers must catch it via their
    /// authentication tags.
    ///
    /// # Errors
    ///
    /// [`SsdError::OutOfRange`] for bad pages.
    pub fn inject_bitflip(&mut self, page: u64, bit: u32) -> Result<(), SsdError> {
        self.check(page, None)?;
        let pb = self.profile.page_bytes;
        let idx = page as usize * pb + (bit as usize / 8) % pb;
        self.pages[idx] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Injects a rollback fault: overwrites `page` with `snapshot` (a
    /// previously captured page image), modeling a replay attack by a
    /// malicious device.
    ///
    /// # Errors
    ///
    /// [`SsdError::OutOfRange`] / [`SsdError::BadLength`].
    pub fn inject_rollback(&mut self, page: u64, snapshot: &[u8]) -> Result<(), SsdError> {
        self.check(page, Some(snapshot.len()))?;
        let pb = self.profile.page_bytes;
        let start = page as usize * pb;
        self.pages[start..start + pb].copy_from_slice(snapshot);
        Ok(())
    }

    /// Reads a page without touching statistics (the adversary's own
    /// snapshot for a later [`inject_rollback`](Self::inject_rollback)).
    ///
    /// # Errors
    ///
    /// [`SsdError::OutOfRange`] for bad pages.
    pub fn snapshot_page(&self, page: u64) -> Result<Vec<u8>, SsdError> {
        self.check(page, None)?;
        let pb = self.profile.page_bytes;
        let start = page as usize * pb;
        Ok(self.pages[start..start + pb].to_vec())
    }

    /// Serializes the device's durable state — data pages, written-page map,
    /// and cumulative statistics — into `w`. The armed fault injector and
    /// telemetry attachments are deliberately *not* persisted: recovery
    /// re-arms the injector from the journaled seed and re-attaches
    /// telemetry to the live registry.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.num_pages);
        w.put_u64(self.profile.page_bytes as u64);
        w.put_bytes(&self.pages);
        let mut map = vec![0u8; (self.num_pages as usize).div_ceil(8)];
        for (i, &written) in self.written_once.iter().enumerate() {
            if written {
                map[i / 8] |= 1 << (i % 8);
            }
        }
        w.put_bytes(&map);
        let s = &self.stats;
        for v in [
            s.pages_read,
            s.pages_written,
            s.bytes_read,
            s.bytes_written,
            s.busy_ns,
            s.faults_bitflip,
            s.faults_rollback,
            s.faults_transient,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores state previously captured by
    /// [`encode_state`](Self::encode_state) onto a freshly constructed
    /// device of the same geometry. Restoration bypasses the statistics
    /// paths (no reads/writes are counted) and verifies the captured
    /// geometry against this device's.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or geometry mismatch.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let num_pages = r.get_u64()?;
        if num_pages != self.num_pages {
            return Err(CodecError::Invalid("ssd page-count mismatch"));
        }
        let page_bytes = r.get_u64()?;
        if page_bytes != self.profile.page_bytes as u64 {
            return Err(CodecError::Invalid("ssd page-size mismatch"));
        }
        let pages = r.get_bytes()?;
        if pages.len() != self.pages.len() {
            return Err(CodecError::Invalid("ssd image length mismatch"));
        }
        let map = r.get_bytes()?;
        if map.len() != (self.num_pages as usize).div_ceil(8) {
            return Err(CodecError::Invalid("ssd written-page map length mismatch"));
        }
        self.pages = pages;
        for i in 0..self.num_pages as usize {
            self.written_once[i] = map[i / 8] & (1 << (i % 8)) != 0;
        }
        self.stats = DeviceStats {
            pages_read: r.get_u64()?,
            pages_written: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
            busy_ns: r.get_u64()?,
            faults_bitflip: r.get_u64()?,
            faults_rollback: r.get_u64()?,
            faults_transient: r.get_u64()?,
        };
        Ok(())
    }

    /// Expected device lifetime in months, extrapolating the observed write
    /// rate over `elapsed_seconds` of (simulated) wall-clock time.
    ///
    /// Returns `f64::INFINITY` when nothing has been written.
    pub fn projected_lifetime_months(&self, elapsed_seconds: f64) -> f64 {
        if self.stats.bytes_written == 0 {
            return f64::INFINITY;
        }
        let write_rate = self.stats.bytes_written as f64 / elapsed_seconds; // bytes/s
        let seconds = self.profile.endurance_bytes(self.capacity_bytes()) / write_rate;
        seconds / (30.44 * 24.0 * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd(pages: u64) -> SimSsd {
        SimSsd::new(SsdProfile::pm9a1_like(), pages)
    }

    #[test]
    fn roundtrip_page() {
        let mut s = ssd(4);
        let data = vec![0x5A; 4096];
        s.write_page(2, &data).unwrap();
        assert_eq!(s.read_page(2).unwrap(), data);
        assert_eq!(s.read_page(0).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = ssd(4);
        assert!(matches!(s.read_page(4), Err(SsdError::OutOfRange { .. })));
        assert!(matches!(
            s.write_page(9, &vec![0; 4096]),
            Err(SsdError::OutOfRange { .. })
        ));
    }

    #[test]
    fn bad_length_rejected() {
        let mut s = ssd(4);
        assert!(matches!(
            s.write_page(0, &[0u8; 100]),
            Err(SsdError::BadLength {
                got: 100,
                want: 4096
            })
        ));
    }

    #[test]
    fn stats_track_wear() {
        let mut s = ssd(4);
        for _ in 0..10 {
            s.write_page(0, &vec![1; 4096]).unwrap();
        }
        assert_eq!(s.stats().pages_written, 10);
        assert_eq!(s.stats().bytes_written, 40960);
        assert!(s.wear_fraction() > 0.0);
    }

    #[test]
    fn batch_reads_faster_than_serial() {
        let mut a = ssd(16);
        let mut b = ssd(16);
        let pages: Vec<u64> = (0..16).collect();
        a.read_pages(&pages).unwrap();
        for p in &pages {
            b.read_page(*p).unwrap();
        }
        assert_eq!(a.stats().pages_read, b.stats().pages_read);
        assert!(a.stats().busy_ns < b.stats().busy_ns);
    }

    #[test]
    fn batch_write_counts_pages() {
        let mut s = ssd(8);
        let writes: Vec<(u64, Vec<u8>)> = (0..4).map(|p| (p, vec![p as u8; 4096])).collect();
        s.write_pages(&writes).unwrap();
        assert_eq!(s.stats().pages_written, 4);
        for p in 0..4u64 {
            assert_eq!(s.read_page(p).unwrap()[0], p as u8);
        }
    }

    #[test]
    fn lifetime_projection() {
        let mut s = ssd(256); // 1 MiB device
                              // Write 100 pages over 10 simulated seconds.
        for i in 0..100u64 {
            s.write_page(i % 256, &vec![0; 4096]).unwrap();
        }
        let months = s.projected_lifetime_months(10.0);
        // endurance = 1MiB*5400 ≈ 5.66e9 bytes; rate = 40960 B/s
        // lifetime ≈ 1.38e5 s ≈ 0.05 months
        assert!(months > 0.01 && months < 1.0, "got {months}");
        let fresh = ssd(4);
        assert!(fresh.projected_lifetime_months(10.0).is_infinite());
    }

    #[test]
    fn bitflip_corrupts_page() {
        let mut s = ssd(2);
        s.write_page(0, &vec![0xAA; 4096]).unwrap();
        s.inject_bitflip(0, 3).unwrap();
        let page = s.read_page(0).unwrap();
        assert_eq!(page[0], 0xAA ^ 0b1000);
        assert!(s.inject_bitflip(9, 0).is_err());
    }

    #[test]
    fn rollback_restores_old_image() {
        let mut s = ssd(2);
        s.write_page(1, &vec![1; 4096]).unwrap();
        let old = s.snapshot_page(1).unwrap();
        s.write_page(1, &vec![2; 4096]).unwrap();
        s.inject_rollback(1, &old).unwrap();
        assert_eq!(s.read_page(1).unwrap()[0], 1);
    }

    #[test]
    fn snapshot_does_not_count_stats() {
        let mut s = ssd(2);
        s.write_page(0, &vec![5; 4096]).unwrap();
        let reads_before = s.stats().pages_read;
        let _ = s.snapshot_page(0).unwrap();
        assert_eq!(s.stats().pages_read, reads_before);
    }

    #[test]
    fn telemetry_mirrors_stats() {
        use fedora_telemetry::Registry;
        let r = Registry::new();
        let mut s = ssd(8);
        s.set_telemetry(crate::telemetry::DeviceTelemetry::attach(&r, "storage"));
        s.write_page(0, &vec![1; 4096]).unwrap();
        s.read_pages(&[0, 0]).unwrap();
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("storage.pages_written"),
            Some(s.stats().pages_written)
        );
        assert_eq!(
            snap.counter("storage.pages_read"),
            Some(s.stats().pages_read)
        );
        assert_eq!(
            snap.counter("storage.bytes_read"),
            Some(s.stats().bytes_read)
        );
        // One histogram sample per operation or batch: 1 write, 1 read batch.
        assert_eq!(
            snap.histogram("storage.write.latency").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("storage.read.latency").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn access_recorder_sees_bus_order() {
        use crate::trace_recorder::{AccessOp, AccessTraceRecorder};
        let mut s = ssd(8);
        let rec = AccessTraceRecorder::new();
        s.set_access_recorder(rec.clone());
        s.write_page(3, &vec![1; 4096]).unwrap();
        s.read_pages(&[3, 5]).unwrap();
        let trace = rec.snapshot();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].op, AccessOp::Write);
        assert_eq!(trace[0].page, 3);
        assert_eq!(trace[1].op, AccessOp::Read);
        assert_eq!(trace[1].page, 3);
        assert_eq!(trace[2].page, 5);
        // snapshot_page is the adversary's out-of-band peek, not bus traffic.
        let _ = s.snapshot_page(3).unwrap();
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn state_codec_roundtrips_pages_stats_and_written_map() {
        let mut s = ssd(4);
        s.write_page(1, &vec![0xC4; 4096]).unwrap();
        s.read_page(1).unwrap();
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = ssd(4);
        let mut r = ByteReader::new(&bytes);
        restored.decode_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored.read_page(1).unwrap()[0], 0xC4);
        // Stats resumed, then incremented by the read above.
        assert_eq!(restored.stats().pages_written, 1);
        assert_eq!(restored.stats().pages_read, 2);

        // The written-once map survived: arm a rollback injector and prove
        // page 1 is treated as previously written (pre-image tracked).
        restored.arm_faults(FaultConfig {
            rollback_per_read: 1.0,
            ..FaultConfig::default()
        });
        restored.write_page(1, &vec![0xC5; 4096]).unwrap();
        assert_eq!(restored.read_page(1).unwrap()[0], 0xC4);
    }

    #[test]
    fn state_codec_rejects_geometry_mismatch() {
        let s = ssd(4);
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = ssd(8);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            wrong.decode_state(&mut r),
            Err(CodecError::Invalid("ssd page-count mismatch"))
        );
    }

    #[test]
    fn reset_stats_keeps_data() {
        let mut s = ssd(2);
        s.write_page(1, &vec![3; 4096]).unwrap();
        s.reset_stats();
        assert_eq!(s.stats().pages_written, 0);
        assert_eq!(s.read_page(1).unwrap()[0], 3);
    }
}
