//! A file-backed SSD: the same page-granular contract as
//! [`crate::SimSsd`], persisted to a real file so experiments can exceed
//! RAM (the paper's artifact keeps its ORAMs on an NVMe drive for the same
//! reason).
//!
//! Latency/wear/power accounting uses the same [`SsdProfile`] model — the
//! host filesystem's own timing is *not* measured, so results remain
//! deterministic and host-independent. The file is sparse where pages have
//! never been written.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::durable::{
    atomic_write_file, open_frame, seal_frame, ByteReader, ByteWriter, CodecError,
};
use crate::fault::{FaultConfig, FaultInjector, FaultStats, InjectedFault};
use crate::profile::SsdProfile;
use crate::ssd::SsdError;
use crate::stats::DeviceStats;
use crate::telemetry::DeviceTelemetry;
use crate::trace_recorder::AccessTraceRecorder;

/// Errors from file-backed SSD operations.
#[derive(Debug)]
pub enum FileSsdError {
    /// A semantic device error (range/length), as for the in-memory model.
    Device(SsdError),
    /// Host I/O failure.
    Io(std::io::Error),
    /// The metadata sidecar failed to decode (torn, corrupt, or from an
    /// incompatible version).
    Metadata(CodecError),
    /// The metadata sidecar disagrees with the profile or backing file.
    MetadataMismatch(&'static str),
}

impl From<CodecError> for FileSsdError {
    fn from(e: CodecError) -> Self {
        FileSsdError::Metadata(e)
    }
}

impl From<SsdError> for FileSsdError {
    fn from(e: SsdError) -> Self {
        FileSsdError::Device(e)
    }
}

impl From<std::io::Error> for FileSsdError {
    fn from(e: std::io::Error) -> Self {
        FileSsdError::Io(e)
    }
}

impl core::fmt::Display for FileSsdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FileSsdError::Device(e) => write!(f, "device: {e}"),
            FileSsdError::Io(e) => write!(f, "io: {e}"),
            FileSsdError::Metadata(e) => write!(f, "metadata: {e}"),
            FileSsdError::MetadataMismatch(what) => write!(f, "metadata mismatch: {what}"),
        }
    }
}

impl std::error::Error for FileSsdError {}

/// Magic tag of the metadata sidecar frame.
const META_MAGIC: [u8; 4] = *b"FSSD";
/// Format version of the metadata sidecar.
const META_VERSION: u32 = 1;

/// A page-granular SSD persisted in a host file.
#[derive(Debug)]
pub struct FileSsd {
    profile: SsdProfile,
    file: File,
    path: PathBuf,
    num_pages: u64,
    stats: DeviceStats,
    telemetry: DeviceTelemetry,
    recorder: AccessTraceRecorder,
    injector: Option<Box<FaultInjector>>,
    written_once: Vec<bool>,
    /// When set, every page write is fsync'd before the call returns, so
    /// completion implies durability (off by default: simulation runs don't
    /// pay a sync per write).
    sync_on_write: bool,
}

impl FileSsd {
    /// Creates (or truncates) the backing file and sizes it to
    /// `num_pages` zero pages (sparse where supported).
    ///
    /// # Errors
    ///
    /// Host I/O errors propagate.
    pub fn create<P: AsRef<Path>>(
        path: P,
        profile: SsdProfile,
        num_pages: u64,
    ) -> Result<Self, FileSsdError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(num_pages * profile.page_bytes as u64)?;
        Ok(FileSsd {
            profile,
            file,
            path: path.as_ref().to_owned(),
            num_pages,
            stats: DeviceStats::new(),
            telemetry: DeviceTelemetry::noop(),
            recorder: AccessTraceRecorder::disabled(),
            injector: None,
            written_once: vec![false; num_pages as usize],
            sync_on_write: false,
        })
    }

    /// Opens a previously-persisted device from its backing file and
    /// metadata sidecar (written by
    /// [`persist_metadata`](Self::persist_metadata)). Statistics and the
    /// written-page map resume from their persisted values.
    ///
    /// # Errors
    ///
    /// [`FileSsdError::Metadata`] when the sidecar is missing/torn,
    /// [`FileSsdError::MetadataMismatch`] when it disagrees with `profile`
    /// or the backing file's size; host I/O errors propagate.
    pub fn open<P: AsRef<Path>>(path: P, profile: SsdProfile) -> Result<Self, FileSsdError> {
        let path = path.as_ref().to_owned();
        let meta_bytes = std::fs::read(Self::meta_path_for(&path))?;
        let payload = open_frame(&meta_bytes, META_MAGIC, META_VERSION)?;
        let mut r = ByteReader::new(payload);
        let num_pages = r.get_u64()?;
        let page_bytes = r.get_u64()?;
        if page_bytes != profile.page_bytes as u64 {
            return Err(FileSsdError::MetadataMismatch("page size"));
        }
        let written_bits = r.get_bytes()?;
        if written_bits.len() != num_pages.div_ceil(8) as usize {
            return Err(FileSsdError::MetadataMismatch("written-page map length"));
        }
        let mut stats = DeviceStats::new();
        stats.pages_read = r.get_u64()?;
        stats.pages_written = r.get_u64()?;
        stats.bytes_read = r.get_u64()?;
        stats.bytes_written = r.get_u64()?;
        stats.busy_ns = r.get_u64()?;
        stats.faults_bitflip = r.get_u64()?;
        stats.faults_rollback = r.get_u64()?;
        stats.faults_transient = r.get_u64()?;
        r.expect_end()?;
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        // Checked: the FNV frame checksum is not a MAC, so a forged
        // sidecar could carry a num_pages × page_bytes product that wraps
        // in release builds and slips past the size check.
        let expected_len = num_pages
            .checked_mul(page_bytes)
            .ok_or(FileSsdError::MetadataMismatch("device size overflows"))?;
        if file.metadata()?.len() < expected_len {
            return Err(FileSsdError::MetadataMismatch("backing file too short"));
        }
        let written_once = (0..num_pages as usize)
            .map(|i| written_bits[i / 8] >> (i % 8) & 1 == 1)
            .collect();
        Ok(FileSsd {
            profile,
            file,
            path,
            num_pages,
            stats,
            telemetry: DeviceTelemetry::noop(),
            recorder: AccessTraceRecorder::disabled(),
            injector: None,
            written_once,
            sync_on_write: false,
        })
    }

    fn meta_path_for(path: &Path) -> PathBuf {
        let mut meta = path.to_path_buf();
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".meta");
        meta.set_file_name(name);
        meta
    }

    /// The metadata sidecar path (`<backing file>.meta`).
    pub fn meta_path(&self) -> PathBuf {
        Self::meta_path_for(&self.path)
    }

    /// Persists the device metadata (written-page map + statistics) with
    /// the durable write-ordering discipline: the data file is fsync'd
    /// *first*, then the sidecar commits atomically (temp file + rename +
    /// directory fsync) — so the sidecar never describes pages that were
    /// not yet durable when it was written.
    ///
    /// # Errors
    ///
    /// Host I/O errors propagate.
    pub fn persist_metadata(&mut self) -> Result<(), FileSsdError> {
        // Data before metadata: sync page content first.
        self.file.sync_all()?;
        let mut w = ByteWriter::new();
        w.put_u64(self.num_pages);
        w.put_u64(self.profile.page_bytes as u64);
        let mut bits = vec![0u8; (self.num_pages as usize).div_ceil(8)];
        for (i, &written) in self.written_once.iter().enumerate() {
            if written {
                bits[i / 8] |= u8::from(written) << (i % 8);
            }
        }
        w.put_bytes(&bits);
        for v in [
            self.stats.pages_read,
            self.stats.pages_written,
            self.stats.bytes_read,
            self.stats.bytes_written,
            self.stats.busy_ns,
            self.stats.faults_bitflip,
            self.stats.faults_rollback,
            self.stats.faults_transient,
        ] {
            w.put_u64(v);
        }
        let frame = seal_frame(META_MAGIC, META_VERSION, &w.into_bytes());
        atomic_write_file(&self.meta_path(), &frame)?;
        Ok(())
    }

    /// Enables (or disables) fsync-per-write: when on, [`write_page`] /
    /// [`write_pages`] sync the file before returning, so a completed write
    /// is durable.
    ///
    /// [`write_page`]: Self::write_page
    /// [`write_pages`]: Self::write_pages
    pub fn set_sync_on_write(&mut self, on: bool) {
        self.sync_on_write = on;
    }

    /// Flushes all written pages to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Host I/O errors propagate.
    pub fn sync(&mut self) -> Result<(), FileSsdError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Attaches telemetry handles mirroring this device's traffic into a
    /// registry (see [`DeviceTelemetry::attach`]).
    pub fn set_telemetry(&mut self, telemetry: DeviceTelemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a shadow-mode access trace recorder (see
    /// [`AccessTraceRecorder`]); pass [`AccessTraceRecorder::disabled`] to
    /// detach.
    pub fn set_access_recorder(&mut self, recorder: AccessTraceRecorder) {
        self.recorder = recorder;
    }

    /// Arms the seeded fault injector; replaces any previous injector.
    pub fn arm_faults(&mut self, config: FaultConfig) {
        self.injector = Some(Box::new(FaultInjector::new(config)));
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&mut self) {
        self.injector = None;
    }

    /// Counters from the armed injector (zeros when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Device capacity in pages.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_pages * self.profile.page_bytes as u64
    }

    /// The device profile.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    /// Accumulated statistics (modeled, not host-measured).
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Mutable statistics access (the shared `PageDevice` reset path).
    pub fn stats_mut(&mut self) -> &mut DeviceStats {
        &mut self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn check(&self, page: u64, len: Option<usize>) -> Result<(), SsdError> {
        if page >= self.num_pages {
            return Err(SsdError::OutOfRange {
                page,
                capacity: self.num_pages,
            });
        }
        if let Some(got) = len {
            if got != self.profile.page_bytes {
                return Err(SsdError::BadLength {
                    got,
                    want: self.profile.page_bytes,
                });
            }
        }
        Ok(())
    }

    /// Reads one page.
    ///
    /// # Errors
    ///
    /// Range errors as [`FileSsdError::Device`]; host failures as
    /// [`FileSsdError::Io`].
    pub fn read_page(&mut self, page: u64) -> Result<Vec<u8>, FileSsdError> {
        self.check(page, None)?;
        if let Some(inj) = self.injector.as_mut() {
            if inj.should_fail_read() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page }.into());
            }
        }
        let pb = self.profile.page_bytes;
        let mut buf = vec![0u8; pb];
        self.file.seek(SeekFrom::Start(page * pb as u64))?;
        self.file.read_exact(&mut buf)?;
        self.recorder.record_read(page);
        self.stats
            .record_read(pb as u64, self.profile.read_latency_ns);
        self.telemetry
            .record_read(1, pb as u64, self.profile.read_latency_ns);
        let mut out = vec![buf];
        if let Some(inj) = self.injector.as_mut() {
            match inj.corrupt_read(&[page], &mut out) {
                Some(InjectedFault::BitFlip { .. }) => {
                    self.stats.faults_bitflip += 1;
                    self.telemetry.fault_bitflip();
                }
                Some(InjectedFault::Rollback { .. }) => {
                    self.stats.faults_rollback += 1;
                    self.telemetry.fault_rollback();
                }
                None => {}
            }
        }
        Ok(out.remove(0))
    }

    /// Writes one page.
    ///
    /// # Errors
    ///
    /// As for [`read_page`](Self::read_page).
    pub fn write_page(&mut self, page: u64, data: &[u8]) -> Result<(), FileSsdError> {
        self.check(page, Some(data.len()))?;
        if let Some(inj) = self.injector.as_mut() {
            if inj.should_fail_write() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page }.into());
            }
        }
        let pb = self.profile.page_bytes;
        if self.injector.is_some() {
            let first = !self.written_once[page as usize];
            let mut old = vec![0u8; pb];
            self.file.seek(SeekFrom::Start(page * pb as u64))?;
            self.file.read_exact(&mut old)?;
            if let Some(inj) = self.injector.as_mut() {
                inj.record_pre_write(page, &old, first);
            }
        }
        self.written_once[page as usize] = true;
        self.file.seek(SeekFrom::Start(page * pb as u64))?;
        self.file.write_all(data)?;
        if self.sync_on_write {
            self.file.sync_data()?;
        }
        self.recorder.record_write(page);
        self.stats
            .record_write(pb as u64, self.profile.write_latency_ns);
        self.telemetry
            .record_write(1, pb as u64, self.profile.write_latency_ns);
        Ok(())
    }

    /// Reads a batch of pages with batched latency accounting, mirroring
    /// [`crate::SimSsd::read_pages`].
    ///
    /// # Errors
    ///
    /// As for [`read_page`](Self::read_page).
    pub fn read_pages(&mut self, pages: &[u64]) -> Result<Vec<Vec<u8>>, FileSsdError> {
        if let Some(inj) = self.injector.as_mut() {
            if !pages.is_empty() && inj.should_fail_read() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page: pages[0] }.into());
            }
        }
        let pb = self.profile.page_bytes;
        let mut out = Vec::with_capacity(pages.len());
        for &page in pages {
            self.check(page, None)?;
            let mut buf = vec![0u8; pb];
            self.file.seek(SeekFrom::Start(page * pb as u64))?;
            self.file.read_exact(&mut buf)?;
            out.push(buf);
            self.recorder.record_read(page);
            self.stats.pages_read += 1;
            self.stats.bytes_read += pb as u64;
        }
        let batch_ns = self.profile.batch_read_ns(pages.len() as u64);
        self.stats.busy_ns += batch_ns;
        self.telemetry
            .record_read(pages.len() as u64, pages.len() as u64 * pb as u64, batch_ns);
        if let Some(inj) = self.injector.as_mut() {
            match inj.corrupt_read(pages, &mut out) {
                Some(InjectedFault::BitFlip { .. }) => {
                    self.stats.faults_bitflip += 1;
                    self.telemetry.fault_bitflip();
                }
                Some(InjectedFault::Rollback { .. }) => {
                    self.stats.faults_rollback += 1;
                    self.telemetry.fault_rollback();
                }
                None => {}
            }
        }
        Ok(out)
    }

    /// Writes a batch of pages with batched latency accounting, mirroring
    /// [`crate::SimSsd::write_pages`].
    ///
    /// # Errors
    ///
    /// As for [`write_page`](Self::write_page).
    pub fn write_pages(&mut self, writes: &[(u64, Vec<u8>)]) -> Result<(), FileSsdError> {
        if let Some(inj) = self.injector.as_mut() {
            if !writes.is_empty() && inj.should_fail_write() {
                self.stats.faults_transient += 1;
                self.telemetry.fault_transient();
                return Err(SsdError::Transient { page: writes[0].0 }.into());
            }
        }
        let pb = self.profile.page_bytes;
        for (page, data) in writes {
            self.check(*page, Some(data.len()))?;
            if self.injector.is_some() {
                let first = !self.written_once[*page as usize];
                let mut old = vec![0u8; pb];
                self.file.seek(SeekFrom::Start(*page * pb as u64))?;
                self.file.read_exact(&mut old)?;
                if let Some(inj) = self.injector.as_mut() {
                    inj.record_pre_write(*page, &old, first);
                }
            }
            self.written_once[*page as usize] = true;
            self.file.seek(SeekFrom::Start(*page * pb as u64))?;
            self.file.write_all(data)?;
            self.recorder.record_write(*page);
            self.stats.pages_written += 1;
            self.stats.bytes_written += pb as u64;
        }
        if self.sync_on_write && !writes.is_empty() {
            self.file.sync_data()?;
        }
        let batch_ns = self.profile.batch_write_ns(writes.len() as u64);
        self.stats.busy_ns += batch_ns;
        self.telemetry.record_write(
            writes.len() as u64,
            writes.len() as u64 * pb as u64,
            batch_ns,
        );
        Ok(())
    }

    /// Fraction of write endurance consumed (modeled).
    pub fn wear_fraction(&self) -> f64 {
        self.stats.bytes_written as f64 / self.profile.endurance_bytes(self.capacity_bytes())
    }

    /// Removes the backing file. Call when done; dropping does not delete
    /// (so crashed experiments can be inspected).
    ///
    /// # Errors
    ///
    /// Host I/O errors propagate.
    pub fn remove(self) -> Result<(), FileSsdError> {
        let path = self.path.clone();
        let meta = self.meta_path();
        drop(self.file);
        std::fs::remove_file(path)?;
        if meta.exists() {
            std::fs::remove_file(meta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fedora-file-ssd-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_pages() {
        let path = temp_path("roundtrip");
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 8).unwrap();
        ssd.write_page(3, &vec![0xAB; 4096]).unwrap();
        ssd.write_page(7, &vec![0xCD; 4096]).unwrap();
        assert_eq!(ssd.read_page(3).unwrap()[0], 0xAB);
        assert_eq!(ssd.read_page(7).unwrap()[0], 0xCD);
        assert_eq!(ssd.read_page(0).unwrap(), vec![0u8; 4096]);
        ssd.remove().unwrap();
    }

    #[test]
    fn bounds_enforced() {
        let path = temp_path("bounds");
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 2).unwrap();
        assert!(matches!(
            ssd.read_page(2),
            Err(FileSsdError::Device(SsdError::OutOfRange { .. }))
        ));
        assert!(matches!(
            ssd.write_page(0, &[0u8; 7]),
            Err(FileSsdError::Device(SsdError::BadLength { .. }))
        ));
        ssd.remove().unwrap();
    }

    #[test]
    fn stats_use_model_latency() {
        let path = temp_path("stats");
        let profile = SsdProfile::pm9a1_like();
        let mut ssd = FileSsd::create(&path, profile, 4).unwrap();
        ssd.write_page(0, &vec![1; 4096]).unwrap();
        ssd.read_page(0).unwrap();
        assert_eq!(ssd.stats().pages_written, 1);
        assert_eq!(ssd.stats().pages_read, 1);
        assert_eq!(
            ssd.stats().busy_ns,
            profile.read_latency_ns + profile.write_latency_ns
        );
        assert!(ssd.wear_fraction() > 0.0);
        ssd.remove().unwrap();
    }

    #[test]
    fn metadata_roundtrip_via_open() {
        let path = temp_path("meta-roundtrip");
        {
            let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 8).unwrap();
            ssd.set_sync_on_write(true);
            ssd.write_page(2, &vec![0x33; 4096]).unwrap();
            ssd.write_page(5, &vec![0x44; 4096]).unwrap();
            ssd.read_page(2).unwrap();
            ssd.persist_metadata().unwrap();
            // Dropped without remove(): simulated crash after the commit.
        }
        let mut ssd = FileSsd::open(&path, SsdProfile::pm9a1_like()).unwrap();
        assert_eq!(ssd.num_pages(), 8);
        assert_eq!(ssd.read_page(2).unwrap()[0], 0x33);
        assert_eq!(ssd.read_page(5).unwrap()[0], 0x44);
        // Stats resumed (2 writes + 1 read persisted, +2 reads since).
        assert_eq!(ssd.stats().pages_written, 2);
        assert_eq!(ssd.stats().pages_read, 3);
        // The written-page map survived: a second write of page 2 is not a
        // "first write" for the rollback injector.
        ssd.arm_faults(FaultConfig {
            rollback_per_read: 1.0,
            ..FaultConfig::default()
        });
        ssd.write_page(2, &vec![0x55; 4096]).unwrap();
        let got = ssd.read_page(2).unwrap();
        assert_eq!(got[0], 0x33, "stale image replayed: pre-write recorded");
        assert_eq!(ssd.fault_stats().rollbacks, 1);
        ssd.remove().unwrap();
    }

    #[test]
    fn metadata_commit_is_atomic() {
        let path = temp_path("meta-atomic");
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 4).unwrap();
        ssd.write_page(0, &vec![9; 4096]).unwrap();
        ssd.persist_metadata().unwrap();
        let meta = ssd.meta_path();
        assert!(meta.exists());
        // No temp file left behind by the temp+rename commit.
        let mut tmp = meta.clone();
        let mut name = tmp.file_name().unwrap().to_os_string();
        name.push(".tmp");
        tmp.set_file_name(name);
        assert!(!tmp.exists());
        // A second persist atomically replaces the sidecar.
        ssd.write_page(1, &vec![8; 4096]).unwrap();
        ssd.persist_metadata().unwrap();
        let reopened = FileSsd::open(&path, SsdProfile::pm9a1_like()).unwrap();
        assert_eq!(reopened.stats().pages_written, 2);
        reopened.remove().unwrap();
    }

    #[test]
    fn open_rejects_torn_or_mismatched_metadata() {
        let path = temp_path("meta-reject");
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 4).unwrap();
        ssd.persist_metadata().unwrap();
        let meta = ssd.meta_path();
        // Wrong profile (different page size) is refused.
        let mut other = SsdProfile::pm9a1_like();
        other.page_bytes = 512;
        assert!(matches!(
            FileSsd::open(&path, other),
            Err(FileSsdError::MetadataMismatch("page size"))
        ));
        // A flipped metadata bit is caught by the frame checksum.
        let mut bytes = std::fs::read(&meta).unwrap();
        bytes[20] ^= 1;
        std::fs::write(&meta, &bytes).unwrap();
        assert!(matches!(
            FileSsd::open(&path, SsdProfile::pm9a1_like()),
            Err(FileSsdError::Metadata(CodecError::BadChecksum))
        ));
        // Missing sidecar is an I/O error, not a silent fresh device.
        std::fs::remove_file(&meta).unwrap();
        assert!(matches!(
            FileSsd::open(&path, SsdProfile::pm9a1_like()),
            Err(FileSsdError::Io(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_overflowing_device_size() {
        // A forged sidecar whose num_pages × page_bytes wraps u64 must be
        // refused, not wrap past the "backing file too short" check (the
        // frame checksum is not a MAC, so forged sidecars are in-model).
        let path = temp_path("meta-overflow");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let mut profile = SsdProfile::pm9a1_like();
        profile.page_bytes = 1 << 59;
        let num_pages = 32u64; // 32 × 2^59 = 2^64 wraps to 0
        let mut w = ByteWriter::new();
        w.put_u64(num_pages);
        w.put_u64(profile.page_bytes as u64);
        w.put_bytes(&[0u8; 4]); // written-page map: 32 pages / 8
        for _ in 0..8 {
            w.put_u64(0); // stats
        }
        let frame = seal_frame(META_MAGIC, META_VERSION, &w.into_bytes());
        std::fs::write(FileSsd::meta_path_for(&path), &frame).unwrap();
        assert!(matches!(
            FileSsd::open(&path, profile),
            Err(FileSsdError::MetadataMismatch("device size overflows"))
        ));
        std::fs::remove_file(FileSsd::meta_path_for(&path)).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_on_write_durability_ordering() {
        // With sync-on-write enabled, page data reaches the backing file
        // before persist_metadata commits the sidecar: reopening after the
        // commit always sees data consistent with the metadata.
        let path = temp_path("sync-order");
        let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 4).unwrap();
        ssd.set_sync_on_write(true);
        ssd.write_pages(&[(0, vec![1; 4096]), (3, vec![3; 4096])])
            .unwrap();
        ssd.sync().unwrap();
        ssd.persist_metadata().unwrap();
        let mut reopened = FileSsd::open(&path, SsdProfile::pm9a1_like()).unwrap();
        assert_eq!(reopened.read_page(0).unwrap()[0], 1);
        assert_eq!(reopened.read_page(3).unwrap()[0], 3);
        assert_eq!(reopened.stats().pages_written, 2);
        reopened.remove().unwrap();
    }

    #[test]
    fn file_persists_across_reopen() {
        let path = temp_path("persist");
        {
            let mut ssd = FileSsd::create(&path, SsdProfile::pm9a1_like(), 4).unwrap();
            ssd.write_page(1, &vec![0x42; 4096]).unwrap();
            // Dropping without remove() keeps the file.
        }
        // Re-open without truncation.
        let mut file = OpenOptions::new().read(true).open(&path).unwrap();
        let mut buf = vec![0u8; 4096];
        file.seek(SeekFrom::Start(4096)).unwrap();
        file.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 0x42);
        std::fs::remove_file(&path).unwrap();
    }
}
