//! The TEE's on-chip scratchpad model (paper §5.1, Fig. 10 ablation).
//!
//! FEDORA assumes a TEE with a small (4-KiB) on-chip SRAM scratchpad that is
//! safe from external observation. The scratchpad holds the encryption key,
//! the root counter, and a scratch area that accelerates EO-access path
//! eviction. This model is a *budget*: components register their
//! allocations and the controller asks whether a working set fits; when it
//! does not (the "No Secure SRAM" configuration), the eviction falls back to
//! oblivious full scans in DRAM and the latency model charges accordingly.

/// Default scratchpad capacity assumed by the paper: 4 KiB.
pub const DEFAULT_SCRATCHPAD_BYTES: usize = 4096;

/// Error returned when an allocation does not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScratchpadFull {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
}

impl core::fmt::Display for ScratchpadFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "scratchpad allocation of {} bytes exceeds the {} bytes available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for ScratchpadFull {}

/// The on-chip SRAM budget.
///
/// # Example
///
/// ```
/// use fedora_storage::Scratchpad;
/// let mut sp = Scratchpad::new(4096);
/// sp.allocate("aead-key", 32).unwrap();
/// sp.allocate("root-counter", 8).unwrap();
/// assert!(sp.available() <= 4096 - 40);
/// ```
#[derive(Clone, Debug)]
pub struct Scratchpad {
    capacity: usize,
    allocations: Vec<(String, usize)>,
}

impl Scratchpad {
    /// Creates a scratchpad with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Scratchpad {
            capacity,
            allocations: Vec::new(),
        }
    }

    /// The paper's default 4-KiB scratchpad.
    pub fn paper_default() -> Self {
        Self::new(DEFAULT_SCRATCHPAD_BYTES)
    }

    /// A zero-byte scratchpad: the "No Secure SRAM" ablation of Fig. 10.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.allocations.iter().map(|(_, n)| n).sum()
    }

    /// Bytes still free.
    pub fn available(&self) -> usize {
        self.capacity - self.used()
    }

    /// Registers a named allocation.
    ///
    /// # Errors
    ///
    /// [`ScratchpadFull`] if `bytes` exceeds the free space.
    pub fn allocate(&mut self, name: &str, bytes: usize) -> Result<(), ScratchpadFull> {
        if bytes > self.available() {
            return Err(ScratchpadFull {
                requested: bytes,
                available: self.available(),
            });
        }
        self.allocations.push((name.to_owned(), bytes));
        Ok(())
    }

    /// Releases a named allocation (all entries with that name). Returns
    /// the number of bytes freed.
    pub fn release(&mut self, name: &str) -> usize {
        let before = self.used();
        self.allocations.retain(|(n, _)| n != name);
        before - self.used()
    }

    /// Whether a transient working set of `bytes` would fit right now —
    /// the query the eviction path uses to pick its strategy.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }

    /// The registered allocations (name, bytes), in allocation order.
    pub fn allocations(&self) -> &[(String, usize)] {
        &self.allocations
    }
}

impl Default for Scratchpad {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut sp = Scratchpad::new(100);
        sp.allocate("a", 60).unwrap();
        assert_eq!(sp.available(), 40);
        assert!(sp.allocate("b", 50).is_err());
        sp.allocate("b", 40).unwrap();
        assert_eq!(sp.available(), 0);
        assert_eq!(sp.release("a"), 60);
        assert_eq!(sp.available(), 60);
    }

    #[test]
    fn none_fits_nothing() {
        let sp = Scratchpad::none();
        assert!(!sp.fits(1));
        assert!(sp.fits(0));
    }

    #[test]
    fn paper_default_is_4k() {
        assert_eq!(Scratchpad::paper_default().capacity(), 4096);
    }

    #[test]
    fn release_missing_name_is_zero() {
        let mut sp = Scratchpad::new(10);
        assert_eq!(sp.release("ghost"), 0);
    }

    #[test]
    fn error_reports_sizes() {
        let mut sp = Scratchpad::new(10);
        let err = sp.allocate("big", 20).unwrap_err();
        assert_eq!(
            err,
            ScratchpadFull {
                requested: 20,
                available: 10
            }
        );
        assert!(!format!("{err}").is_empty());
    }
}
