//! Simulated storage devices for FEDORA: SSD, DRAM, and the TEE scratchpad.
//!
//! The paper evaluates FEDORA on a real Samsung PM9A1 NVMe SSD; this
//! reproduction substitutes a *simulated* block device ([`ssd::SimSsd`])
//! that stores real bytes, enforces 4-KiB page granularity, and accounts
//! every page read/write with a latency, wear, and energy model. All of the
//! paper's SSD figures (lifetime — Fig. 7, latency — Fig. 8, cost/power/
//! energy — Fig. 9) are *counting* arguments over exactly these statistics,
//! so the simulated device exercises the same code paths and reproduces the
//! same shapes (see DESIGN.md §2).
//!
//! * [`stats`] — shared byte/IO/time counters every device maintains.
//! * [`ssd`] — the page-granular SSD model with endurance tracking
//!   (5.4 PB written per TB of capacity, the paper's §6.1 assumption),
//!   plus fault-injection hooks (bit flips, rollbacks).
//! * [`file_ssd`] — the same contract persisted to a host file, for
//!   experiments larger than RAM.
//! * [`dram`] — byte-addressable DRAM model (latency + static power/GB).
//! * [`scratchpad`] — the 4-KiB on-chip SRAM budget of the assumed TEE;
//!   allocation failures model the "No Secure SRAM" ablation (Fig. 10).
//! * [`profile`] — the device constants (latency, power, $/GB) with the
//!   paper's defaults.
//! * [`durable`] — atomic-commit file primitives, checksummed frames, and
//!   the synced append-only journal behind crash recovery (DESIGN.md §8).
//!
//! # Example
//!
//! ```
//! use fedora_storage::ssd::SimSsd;
//! use fedora_storage::profile::SsdProfile;
//!
//! let mut ssd = SimSsd::new(SsdProfile::pm9a1_like(), 1024); // 1024 pages
//! ssd.write_page(3, &vec![0xAB; 4096]).unwrap();
//! let page = ssd.read_page(3).unwrap();
//! assert_eq!(page[0], 0xAB);
//! assert_eq!(ssd.stats().pages_written, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod dram;
pub mod durable;
pub mod fault;
pub mod file_ssd;
pub mod profile;
pub mod scratchpad;
pub mod ssd;
pub mod stats;
pub mod telemetry;
pub mod trace_recorder;

pub use device::PageDevice;
pub use dram::SimDram;
pub use durable::{
    atomic_write_file, fnv1a64, open_frame, read_journal, seal_frame, ByteReader, ByteWriter,
    CodecError, JournalWriter,
};
pub use fault::{FaultConfig, FaultInjector, FaultStats};
pub use file_ssd::FileSsd;
pub use profile::{DramProfile, SsdProfile};
pub use scratchpad::Scratchpad;
pub use ssd::SimSsd;
pub use stats::DeviceStats;
pub use telemetry::DeviceTelemetry;
pub use trace_recorder::{AccessOp, AccessRecord, AccessTraceRecorder};
